//! The cluster executor: runs a campaign under a grouping and records
//! the complete schedule.
//!
//! Implements the same policy as `oa-sched::estimate` (least-advanced-
//! first assignment, largest-idle-group-first, surplus-group
//! disbanding, FIFO posts), but with concrete processor placement and
//! full task records — plus alternative scenario-selection policies for
//! the ablation benches.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::time::Time;
use oa_trace::{EventKind, NullTracer, TraceEvent, Tracer};
use oa_workflow::fusion::FusedTask;
use oa_workflow::task::MIN_PROCS;

use crate::schedule::{ProcRange, Schedule, TaskRecord};

/// How a freed group chooses among waiting scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ScenarioPolicy {
    /// The paper's policy: the scenario with the fewest completed
    /// months ("the month of the less advanced simulation waiting").
    #[default]
    LeastAdvanced,
    /// First-come-first-served over readiness events.
    RoundRobin,
    /// Adversarial ablation: the most advanced scenario first.
    MostAdvanced,
}

/// Scenario queue supporting the three policies.
enum Waiting {
    Least(BinaryHeap<Reverse<(u32, u32)>>),
    Fifo(VecDeque<u32>),
    Most(BinaryHeap<(u32, u32)>),
}

impl Waiting {
    fn new(policy: ScenarioPolicy, ns: u32) -> Self {
        match policy {
            ScenarioPolicy::LeastAdvanced => {
                Waiting::Least((0..ns).map(|s| Reverse((0, s))).collect())
            }
            ScenarioPolicy::RoundRobin => Waiting::Fifo((0..ns).collect()),
            ScenarioPolicy::MostAdvanced => Waiting::Most((0..ns).map(|s| (0, s)).collect()),
        }
    }

    fn push(&mut self, months_done: u32, s: u32) {
        match self {
            Waiting::Least(h) => h.push(Reverse((months_done, s))),
            Waiting::Fifo(q) => q.push_back(s),
            Waiting::Most(h) => h.push((months_done, s)),
        }
    }

    fn pop(&mut self) -> Option<u32> {
        match self {
            Waiting::Least(h) => h.pop().map(|Reverse((_, s))| s),
            Waiting::Fifo(q) => q.pop_front(),
            Waiting::Most(h) => h.pop().map(|(_, s)| s),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Waiting::Least(h) => h.is_empty(),
            Waiting::Fifo(q) => q.is_empty(),
            Waiting::Most(h) => h.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Waiting::Least(h) => h.len(),
            Waiting::Fifo(q) => q.len(),
            Waiting::Most(h) => h.len(),
        }
    }

    /// Refills the queue with all `ns` scenarios at zero completed
    /// months, reusing the existing allocation when the policy matches
    /// (it always does across the points of one sweep).
    fn reset(&mut self, policy: ScenarioPolicy, ns: u32) {
        match (&mut *self, policy) {
            (Waiting::Least(h), ScenarioPolicy::LeastAdvanced) => {
                h.clear();
                h.extend((0..ns).map(|s| Reverse((0, s))));
            }
            (Waiting::Fifo(q), ScenarioPolicy::RoundRobin) => {
                q.clear();
                q.extend(0..ns);
            }
            (Waiting::Most(h), ScenarioPolicy::MostAdvanced) => {
                h.clear();
                h.extend((0..ns).map(|s| (0, s)));
            }
            (slot, _) => *slot = Waiting::new(policy, ns),
        }
    }
}

/// Reusable event-loop state: the sweeps execute thousands of
/// campaigns back to back, and clearing these collections (capacity
/// preserved) makes each run allocation-free apart from the returned
/// record arena. Thread-local, so every `oa-par` worker owns its own.
struct Scratch {
    /// Per-group main duration, `T[sizes[i]]`.
    durs: Vec<f64>,
    /// First processor id of each group.
    bases: Vec<u32>,
    /// Busy groups: (finish time, group). Min-heap via `Reverse`.
    busy: BinaryHeap<Reverse<(Time, usize)>>,
    /// Per-group (scenario, start time) while running.
    running: Vec<Option<(u32, f64)>>,
    /// Waiting scenarios under the configured policy.
    waiting: Waiting,
    /// Months completed per scenario.
    months_done: Vec<u32>,
    /// Idle groups, sorted ascending by (size, index).
    idle: Vec<usize>,
    /// (ready time, post task), in main-completion order.
    post_ready: Vec<(f64, FusedTask)>,
    /// Post-processor pool: (availability, processor id).
    post_pool: BinaryHeap<Reverse<(Time, u32)>>,
}

impl Default for Scratch {
    fn default() -> Self {
        Self {
            durs: Vec::new(),
            bases: Vec::new(),
            busy: BinaryHeap::new(),
            running: Vec::new(),
            waiting: Waiting::Least(BinaryHeap::new()),
            months_done: Vec::new(),
            idle: Vec::new(),
            post_ready: Vec::new(),
            post_pool: BinaryHeap::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Scenario-selection policy.
    pub policy: ScenarioPolicy,
}

/// Runs the campaign and returns the complete schedule.
pub fn execute(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: ExecConfig,
) -> Result<Schedule, GroupingError> {
    execute_traced(inst, table, grouping, config, &mut NullTracer)
}

/// Runs the campaign, streaming [`TraceEvent`]s into `tracer` as the
/// simulation unfolds: campaign begin/end, a dispatch + start per task
/// assignment, a finish per completion, and a disband per surplus
/// group. With [`NullTracer`] (the [`execute`] default) no event is
/// even constructed, so the untraced path costs nothing extra.
pub fn execute_traced<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: ExecConfig,
    tracer: &mut T,
) -> Result<Schedule, GroupingError> {
    grouping.validate(inst)?;
    SCRATCH.with(|cell| {
        Ok(run(
            inst,
            table,
            grouping,
            config,
            tracer,
            &mut cell.borrow_mut(),
        ))
    })
}

/// The event loop proper, on pre-validated input and reusable state.
fn run<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: ExecConfig,
    tracer: &mut T,
    scratch: &mut Scratch,
) -> Schedule {
    let sizes: &[u32] = grouping.groups();
    // The `T[G]` row, indexed by `G - 4` — one array load per group
    // instead of a spec lookup per `main_secs` call.
    let trow = table.main_array();
    let tp = table.post_secs();
    let nm = inst.nm;

    let Scratch {
        durs,
        bases,
        busy,
        running,
        waiting,
        months_done,
        idle,
        post_ready,
        post_pool,
    } = scratch;
    durs.clear();
    durs.extend(sizes.iter().map(|&g| trow[(g - MIN_PROCS) as usize]));
    let durs: &[f64] = durs;

    // Processor layout: groups first (descending sizes, canonical),
    // then the dedicated post pool; any remainder stays idle forever.
    bases.clear();
    let mut acc = 0u32;
    for &g in sizes {
        bases.push(acc);
        acc += g;
    }
    let bases: &[u32] = bases;
    let post_base = acc;

    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            0.0,
            EventKind::CampaignBegin {
                ns: inst.ns,
                nm: inst.nm,
                r: inst.r,
                groups: sizes.to_vec(),
                post_procs: grouping.post_procs,
            },
        ));
    }

    // The record arena is the one allocation of the run — it is the
    // returned schedule, pre-sized to its exact final length.
    let mut records: Vec<TaskRecord> = Vec::with_capacity(inst.nbtasks() as usize * 2);

    busy.clear();
    busy.reserve(sizes.len());
    running.clear();
    running.resize(sizes.len(), None); // (scenario, start)
    waiting.reset(config.policy, inst.ns);
    months_done.clear();
    months_done.resize(inst.ns as usize, 0);
    let mut unfinished = inst.ns as usize;
    idle.clear();
    idle.extend(0..sizes.len());
    idle.sort_unstable_by_key(|&g| (sizes[g], g));
    let mut alive = sizes.len();

    // Post machinery: ready queue (filled in completion order) and the
    // processor pool (avail, proc id).
    post_ready.clear();
    post_ready.reserve(inst.nbtasks() as usize);
    post_pool.clear();
    post_pool.reserve(inst.r as usize);
    for p in 0..grouping.post_procs {
        post_pool.push(Reverse((Time(0.0), post_base + p)));
    }

    let assign = |now: f64,
                  idle: &mut Vec<usize>,
                  waiting: &mut Waiting,
                  busy: &mut BinaryHeap<Reverse<(Time, usize)>>,
                  running: &mut Vec<Option<(u32, f64)>>,
                  alive: &mut usize,
                  unfinished: usize,
                  post_pool: &mut BinaryHeap<Reverse<(Time, u32)>>,
                  months_done: &[u32],
                  tracer: &mut T| {
        while !idle.is_empty() && !waiting.is_empty() {
            let g = idle.pop().expect("non-empty"); // largest idle group
            let s = waiting.pop().expect("non-empty");
            running[g] = Some((s, now));
            busy.push(Reverse((Time(now + durs[g]), g)));
            if tracer.enabled() {
                let task = FusedTask::main(s, months_done[s as usize]);
                tracer.record(TraceEvent::at(
                    now,
                    EventKind::TaskDispatch {
                        task,
                        group: Some(g as u32),
                        queue_depth: waiting.len() as u32,
                    },
                ));
                tracer.record(TraceEvent::at(
                    now,
                    EventKind::TaskStart {
                        task,
                        first_proc: bases[g],
                        procs: sizes[g],
                        group: Some(g as u32),
                    },
                ));
            }
        }
        while !idle.is_empty() && *alive > unfinished {
            let g = idle.remove(0); // smallest idle group disbands
            *alive -= 1;
            for p in 0..sizes[g] {
                post_pool.push(Reverse((Time(now), bases[g] + p)));
            }
            if tracer.enabled() {
                tracer.record(TraceEvent::at(
                    now,
                    EventKind::GroupDisband {
                        group: g as u32,
                        procs: sizes[g],
                    },
                ));
            }
        }
    };

    assign(
        0.0,
        &mut *idle,
        &mut *waiting,
        &mut *busy,
        &mut *running,
        &mut alive,
        unfinished,
        &mut *post_pool,
        &*months_done,
        tracer,
    );

    let mut main_finish = 0.0f64;
    while let Some(Reverse((Time(t), g))) = busy.pop() {
        let (s, started) = running[g].take().expect("busy group has a scenario");
        let month = months_done[s as usize];
        months_done[s as usize] += 1;
        main_finish = t;
        records.push(TaskRecord {
            task: FusedTask::main(s, month),
            procs: ProcRange {
                first: bases[g],
                count: sizes[g],
            },
            start: started,
            end: t,
            group: Some(g as u32),
        });
        post_ready.push((t, FusedTask::post(s, month)));
        if tracer.enabled() {
            tracer.record(TraceEvent::at(
                t,
                EventKind::TaskFinish {
                    task: FusedTask::main(s, month),
                    first_proc: bases[g],
                    procs: sizes[g],
                    group: Some(g as u32),
                    secs: t - started,
                },
            ));
        }
        if months_done[s as usize] == nm {
            unfinished -= 1;
        } else {
            waiting.push(months_done[s as usize], s);
        }
        let pos = idle
            .binary_search_by_key(&(sizes[g], g), |&x| (sizes[x], x))
            .unwrap_err();
        idle.insert(pos, g);
        assign(
            t,
            &mut *idle,
            &mut *waiting,
            &mut *busy,
            &mut *running,
            &mut alive,
            unfinished,
            &mut *post_pool,
            &*months_done,
            tracer,
        );
    }
    debug_assert_eq!(unfinished, 0);

    // Posts: FIFO on the pool; earliest-available processor first.
    let mut post_finish = 0.0f64;
    for &(ready, task) in post_ready.iter() {
        let Reverse((Time(avail), proc)) = post_pool.pop().expect("pool non-empty");
        let start = if avail > ready { avail } else { ready };
        let end = start + tp;
        post_finish = post_finish.max(end);
        records.push(TaskRecord {
            task,
            procs: ProcRange::single(proc),
            start,
            end,
            group: None,
        });
        post_pool.push(Reverse((Time(end), proc)));
        if tracer.enabled() {
            tracer.record(TraceEvent::at(
                start,
                EventKind::TaskStart {
                    task,
                    first_proc: proc,
                    procs: 1,
                    group: None,
                },
            ));
            tracer.record(TraceEvent::at(
                end,
                EventKind::TaskFinish {
                    task,
                    first_proc: proc,
                    procs: 1,
                    group: None,
                    secs: end - start,
                },
            ));
        }
    }

    let schedule = Schedule {
        instance: inst,
        records,
        makespan: main_finish.max(post_finish),
    };
    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            schedule.makespan,
            EventKind::CampaignEnd {
                makespan: schedule.makespan,
            },
        ));
    }
    // In debug builds, run the full schedule-layer rule set (OA008–
    // OA015) over every schedule the executor produces: a cheap,
    // always-on oracle that any future change to the event loop still
    // respects multiplicity, dependences and processor exclusivity.
    #[cfg(debug_assertions)]
    {
        let report = schedule.analyze();
        debug_assert!(
            !report.has_errors(),
            "executor produced an invalid schedule:\n{}",
            report.render_text()
        );
    }
    schedule
}

/// Executes with the paper's default policy.
pub fn execute_default(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
) -> Result<Schedule, GroupingError> {
    execute(inst, table, grouping, ExecConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;
    use oa_sched::estimate::estimate;
    use oa_sched::heuristics::Heuristic;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn schedule_validates_and_matches_estimate() {
        let t = reference();
        for r in [13, 23, 37, 53, 80, 111] {
            let inst = Instance::new(7, 9, r);
            for h in Heuristic::PAPER {
                let g = h.grouping(inst, &t).unwrap();
                let sched = execute_default(inst, &t, &g).unwrap();
                sched
                    .validate()
                    .unwrap_or_else(|e| panic!("{h:?} R={r}: {e}"));
                let est = estimate(inst, &t, &g).unwrap();
                assert!(
                    (sched.makespan - est.makespan).abs() < 1e-6,
                    "{h:?} R={r}: sim {} vs estimate {}",
                    sched.makespan,
                    est.makespan
                );
            }
        }
    }

    #[test]
    fn record_counts() {
        let inst = Instance::new(3, 4, 20);
        let g = Grouping::uniform(4, 3, 2);
        let s = execute_default(inst, &flat(100.0, 10.0), &g).unwrap();
        assert_eq!(s.records.len(), 24);
        assert_eq!(s.mains().count(), 12);
        assert_eq!(s.posts().count(), 12);
    }

    #[test]
    fn months_of_one_scenario_are_sequential() {
        let inst = Instance::new(2, 6, 12);
        let g = Grouping::uniform(4, 2, 1);
        let s = execute_default(inst, &flat(50.0, 5.0), &g).unwrap();
        for sc in 0..2 {
            let mut months: Vec<(u32, f64)> = s
                .mains()
                .filter(|r| r.task.scenario == sc)
                .map(|r| (r.task.month, r.start))
                .collect();
            months.sort_by_key(|&(m, _)| m);
            for w in months.windows(2) {
                assert!(w[0].1 < w[1].1, "month {} not before {}", w[0].0, w[1].0);
            }
        }
    }

    #[test]
    fn dedicated_post_procs_have_expected_ids() {
        let inst = Instance::new(2, 2, 10);
        let g = Grouping::uniform(4, 2, 2);
        let s = execute_default(inst, &flat(100.0, 10.0), &g).unwrap();
        // Groups use procs 0..8, posts 8..10 (until disband time).
        for r in s.posts() {
            assert!(r.procs.first >= 8 || r.start >= 200.0 - 1e-9);
        }
    }

    #[test]
    fn round_robin_policy_still_valid() {
        let inst = Instance::new(5, 7, 23);
        let t = reference();
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let s = execute(
            inst,
            &t,
            &g,
            ExecConfig {
                policy: ScenarioPolicy::RoundRobin,
            },
        )
        .unwrap();
        s.validate().unwrap();
    }

    #[test]
    fn most_advanced_policy_is_no_better_than_least_advanced() {
        // Unfair scheduling can only hurt (or tie) the makespan here:
        // finishing one scenario early starves the others' parallelism.
        let t = reference();
        let inst = Instance::new(6, 12, 30);
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let fair = execute(
            inst,
            &t,
            &g,
            ExecConfig {
                policy: ScenarioPolicy::LeastAdvanced,
            },
        )
        .unwrap()
        .makespan;
        let unfair = execute(
            inst,
            &t,
            &g,
            ExecConfig {
                policy: ScenarioPolicy::MostAdvanced,
            },
        )
        .unwrap()
        .makespan;
        assert!(unfair + 1e-9 >= fair, "unfair {unfair} < fair {fair}");
    }

    #[test]
    fn invalid_grouping_rejected() {
        let inst = Instance::new(2, 2, 10);
        let g = Grouping::uniform(11, 2, 0);
        assert!(execute_default(inst, &reference(), &g).is_err());
    }
}
