//! The cluster executor: runs a campaign under a grouping and records
//! the complete schedule.
//!
//! Implements the same policy as `oa-sched::estimate` (least-advanced-
//! first assignment, largest-idle-group-first, surplus-group
//! disbanding, FIFO posts), but with concrete processor placement and
//! full task records — plus alternative scenario-selection policies for
//! the ablation benches.
//!
//! Since the engine refactor this module is a thin configuration of
//! [`crate::engine::simulate_campaign`]: fused granularity, no faults,
//! schedule recording on. The event loop itself lives in
//! [`crate::engine`].

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan};
use oa_trace::{NullTracer, Tracer};
use serde::{Deserialize, Serialize};

use crate::engine::{simulate_campaign, CampaignOutcome};
use crate::schedule::Schedule;

pub use oa_sched::policy::ScenarioPolicy;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Scenario-selection policy.
    pub policy: ScenarioPolicy,
}

/// Runs the campaign and returns the complete schedule.
pub fn execute(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: ExecConfig,
) -> Result<Schedule, GroupingError> {
    execute_traced(inst, table, grouping, config, &mut NullTracer)
}

/// Runs the campaign, streaming [`oa_trace::TraceEvent`]s into `tracer`
/// as the simulation unfolds: campaign begin/end, a dispatch + start
/// per task assignment, a finish per completion, and a disband per
/// surplus group. With [`NullTracer`] (the [`execute`] default) no
/// event is even constructed, so the untraced path costs nothing extra.
pub fn execute_traced<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: ExecConfig,
    tracer: &mut T,
) -> Result<Schedule, GroupingError> {
    let config = CampaignConfig::fused(config.policy);
    match simulate_campaign(inst, table, grouping, &config, &FaultPlan::none(), tracer)? {
        CampaignOutcome::Completed(run) => Ok(run
            .schedule
            .expect("fused fault-free runs record a schedule")),
        CampaignOutcome::Stranded { .. } => {
            unreachable!("an empty fault plan cannot strand the campaign")
        }
    }
}

/// Executes with the paper's default policy.
pub fn execute_default(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
) -> Result<Schedule, GroupingError> {
    execute(inst, table, grouping, ExecConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;
    use oa_sched::estimate::estimate;
    use oa_sched::heuristics::Heuristic;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn schedule_validates_and_matches_estimate() {
        let t = reference();
        for r in [13, 23, 37, 53, 80, 111] {
            let inst = Instance::new(7, 9, r);
            for h in Heuristic::PAPER {
                let g = h.grouping(inst, &t).unwrap();
                let sched = execute_default(inst, &t, &g).unwrap();
                sched
                    .validate()
                    .unwrap_or_else(|e| panic!("{h:?} R={r}: {e}"));
                let est = estimate(inst, &t, &g).unwrap();
                assert!(
                    (sched.makespan - est.makespan).abs() < 1e-6,
                    "{h:?} R={r}: sim {} vs estimate {}",
                    sched.makespan,
                    est.makespan
                );
            }
        }
    }

    #[test]
    fn record_counts() {
        let inst = Instance::new(3, 4, 20);
        let g = Grouping::uniform(4, 3, 2);
        let s = execute_default(inst, &flat(100.0, 10.0), &g).unwrap();
        assert_eq!(s.records.len(), 24);
        assert_eq!(s.mains().count(), 12);
        assert_eq!(s.posts().count(), 12);
    }

    #[test]
    fn months_of_one_scenario_are_sequential() {
        let inst = Instance::new(2, 6, 12);
        let g = Grouping::uniform(4, 2, 1);
        let s = execute_default(inst, &flat(50.0, 5.0), &g).unwrap();
        for sc in 0..2 {
            let mut months: Vec<(u32, f64)> = s
                .mains()
                .filter(|r| r.task.scenario == sc)
                .map(|r| (r.task.month, r.start))
                .collect();
            months.sort_by_key(|&(m, _)| m);
            for w in months.windows(2) {
                assert!(w[0].1 < w[1].1, "month {} not before {}", w[0].0, w[1].0);
            }
        }
    }

    #[test]
    fn dedicated_post_procs_have_expected_ids() {
        let inst = Instance::new(2, 2, 10);
        let g = Grouping::uniform(4, 2, 2);
        let s = execute_default(inst, &flat(100.0, 10.0), &g).unwrap();
        // Groups use procs 0..8, posts 8..10 (until disband time).
        for r in s.posts() {
            assert!(r.procs.first >= 8 || r.start >= 200.0 - 1e-9);
        }
    }

    #[test]
    fn round_robin_policy_still_valid() {
        let inst = Instance::new(5, 7, 23);
        let t = reference();
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let s = execute(
            inst,
            &t,
            &g,
            ExecConfig {
                policy: ScenarioPolicy::RoundRobin,
            },
        )
        .unwrap();
        s.validate().unwrap();
    }

    #[test]
    fn most_advanced_policy_is_no_better_than_least_advanced() {
        // Unfair scheduling can only hurt (or tie) the makespan here:
        // finishing one scenario early starves the others' parallelism.
        let t = reference();
        let inst = Instance::new(6, 12, 30);
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let fair = execute(
            inst,
            &t,
            &g,
            ExecConfig {
                policy: ScenarioPolicy::LeastAdvanced,
            },
        )
        .unwrap()
        .makespan;
        let unfair = execute(
            inst,
            &t,
            &g,
            ExecConfig {
                policy: ScenarioPolicy::MostAdvanced,
            },
        )
        .unwrap()
        .makespan;
        assert!(unfair + 1e-9 >= fair, "unfair {unfair} < fair {fair}");
    }

    #[test]
    fn invalid_grouping_rejected() {
        let inst = Instance::new(2, 2, 10);
        let g = Grouping::uniform(11, 2, 0);
        assert!(execute_default(inst, &reference(), &g).is_err());
    }
}
