//! An indexed bucket queue over integer-second event times — the
//! calendar-queue half of the kernel optimisation.
//!
//! The engine's `busy` heap holds at most one entry per group, but it
//! is touched twice per simulated month, so its constant factor is the
//! hot path. When every task duration is an exact integer number of
//! seconds (see `oa_sched::time::exact_ticks`), event times are
//! integers too, and the classic calendar queue applies: a power-of-two
//! ring of buckets indexed by `tick & (W - 1)`, where the ring width
//! `W` exceeds the event horizon (the largest push-ahead distance, i.e.
//! the maximum task duration). Then no two *live* ticks ever collide in
//! a bucket, `push` is O(1), and `pop`/`peek` amortise to O(1) because
//! the scan cursor only moves forward with simulated time.
//!
//! Determinism contract: ties on the same tick pop in ascending payload
//! order, exactly like a `BinaryHeap<Reverse<(Time, P)>>` with unique
//! payloads — so swapping one for the other cannot change a single
//! event ordering. `crate::engine` relies on this for its bitwise
//! equivalence guarantee and falls back to the heap whenever the
//! horizon is unbounded or durations are fractional.

/// Widest ring the queue will allocate (2^16 buckets). Horizons beyond
/// this (durations over ~18 simulated hours) fall back to the binary
/// heap — see [`CalendarQueue::configure`].
const MAX_RING: u64 = 1 << 16;

/// A bucket-ring priority queue on `u64` ticks with ascending-payload
/// tie-break. Reusable across runs: [`CalendarQueue::configure`] keeps
/// bucket allocations.
#[derive(Debug)]
pub struct CalendarQueue<P> {
    /// Ring of buckets; each holds the payloads of one live tick,
    /// sorted descending so the next payload to pop is `last()`.
    buckets: Vec<Vec<P>>,
    /// Tick currently stored in each non-empty bucket.
    tags: Vec<u64>,
    /// One bit per bucket: non-empty.
    bitmap: Vec<u64>,
    /// Ring width minus one (width is a power of two).
    mask: u64,
    /// Live entries.
    len: usize,
    /// Lower bound on the smallest live tick; scans start here.
    cursor: u64,
    /// Cached smallest live tick, if known.
    cached_min: Option<u64>,
}

impl<P: Copy + Ord> CalendarQueue<P> {
    /// An unconfigured queue (ring width 0); call
    /// [`CalendarQueue::configure`] before use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            tags: Vec::new(),
            bitmap: Vec::new(),
            mask: 0,
            len: 0,
            cursor: 0,
            cached_min: None,
        }
    }

    /// Whether a ring sized for pushes `max_span` ticks ahead fits
    /// within `MAX_RING` — the allocation-free half of
    /// [`CalendarQueue::configure`]'s decision, usable to predict the
    /// queue's answer without a queue (see
    /// `crate::engine::kernel_eligibility`).
    #[must_use]
    pub fn ring_fits(max_span: u64) -> bool {
        match max_span.checked_add(1).map(u64::next_power_of_two) {
            Some(width) => width.max(64) <= MAX_RING,
            None => false,
        }
    }

    /// Sizes the ring for pushes at most `max_span` ticks ahead of the
    /// smallest live tick and empties the queue. Returns `false` (queue
    /// unusable) when the required ring exceeds `MAX_RING` — the
    /// caller keeps its heap in that case. Bucket allocations survive
    /// reconfiguration, so back-to-back runs are allocation-free.
    pub fn configure(&mut self, max_span: u64) -> bool {
        if !Self::ring_fits(max_span) {
            return false;
        }
        let width = (max_span + 1).next_power_of_two().max(64);
        let w = usize::try_from(width).expect("ring fits in memory");
        if self.buckets.len() < w {
            self.buckets.resize_with(w, Vec::new);
            self.tags.resize(w, 0);
        }
        self.bitmap.clear();
        self.bitmap.resize(w.div_ceil(64), 0);
        if self.len > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
        }
        // A wider ring from an earlier run is harmless: the mask keeps
        // indexing within the configured width.
        self.mask = width - 1;
        self.len = 0;
        self.cursor = 0;
        self.cached_min = None;
        true
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `payload` at `tick`. `tick` must lie within `max_span`
    /// of the queue's cursor (the current simulation time — see
    /// [`CalendarQueue::advance_to`]) — the engine guarantees this
    /// because a completion is never scheduled more than one task
    /// duration ahead of the clock.
    pub fn push(&mut self, tick: u64, payload: P) {
        debug_assert!(
            self.is_empty() || tick.saturating_sub(self.cursor) <= self.mask,
            "tick {tick} outside the configured horizon (cursor {})",
            self.cursor
        );
        let idx = usize::try_from(tick & self.mask).expect("masked index fits");
        let bucket = &mut self.buckets[idx];
        if bucket.is_empty() {
            self.tags[idx] = tick;
            self.bitmap[idx / 64] |= 1 << (idx % 64);
        } else {
            debug_assert_eq!(self.tags[idx], tick, "live ticks collided in a bucket");
        }
        // Descending order so `pop` takes from the end; buckets hold a
        // handful of same-tick completions at most.
        let pos = bucket.partition_point(|p| *p > payload);
        bucket.insert(pos, payload);
        if self.len == 0 {
            // Empty queue: this tick is the minimum, trivially.
            self.cursor = tick;
            self.cached_min = Some(tick);
        } else {
            if tick < self.cursor {
                self.cursor = tick;
            }
            // A `None` cache after a pop means "unknown": only a tick
            // beating a *known* minimum may replace it — the next peek
            // rescans otherwise.
            if self.cached_min.is_some_and(|m| tick < m) {
                self.cached_min = Some(tick);
            }
        }
        self.len += 1;
    }

    /// Smallest live `(tick, payload)` without removing it.
    pub fn peek(&mut self) -> Option<(u64, P)> {
        if self.len == 0 {
            return None;
        }
        let tick = match self.cached_min {
            Some(t) => t,
            None => {
                let t = self.scan_min();
                self.cursor = t; // min can only grow; remember it
                self.cached_min = Some(t);
                t
            }
        };
        let idx = usize::try_from(tick & self.mask).expect("masked index fits");
        Some((
            tick,
            *self.buckets[idx].last().expect("min bucket non-empty"),
        ))
    }

    /// Removes and returns the smallest live `(tick, payload)`.
    pub fn pop(&mut self) -> Option<(u64, P)> {
        let (tick, payload) = self.peek()?;
        let idx = usize::try_from(tick & self.mask).expect("masked index fits");
        let bucket = &mut self.buckets[idx];
        bucket.pop();
        if bucket.is_empty() {
            self.bitmap[idx / 64] &= !(1 << (idx % 64));
            self.cached_min = None;
        }
        self.len -= 1;
        // The popped tick is the minimum: simulated time has reached
        // it, and the push window slides forward with it.
        self.cursor = tick;
        Some((tick, payload))
    }

    /// Slides the push window forward to the simulation instant `now`,
    /// which must not exceed the smallest live tick. Pops do this
    /// implicitly; the engine calls it when time advances through an
    /// event that is not a pop (a failure injection), so that pushes
    /// relative to `now` stay within the configured span.
    pub fn advance_to(&mut self, now: u64) {
        debug_assert!(
            self.peek().is_none_or(|(m, _)| now <= m),
            "advance_to({now}) past the live minimum"
        );
        if now > self.cursor {
            self.cursor = now;
        }
    }

    /// Appends every live `(tick, payload)` to `out` in pop order
    /// (ascending tick, then ascending payload), without consuming the
    /// queue. Used by the fast-forward detector to snapshot the busy
    /// set.
    pub fn sorted_content(&self, out: &mut Vec<(u64, P)>) {
        if self.len == 0 {
            return;
        }
        let mut found = 0usize;
        let start = self.cursor & self.mask;
        // One lap over the ring starting at the cursor visits live
        // ticks in ascending order: the span invariant keeps them all
        // within one ring width of the minimum.
        for step in 0..=self.mask {
            let idx = usize::try_from((start + step) & self.mask).expect("masked index fits");
            if self.bitmap[idx / 64] & (1 << (idx % 64)) != 0 {
                out.extend(self.buckets[idx].iter().rev().map(|&p| (self.tags[idx], p)));
                found += self.buckets[idx].len();
                if found == self.len {
                    break;
                }
            }
        }
        debug_assert_eq!(found, self.len, "bitmap out of sync with len");
    }

    /// First set bit at or after the cursor, as a tick. Amortised O(1):
    /// the cursor never moves backwards while the queue drains in time
    /// order, so total scan work is bounded by elapsed ticks / 64.
    fn scan_min(&self) -> u64 {
        debug_assert!(self.len > 0);
        let start = self.cursor & self.mask;
        let mut word = usize::try_from(start / 64).expect("word index fits");
        let mut bits = self.bitmap[word] & !((1u64 << (start % 64)) - 1);
        let words = self.bitmap.len();
        // One full lap plus the revisit of the start word (whose low
        // bits were masked off the first time) must find a set bit.
        for _ in 0..=words {
            if bits != 0 {
                let idx = word as u64 * 64 + u64::from(bits.trailing_zeros());
                // Map the ring slot back to its tick: the first live
                // slot at or after the cursor is at most one ring width
                // ahead of it.
                let offset = idx.wrapping_sub(self.cursor) & self.mask;
                let tick = self.cursor + offset;
                debug_assert_eq!(self.tags[usize::try_from(idx).expect("fits")], tick);
                return tick;
            }
            word += 1;
            if word == words {
                word = 0;
            }
            bits = self.bitmap[word];
        }
        unreachable!("len > 0 but no bit set");
    }
}

impl<P: Copy + Ord> Default for CalendarQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_tick_then_payload_order() {
        let mut q = CalendarQueue::new();
        assert!(q.configure(100));
        q.push(30, 2u32);
        q.push(10, 7);
        q.push(30, 1);
        q.push(10, 3);
        assert_eq!(q.peek(), Some((10, 3)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), Some((10, 7)));
        assert_eq!(q.pop(), Some((30, 1)));
        assert_eq!(q.pop(), Some((30, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_binary_heap_on_interleaved_ops() {
        // Deterministic pseudo-random workload compared against the
        // reference heap semantics the engine used to rely on.
        let mut q = CalendarQueue::new();
        assert!(q.configure(1 << 10));
        let mut h: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clock = 0u64;
        for _ in 0..5000 {
            if rng() % 3 != 0 || h.is_empty() {
                let tick = clock + rng() % 1000;
                let payload = (rng() % 64) as u32;
                q.push(tick, payload);
                h.push(Reverse((tick, payload)));
            } else {
                let got = q.pop();
                let want = h.pop().map(|Reverse(k)| k);
                assert_eq!(got, want);
                if let Some((t, _)) = got {
                    clock = t; // time only moves forward
                }
            }
        }
        while let Some(Reverse(want)) = h.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn ring_wraps_across_many_laps() {
        let mut q = CalendarQueue::new();
        assert!(q.configure(63)); // minimum ring (64 buckets)
        let mut t = 0u64;
        for i in 0..1000u64 {
            q.push(t + 63, i as u32); // always push at the horizon edge
            let (tick, p) = q.pop().unwrap();
            assert_eq!((tick, p), (t + 63, i as u32));
            t = tick;
        }
    }

    #[test]
    fn sorted_content_is_non_destructive_pop_order() {
        let mut q = CalendarQueue::new();
        assert!(q.configure(500));
        for (t, p) in [(400u64, 1u32), (7, 9), (7, 2), (399, 0)] {
            q.push(t, p);
        }
        let mut content = Vec::new();
        q.sorted_content(&mut content);
        assert_eq!(content, vec![(7, 2), (7, 9), (399, 0), (400, 1)]);
        assert_eq!(q.len(), 4);
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, content);
    }

    #[test]
    fn configure_rejects_unbounded_horizons() {
        let mut q = CalendarQueue::<u32>::new();
        assert!(!q.configure(MAX_RING));
        assert!(!q.configure(u64::MAX));
        assert!(q.configure(MAX_RING - 1));
    }

    #[test]
    fn reconfigure_reuses_and_empties() {
        let mut q = CalendarQueue::new();
        assert!(q.configure(100));
        q.push(5, 1u32);
        q.push(50, 2);
        assert!(q.configure(200));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(199, 3);
        assert_eq!(q.pop(), Some((199, 3)));
    }
}
