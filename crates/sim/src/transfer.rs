//! Data-movement accounting for grid executions.
//!
//! Inside a cluster the paper folds data access into task durations
//! ("the execution time of any task is assumed to include the time to
//! access the data", Section 4.1), and scenarios exchange nothing with
//! each other — so intra-cluster movement needs no extra modelling.
//! What the paper does *not* charge — because its simulations place a
//! scenario on one cluster for life — is the grid-level staging: the
//! initial conditions shipped to each cluster before month 0 and the
//! compressed diagnostics repatriated to the client as months
//! complete. This module models exactly that, so grid placements can
//! be compared under non-zero wide-area costs and the
//! scenario-migration question ("once a scenario has been scheduled on
//! a cluster, it can not change location") can be quantified.

use serde::{Deserialize, Serialize};

use oa_workflow::data::{DataVolume, INTER_MONTH_TRANSFER};

/// A wide-area link between the client's storage and a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth, megabytes per second.
    pub bandwidth_mbps: f64,
    /// Per-transfer latency, seconds.
    pub latency_secs: f64,
}

impl Link {
    /// A Grid'5000-era 1 Gb/s wide-area link (~100 MB/s effective,
    /// 10 ms RTT class latency).
    pub fn gigabit() -> Self {
        Self {
            bandwidth_mbps: 100.0,
            latency_secs: 0.05,
        }
    }

    /// Transfer time for one volume.
    pub fn transfer_secs(&self, volume: DataVolume) -> f64 {
        volume.transfer_secs(self.bandwidth_mbps, self.latency_secs)
    }
}

/// Data shipped per scenario for staging and repatriation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagingModel {
    /// Initial state shipped to the cluster before month 0 (the same
    /// restart payload months hand to each other: 120 MB).
    pub stage_in: DataVolume,
    /// Compressed diagnostics returned per completed month
    /// (`compress_diags` exists to make this small; a few MB).
    pub per_month_out: DataVolume,
}

impl Default for StagingModel {
    fn default() -> Self {
        Self {
            stage_in: INTER_MONTH_TRANSFER,
            per_month_out: DataVolume::from_mb(5),
        }
    }
}

/// Wide-area cost of running `scenarios` scenarios of `months` months
/// on a cluster behind `link`:
///
/// * stage-in happens before computation starts (serialized per
///   scenario on the link — a single client NIC feeds the grid);
/// * repatriation streams during the run and only the *last* month's
///   upload can extend the makespan.
///
/// Returns `(pre_delay, post_delay)` to add around a cluster-local
/// makespan.
pub fn staging_delays(
    model: &StagingModel,
    link: &Link,
    scenarios: u32,
    _months: u32,
) -> (f64, f64) {
    let pre = scenarios as f64 * link.transfer_secs(model.stage_in);
    let post = link.transfer_secs(model.per_month_out);
    (pre, post)
}

/// Cost of migrating one scenario between clusters mid-campaign: the
/// restart payload crosses the wide area once.
pub fn migration_secs(link: &Link) -> f64 {
    link.transfer_secs(oa_workflow::data::migration_cost())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_link_numbers() {
        let l = Link::gigabit();
        // 120 MB at 100 MB/s + 50 ms = 1.25 s.
        assert!((l.transfer_secs(INTER_MONTH_TRANSFER) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn staging_scales_with_scenarios() {
        let m = StagingModel::default();
        let l = Link::gigabit();
        let (pre1, post1) = staging_delays(&m, &l, 1, 100);
        let (pre10, post10) = staging_delays(&m, &l, 10, 100);
        assert!((pre10 - 10.0 * pre1).abs() < 1e-9);
        assert_eq!(post1, post10); // only the last upload trails
    }

    #[test]
    fn staging_is_negligible_next_to_computation() {
        // The paper ignores it; verify that is justified: staging 10
        // scenarios costs ~12.5 s against a month of 1260 s.
        let (pre, post) = staging_delays(&StagingModel::default(), &Link::gigabit(), 10, 1800);
        assert!(
            pre + post < 60.0,
            "staging {pre}+{post} s unexpectedly large"
        );
    }

    #[test]
    fn migration_equals_restart_payload() {
        let l = Link::gigabit();
        assert_eq!(migration_secs(&l), l.transfer_secs(INTER_MONTH_TRANSFER));
    }
}
