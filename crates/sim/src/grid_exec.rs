//! Grid-level execution: run a scenario repartition across clusters.
//!
//! This is the simulation backend of Section 6: given the repartition
//! computed by Algorithm 1, each cluster independently schedules its
//! subset of scenarios with a grouping heuristic (step 6 of Figure 9);
//! the grid makespan is the slowest cluster's makespan. Scenarios never
//! migrate — "once a scenario has been scheduled on a cluster, it can
//! not change location" (Section 5).

use serde::{Deserialize, Serialize};

use oa_platform::cluster::ClusterId;
use oa_platform::grid::Grid;
use oa_sched::hetero::{grid_performance, repartition, Repartition};
use oa_sched::heuristics::{Heuristic, HeuristicError};
use oa_sched::params::Instance;

use crate::executor::{execute, ExecConfig};
use crate::schedule::Schedule;

/// One cluster's part of a grid execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Which cluster.
    pub cluster: ClusterId,
    /// Global scenario ids this cluster ran (local id = index here).
    pub scenarios: Vec<u32>,
    /// The local schedule (scenario ids are *local*), if any scenarios
    /// were assigned.
    pub schedule: Option<Schedule>,
}

impl ClusterOutcome {
    /// Local makespan (0 when the cluster ran nothing).
    pub fn makespan(&self) -> f64 {
        self.schedule.as_ref().map_or(0.0, |s| s.makespan)
    }
}

/// Outcome of a full grid execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridOutcome {
    /// The repartition that was executed.
    pub repartition: Repartition,
    /// Per-cluster outcomes, in cluster-id order.
    pub clusters: Vec<ClusterOutcome>,
    /// Grid makespan: the slowest cluster.
    pub makespan: f64,
}

/// Plans (via Algorithm 1 on `heuristic`'s performance vectors) and
/// executes `ns` scenarios of `nm` months on `grid`.
pub fn run_grid(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    config: ExecConfig,
) -> Result<GridOutcome, HeuristicError> {
    let vectors = grid_performance(grid, heuristic, ns, nm);
    let plan = repartition(&vectors);
    execute_repartition(grid, &plan, heuristic, nm, config)
}

/// Executes an existing repartition on `grid`.
pub fn execute_repartition(
    grid: &Grid,
    plan: &Repartition,
    heuristic: Heuristic,
    nm: u32,
    config: ExecConfig,
) -> Result<GridOutcome, HeuristicError> {
    let mut clusters = Vec::with_capacity(grid.len());
    let mut makespan = 0.0f64;
    for (id, cluster) in grid.iter() {
        let scenarios = plan.scenarios_of(id);
        let schedule = if scenarios.is_empty() {
            None
        } else {
            let inst = Instance::new(scenarios.len() as u32, nm, cluster.resources);
            let grouping = heuristic.grouping(inst, &cluster.timing)?;
            let sched = execute(inst, &cluster.timing, &grouping, config)
                .expect("heuristics build valid groupings");
            makespan = makespan.max(sched.makespan);
            Some(sched)
        };
        clusters.push(ClusterOutcome {
            cluster: id,
            scenarios,
            schedule,
        });
    }
    Ok(GridOutcome {
        repartition: plan.clone(),
        clusters,
        makespan,
    })
}

/// Like [`run_grid`], but charges wide-area staging costs per cluster
/// (stage-in before the first month, final repatriation after the last
/// one) using one [`crate::transfer::Link`] per cluster.
pub fn run_grid_with_staging(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    config: ExecConfig,
    links: &[crate::transfer::Link],
    staging: &crate::transfer::StagingModel,
) -> Result<GridOutcome, HeuristicError> {
    assert_eq!(links.len(), grid.len(), "one link per cluster");
    let mut out = run_grid(grid, heuristic, ns, nm, config)?;
    let mut makespan = 0.0f64;
    for (c, link) in out.clusters.iter().zip(links) {
        if c.scenarios.is_empty() {
            continue;
        }
        let (pre, post) =
            crate::transfer::staging_delays(staging, link, c.scenarios.len() as u32, nm);
        makespan = makespan.max(pre + c.makespan() + post);
    }
    out.makespan = makespan;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::{Link, StagingModel};
    use oa_platform::presets::benchmark_grid;
    use oa_sched::hetero::grid_performance;

    #[test]
    fn grid_run_covers_all_scenarios() {
        let grid = benchmark_grid(30);
        let out = run_grid(&grid, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
        let total: usize = out.clusters.iter().map(|c| c.scenarios.len()).sum();
        assert_eq!(total, 10);
        for c in &out.clusters {
            if let Some(s) = &c.schedule {
                s.validate().unwrap();
                assert_eq!(s.instance.ns as usize, c.scenarios.len());
            }
        }
    }

    #[test]
    fn grid_makespan_is_max_cluster_makespan() {
        let grid = benchmark_grid(25);
        let out = run_grid(&grid, Heuristic::Basic, 8, 10, ExecConfig::default()).unwrap();
        let max = out
            .clusters
            .iter()
            .map(super::ClusterOutcome::makespan)
            .fold(0.0, f64::max);
        assert_eq!(out.makespan, max);
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn simulated_makespan_close_to_predicted() {
        // The performance vectors *are* simulated makespans, so the
        // executed grid must match the planner's prediction exactly.
        let grid = benchmark_grid(40);
        let vectors = grid_performance(&grid, Heuristic::Knapsack, 10, 12);
        let plan = repartition(&vectors);
        let predicted = plan.predicted_makespan(&vectors);
        let out = execute_repartition(&grid, &plan, Heuristic::Knapsack, 12, ExecConfig::default())
            .unwrap();
        assert!(
            (out.makespan - predicted).abs() < 1e-6,
            "executed {} vs predicted {predicted}",
            out.makespan
        );
    }

    #[test]
    fn more_clusters_never_slow_the_grid() {
        let grid = benchmark_grid(20);
        let mut prev = f64::INFINITY;
        for n in 1..=5 {
            let sub = grid.take(n);
            let out = run_grid(&sub, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
            assert!(
                out.makespan <= prev + 1e-6,
                "grid of {n} clusters slower than {}: {} > {prev}",
                n - 1,
                out.makespan
            );
            prev = out.makespan;
        }
    }

    #[test]
    fn staging_adds_a_small_constant() {
        let grid = benchmark_grid(25);
        let links = vec![Link::gigabit(); grid.len()];
        let plain = run_grid(&grid, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
        let staged = run_grid_with_staging(
            &grid,
            Heuristic::Knapsack,
            10,
            12,
            ExecConfig::default(),
            &links,
            &StagingModel::default(),
        )
        .unwrap();
        assert!(staged.makespan > plain.makespan);
        // Staging is seconds against hours of computation.
        assert!(staged.makespan < plain.makespan + 60.0);
    }

    #[test]
    #[should_panic(expected = "one link per cluster")]
    fn staging_requires_matching_links() {
        let grid = benchmark_grid(25);
        let _ = run_grid_with_staging(
            &grid,
            Heuristic::Basic,
            2,
            2,
            ExecConfig::default(),
            &[Link::gigabit()],
            &StagingModel::default(),
        );
    }

    #[test]
    fn empty_cluster_has_no_schedule() {
        // One overwhelming cluster: the others should stay empty when a
        // single fast cluster minimizes every greedy step… with 1
        // scenario only the best cluster is used.
        let grid = benchmark_grid(30);
        let out = run_grid(&grid, Heuristic::Knapsack, 1, 6, ExecConfig::default()).unwrap();
        let used = out.clusters.iter().filter(|c| c.schedule.is_some()).count();
        assert_eq!(used, 1);
        assert!(
            out.clusters[0].schedule.is_some(),
            "fastest (first) cluster should win"
        );
    }
}
