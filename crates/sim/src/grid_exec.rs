//! Grid-level execution: run a scenario repartition across clusters.
//!
//! This is the simulation backend of Section 6: given the repartition
//! computed by Algorithm 1, each cluster independently schedules its
//! subset of scenarios with a grouping heuristic (step 6 of Figure 9);
//! the grid makespan is the slowest cluster's makespan. Scenarios never
//! migrate — "once a scenario has been scheduled on a cluster, it can
//! not change location" (Section 5).

use serde::{Deserialize, Serialize};

use oa_platform::cluster::ClusterId;
use oa_platform::grid::Grid;
use oa_sched::hetero::{grid_performance, repartition, Repartition};
use oa_sched::heuristics::{Heuristic, HeuristicError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan};
use oa_trace::{EventKind, NullTracer, TraceEvent, Tracer, TransferKind};

use crate::engine::{simulate_campaign, CampaignOutcome};
use crate::executor::{execute_traced, ExecConfig};
use crate::schedule::Schedule;
use crate::tracing::ClusterTag;

/// One cluster's part of a grid execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Which cluster.
    pub cluster: ClusterId,
    /// Global scenario ids this cluster ran (local id = index here).
    pub scenarios: Vec<u32>,
    /// The local schedule (scenario ids are *local*), if any scenarios
    /// were assigned.
    pub schedule: Option<Schedule>,
}

impl ClusterOutcome {
    /// Local makespan (0 when the cluster ran nothing).
    pub fn makespan(&self) -> f64 {
        self.schedule.as_ref().map_or(0.0, |s| s.makespan)
    }
}

/// Outcome of a full grid execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridOutcome {
    /// The repartition that was executed.
    pub repartition: Repartition,
    /// Per-cluster outcomes, in cluster-id order.
    pub clusters: Vec<ClusterOutcome>,
    /// Grid makespan: the slowest cluster.
    pub makespan: f64,
}

/// Plans (via Algorithm 1 on `heuristic`'s performance vectors) and
/// executes `ns` scenarios of `nm` months on `grid`.
pub fn run_grid(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    config: ExecConfig,
) -> Result<GridOutcome, HeuristicError> {
    run_grid_traced(grid, heuristic, ns, nm, config, &mut NullTracer)
}

/// Like [`run_grid`], but streams every cluster's execution into
/// `tracer` — each cluster's events are stamped with its cluster id
/// (see [`ClusterTag`]), preceded by a `Decision` event naming the
/// grouping the heuristic chose there.
pub fn run_grid_traced<T: Tracer>(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    config: ExecConfig,
    tracer: &mut T,
) -> Result<GridOutcome, HeuristicError> {
    let vectors = grid_performance(grid, heuristic, ns, nm);
    let plan = repartition(&vectors);
    execute_repartition_traced(grid, &plan, heuristic, nm, config, tracer)
}

/// Executes an existing repartition on `grid`.
pub fn execute_repartition(
    grid: &Grid,
    plan: &Repartition,
    heuristic: Heuristic,
    nm: u32,
    config: ExecConfig,
) -> Result<GridOutcome, HeuristicError> {
    execute_repartition_traced(grid, plan, heuristic, nm, config, &mut NullTracer)
}

/// Traced variant of [`execute_repartition`]; see [`run_grid_traced`].
pub fn execute_repartition_traced<T: Tracer>(
    grid: &Grid,
    plan: &Repartition,
    heuristic: Heuristic,
    nm: u32,
    config: ExecConfig,
    tracer: &mut T,
) -> Result<GridOutcome, HeuristicError> {
    let mut clusters = Vec::with_capacity(grid.len());
    let mut makespan = 0.0f64;
    for (id, cluster) in grid.iter() {
        let scenarios = plan.scenarios_of(id);
        let schedule = if scenarios.is_empty() {
            None
        } else {
            let inst = Instance::new(scenarios.len() as u32, nm, cluster.resources);
            let grouping = heuristic.grouping(inst, &cluster.timing)?;
            let mut tag = ClusterTag::new(tracer, id.0, 0.0);
            if tag.enabled() {
                tag.record(TraceEvent::at(
                    0.0,
                    EventKind::Decision {
                        heuristic: heuristic.label().to_string(),
                        groups: grouping.groups().to_vec(),
                        post_procs: grouping.post_procs,
                    },
                ));
            }
            let sched = execute_traced(inst, &cluster.timing, &grouping, config, &mut tag)
                .expect("heuristics build valid groupings");
            makespan = makespan.max(sched.makespan);
            Some(sched)
        };
        clusters.push(ClusterOutcome {
            cluster: id,
            scenarios,
            schedule,
        });
    }
    Ok(GridOutcome {
        repartition: plan.clone(),
        clusters,
        makespan,
    })
}

/// Per-cluster campaign knobs for a configured grid run: the full
/// [`CampaignConfig`] (scenario policy × task granularity × recovery
/// model) plus a [`FaultPlan`] whose group ids are local to the
/// cluster's grouping. Before the engine refactor each cluster could
/// only run the fused, fault-free, least-advanced loop.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterCampaign {
    /// The cluster's event-loop configuration.
    pub config: CampaignConfig,
    /// Group failures to inject on this cluster.
    pub faults: FaultPlan,
}

/// One cluster's part of a configured grid execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfiguredClusterOutcome {
    /// Which cluster.
    pub cluster: ClusterId,
    /// Global scenario ids this cluster ran (local id = index here).
    pub scenarios: Vec<u32>,
    /// The campaign outcome, if any scenarios were assigned.
    pub outcome: Option<CampaignOutcome>,
}

impl ConfiguredClusterOutcome {
    /// Local makespan (0 when idle or stranded).
    pub fn makespan(&self) -> f64 {
        self.outcome
            .as_ref()
            .and_then(CampaignOutcome::makespan)
            .unwrap_or(0.0)
    }
}

/// Outcome of a configured grid execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfiguredGridOutcome {
    /// The repartition that was executed.
    pub repartition: Repartition,
    /// Per-cluster outcomes, in cluster-id order.
    pub clusters: Vec<ConfiguredClusterOutcome>,
    /// Grid makespan: the slowest completed cluster.
    pub makespan: f64,
    /// Whether every used cluster completed its campaign (no cluster
    /// was stranded by its fault plan).
    pub complete: bool,
}

/// Plans (via Algorithm 1 on `heuristic`'s performance vectors) and
/// executes `ns` scenarios of `nm` months on `grid`, with per-cluster
/// campaign knobs — one [`ClusterCampaign`] per cluster, in id order.
///
/// Panics if `campaigns.len() != grid.len()`.
pub fn run_grid_configured(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    campaigns: &[ClusterCampaign],
) -> Result<ConfiguredGridOutcome, HeuristicError> {
    let vectors = grid_performance(grid, heuristic, ns, nm);
    let plan = repartition(&vectors);
    execute_repartition_configured_traced(grid, &plan, heuristic, nm, campaigns, &mut NullTracer)
}

/// Executes an existing repartition with per-cluster campaign knobs,
/// streaming every cluster's events (cluster-stamped, with a `Decision`
/// per used cluster) into `tracer`. Panics if `campaigns.len() !=
/// grid.len()`.
pub fn execute_repartition_configured_traced<T: Tracer>(
    grid: &Grid,
    plan: &Repartition,
    heuristic: Heuristic,
    nm: u32,
    campaigns: &[ClusterCampaign],
    tracer: &mut T,
) -> Result<ConfiguredGridOutcome, HeuristicError> {
    assert_eq!(campaigns.len(), grid.len(), "one campaign per cluster");
    let mut clusters = Vec::with_capacity(grid.len());
    let mut makespan = 0.0f64;
    let mut complete = true;
    for ((id, cluster), campaign) in grid.iter().zip(campaigns) {
        let scenarios = plan.scenarios_of(id);
        let outcome = if scenarios.is_empty() {
            None
        } else {
            let inst = Instance::new(scenarios.len() as u32, nm, cluster.resources);
            let grouping = heuristic.grouping(inst, &cluster.timing)?;
            let mut tag = ClusterTag::new(tracer, id.0, 0.0);
            if tag.enabled() {
                tag.record(TraceEvent::at(
                    0.0,
                    EventKind::Decision {
                        heuristic: heuristic.label().to_string(),
                        groups: grouping.groups().to_vec(),
                        post_procs: grouping.post_procs,
                    },
                ));
            }
            let out = simulate_campaign(
                inst,
                &cluster.timing,
                &grouping,
                &campaign.config,
                &campaign.faults,
                &mut tag,
            )
            .expect("heuristics build valid groupings");
            match &out {
                CampaignOutcome::Completed(run) => makespan = makespan.max(run.makespan),
                CampaignOutcome::Stranded { .. } => complete = false,
            }
            Some(out)
        };
        clusters.push(ConfiguredClusterOutcome {
            cluster: id,
            scenarios,
            outcome,
        });
    }
    Ok(ConfiguredGridOutcome {
        repartition: plan.clone(),
        clusters,
        makespan,
        complete,
    })
}

/// Like [`run_grid`], but charges wide-area staging costs per cluster
/// (stage-in before the first month, final repatriation after the last
/// one) using one [`crate::transfer::Link`] per cluster.
pub fn run_grid_with_staging(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    config: ExecConfig,
    links: &[crate::transfer::Link],
    staging: &crate::transfer::StagingModel,
) -> Result<GridOutcome, HeuristicError> {
    run_grid_with_staging_traced(
        grid,
        heuristic,
        ns,
        nm,
        config,
        links,
        staging,
        &mut NullTracer,
    )
}

/// Traced variant of [`run_grid_with_staging`]: each cluster's compute
/// events are shifted onto the grid timeline by its stage-in delay, and
/// the stage-in / repatriation transfers appear as `TransferStart` /
/// `TransferFinish` pairs bracketing the computation.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_with_staging_traced<T: Tracer>(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    config: ExecConfig,
    links: &[crate::transfer::Link],
    staging: &crate::transfer::StagingModel,
    tracer: &mut T,
) -> Result<GridOutcome, HeuristicError> {
    assert_eq!(links.len(), grid.len(), "one link per cluster");
    let vectors = grid_performance(grid, heuristic, ns, nm);
    let plan = repartition(&vectors);
    let mut clusters = Vec::with_capacity(grid.len());
    let mut makespan = 0.0f64;
    for ((id, cluster), link) in grid.iter().zip(links) {
        let scenarios = plan.scenarios_of(id);
        let schedule = if scenarios.is_empty() {
            None
        } else {
            let n = scenarios.len() as u32;
            let inst = Instance::new(n, nm, cluster.resources);
            let grouping = heuristic.grouping(inst, &cluster.timing)?;
            let (pre, post) = crate::transfer::staging_delays(staging, link, n, nm);
            // Compute events start after stage-in completes.
            let mut tag = ClusterTag::new(tracer, id.0, pre);
            if tag.enabled() {
                tag.record(TraceEvent::at(
                    -pre, // absolute t = 0 after the tag's offset
                    EventKind::TransferStart {
                        kind: TransferKind::StageIn,
                        scenarios: n,
                        secs: pre,
                    },
                ));
                tag.record(TraceEvent::at(
                    0.0,
                    EventKind::TransferFinish {
                        kind: TransferKind::StageIn,
                        scenarios: n,
                    },
                ));
            }
            let sched = execute_traced(inst, &cluster.timing, &grouping, config, &mut tag)
                .expect("heuristics build valid groupings");
            if tag.enabled() {
                tag.record(TraceEvent::at(
                    sched.makespan,
                    EventKind::TransferStart {
                        kind: TransferKind::Repatriate,
                        scenarios: n,
                        secs: post,
                    },
                ));
                tag.record(TraceEvent::at(
                    sched.makespan + post,
                    EventKind::TransferFinish {
                        kind: TransferKind::Repatriate,
                        scenarios: n,
                    },
                ));
            }
            makespan = makespan.max(pre + sched.makespan + post);
            Some(sched)
        };
        clusters.push(ClusterOutcome {
            cluster: id,
            scenarios,
            schedule,
        });
    }
    Ok(GridOutcome {
        repartition: plan,
        clusters,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::{Link, StagingModel};
    use oa_platform::presets::benchmark_grid;
    use oa_sched::hetero::grid_performance;

    #[test]
    fn grid_run_covers_all_scenarios() {
        let grid = benchmark_grid(30);
        let out = run_grid(&grid, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
        let total: usize = out.clusters.iter().map(|c| c.scenarios.len()).sum();
        assert_eq!(total, 10);
        for c in &out.clusters {
            if let Some(s) = &c.schedule {
                s.validate().unwrap();
                assert_eq!(s.instance.ns as usize, c.scenarios.len());
            }
        }
    }

    #[test]
    fn grid_makespan_is_max_cluster_makespan() {
        let grid = benchmark_grid(25);
        let out = run_grid(&grid, Heuristic::Basic, 8, 10, ExecConfig::default()).unwrap();
        let max = out
            .clusters
            .iter()
            .map(super::ClusterOutcome::makespan)
            .fold(0.0, f64::max);
        assert_eq!(out.makespan, max);
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn simulated_makespan_close_to_predicted() {
        // The performance vectors *are* simulated makespans, so the
        // executed grid must match the planner's prediction exactly.
        let grid = benchmark_grid(40);
        let vectors = grid_performance(&grid, Heuristic::Knapsack, 10, 12);
        let plan = repartition(&vectors);
        let predicted = plan.predicted_makespan(&vectors);
        let out = execute_repartition(&grid, &plan, Heuristic::Knapsack, 12, ExecConfig::default())
            .unwrap();
        assert!(
            (out.makespan - predicted).abs() < 1e-6,
            "executed {} vs predicted {predicted}",
            out.makespan
        );
    }

    #[test]
    fn more_clusters_never_slow_the_grid() {
        let grid = benchmark_grid(20);
        let mut prev = f64::INFINITY;
        for n in 1..=5 {
            let sub = grid.take(n);
            let out = run_grid(&sub, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
            assert!(
                out.makespan <= prev + 1e-6,
                "grid of {n} clusters slower than {}: {} > {prev}",
                n - 1,
                out.makespan
            );
            prev = out.makespan;
        }
    }

    #[test]
    fn staging_adds_a_small_constant() {
        let grid = benchmark_grid(25);
        let links = vec![Link::gigabit(); grid.len()];
        let plain = run_grid(&grid, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
        let staged = run_grid_with_staging(
            &grid,
            Heuristic::Knapsack,
            10,
            12,
            ExecConfig::default(),
            &links,
            &StagingModel::default(),
        )
        .unwrap();
        assert!(staged.makespan > plain.makespan);
        // Staging is seconds against hours of computation.
        assert!(staged.makespan < plain.makespan + 60.0);
    }

    #[test]
    #[should_panic(expected = "one link per cluster")]
    fn staging_requires_matching_links() {
        let grid = benchmark_grid(25);
        let _ = run_grid_with_staging(
            &grid,
            Heuristic::Basic,
            2,
            2,
            ExecConfig::default(),
            &[Link::gigabit()],
            &StagingModel::default(),
        );
    }

    #[test]
    fn traced_grid_stamps_every_event_with_its_cluster() {
        use oa_trace::prelude::*;
        let grid = benchmark_grid(30);
        let mut sink = VecTracer::new();
        let out = run_grid_traced(
            &grid,
            Heuristic::Knapsack,
            10,
            12,
            ExecConfig::default(),
            &mut sink,
        )
        .unwrap();
        let events = sink.into_events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.cluster.is_some()));
        // Each used cluster announces its grouping decision.
        let decisions = events
            .iter()
            .filter(|e| {
                matches!(&e.kind, EventKind::Decision { heuristic, .. }
                    if heuristic == Heuristic::Knapsack.label())
            })
            .count();
        let used = out.clusters.iter().filter(|c| c.schedule.is_some()).count();
        assert_eq!(decisions, used);
        // The slowest cluster's campaign end is the grid makespan.
        let max_end = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::CampaignEnd { makespan } => Some(makespan),
                _ => None,
            })
            .fold(0.0, f64::max);
        assert!((max_end - out.makespan).abs() < 1e-9);
    }

    #[test]
    fn traced_staging_brackets_the_computation() {
        use oa_trace::prelude::*;
        let grid = benchmark_grid(25);
        let links = vec![Link::gigabit(); grid.len()];
        let mut sink = VecTracer::new();
        let out = run_grid_with_staging_traced(
            &grid,
            Heuristic::Knapsack,
            10,
            12,
            ExecConfig::default(),
            &links,
            &StagingModel::default(),
            &mut sink,
        )
        .unwrap();
        let untraced = run_grid_with_staging(
            &grid,
            Heuristic::Knapsack,
            10,
            12,
            ExecConfig::default(),
            &links,
            &StagingModel::default(),
        )
        .unwrap();
        assert_eq!(out, untraced);
        let events = sink.into_events();
        // Stage-ins start at the grid origin…
        assert!(events.iter().any(|e| {
            matches!(
                e.kind,
                EventKind::TransferStart {
                    kind: TransferKind::StageIn,
                    ..
                }
            ) && e.t == 0.0
        }));
        // …and the last repatriation lands exactly at the grid makespan.
        let last_repatriation = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::TransferFinish {
                        kind: TransferKind::Repatriate,
                        ..
                    }
                )
            })
            .map(|e| e.t)
            .fold(0.0, f64::max);
        assert!(
            (last_repatriation - out.makespan).abs() < 1e-9,
            "{last_repatriation} vs {}",
            out.makespan
        );
    }

    #[test]
    fn configured_grid_with_defaults_matches_the_plain_run() {
        let grid = benchmark_grid(30);
        let plain = run_grid(&grid, Heuristic::Knapsack, 10, 12, ExecConfig::default()).unwrap();
        let campaigns = vec![ClusterCampaign::default(); grid.len()];
        let configured =
            run_grid_configured(&grid, Heuristic::Knapsack, 10, 12, &campaigns).unwrap();
        assert!(configured.complete);
        assert_eq!(configured.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(configured.repartition, plain.repartition);
        for (c, p) in configured.clusters.iter().zip(&plain.clusters) {
            assert_eq!(c.scenarios, p.scenarios);
            assert_eq!(c.makespan().to_bits(), p.makespan().to_bits());
        }
    }

    #[test]
    fn per_cluster_knobs_are_independent() {
        use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, ScenarioPolicy};
        let grid = benchmark_grid(30);
        // Cluster 0 runs unfused + round-robin; cluster 1 takes a
        // mid-campaign group failure; the rest keep the paper defaults.
        let mut campaigns = vec![ClusterCampaign::default(); grid.len()];
        campaigns[0].config = CampaignConfig::unfused(ScenarioPolicy::RoundRobin);
        campaigns[1].faults = FaultPlan::none().kill(0, 2000.0);
        let out = run_grid_configured(&grid, Heuristic::Knapsack, 10, 12, &campaigns).unwrap();
        assert!(out.complete, "one group failure cannot strand a cluster");
        let defaults = vec![ClusterCampaign::default(); grid.len()];
        let base = run_grid_configured(&grid, Heuristic::Knapsack, 10, 12, &defaults).unwrap();
        // Untouched clusters are bitwise unchanged…
        for i in 2..grid.len() {
            assert_eq!(
                out.clusters[i].makespan().to_bits(),
                base.clusters[i].makespan().to_bits()
            );
        }
        // …and the failure made cluster 1 strictly slower.
        assert!(out.clusters[1].makespan() > base.clusters[1].makespan());
        let run = out.clusters[1]
            .outcome
            .as_ref()
            .unwrap()
            .completed()
            .unwrap();
        assert_eq!(run.months_lost, 1);
        // The unfused cluster still completed with a plausible makespan.
        assert!(out.clusters[0].makespan() > 0.0);
        assert_eq!(
            campaigns[0].config.granularity,
            Granularity::Unfused,
            "knob survived the round trip"
        );
    }

    #[test]
    fn killing_every_group_of_a_cluster_strands_the_grid() {
        use oa_sched::policy::FaultPlan;
        let grid = benchmark_grid(30);
        let defaults = vec![ClusterCampaign::default(); grid.len()];
        let base = run_grid_configured(&grid, Heuristic::Knapsack, 10, 12, &defaults).unwrap();
        let groups_used = {
            // Recover the grouping sizes cluster 0 used from its trace.
            use oa_trace::prelude::*;
            let mut sink = VecTracer::new();
            let vectors = grid_performance(&grid, Heuristic::Knapsack, 10, 12);
            let plan = repartition(&vectors);
            execute_repartition_configured_traced(
                &grid,
                &plan,
                Heuristic::Knapsack,
                12,
                &defaults,
                &mut sink,
            )
            .unwrap();
            sink.into_events()
                .iter()
                .find_map(|e| match (&e.kind, e.cluster) {
                    (EventKind::Decision { groups, .. }, Some(0)) => Some(groups.len()),
                    _ => None,
                })
                .expect("cluster 0 announces its grouping")
        };
        let mut campaigns = defaults;
        campaigns[0].faults = FaultPlan {
            failures: (0..groups_used).map(|g| (g, 10.0)).collect(),
        };
        let out = run_grid_configured(&grid, Heuristic::Knapsack, 10, 12, &campaigns).unwrap();
        assert!(!out.complete, "an all-dead cluster strands the grid");
        assert!(matches!(
            out.clusters[0].outcome,
            Some(CampaignOutcome::Stranded { .. })
        ));
        // Survivors still finish their own assignments.
        for i in 1..grid.len() {
            assert_eq!(
                out.clusters[i].makespan().to_bits(),
                base.clusters[i].makespan().to_bits()
            );
        }
    }

    #[test]
    fn empty_cluster_has_no_schedule() {
        // One overwhelming cluster: the others should stay empty when a
        // single fast cluster minimizes every greedy step… with 1
        // scenario only the best cluster is used.
        let grid = benchmark_grid(30);
        let out = run_grid(&grid, Heuristic::Knapsack, 1, 6, ExecConfig::default()).unwrap();
        let used = out.clusters.iter().filter(|c| c.schedule.is_some()).count();
        assert_eq!(used, 1);
        assert!(
            out.clusters[0].schedule.is_some(),
            "fastest (first) cluster should win"
        );
    }
}
