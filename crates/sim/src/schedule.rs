//! Concrete schedules: every task pinned to processors and times.
//!
//! Where `oa-sched::estimate` returns only aggregates, the simulator
//! materializes the full schedule — one record per task with its
//! processor set and interval — so it can be validated against the
//! application's dependence structure and rendered as a Gantt chart
//! (the paper's Figures 3–6).

use serde::{Deserialize, Serialize};

use oa_analyze::schedule::{ScheduleView, TaskSlot};
use oa_analyze::{Diagnostic, Report, RuleCode, Severity};
use oa_sched::params::Instance;
use oa_workflow::fusion::FusedTask;
use oa_workflow::task::TaskKind;

/// Contiguous processor interval `[first, first + count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcRange {
    /// First processor id.
    pub first: u32,
    /// Number of processors.
    pub count: u32,
}

impl ProcRange {
    /// Single-processor range.
    pub fn single(proc: u32) -> Self {
        Self {
            first: proc,
            count: 1,
        }
    }

    /// Whether two ranges share any processor.
    pub fn overlaps(&self, other: &ProcRange) -> bool {
        self.first < other.first + other.count && other.first < self.first + self.count
    }

    /// Iterator over the processor ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        self.first..self.first + self.count
    }
}

/// One scheduled task instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Which fused task ran.
    pub task: FusedTask,
    /// The processors it occupied.
    pub procs: ProcRange,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Index of the multiprocessor group that ran it (`None` for post
    /// tasks executed on pool processors).
    pub group: Option<u32>,
}

/// Errors found by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A task appears zero or several times.
    WrongMultiplicity {
        /// Task concerned.
        task: FusedTask,
        /// Occurrences found.
        count: usize,
    },
    /// A record violates a dependence of the fused DAG.
    DependenceViolated {
        /// Task concerned.
        task: FusedTask,
        /// Offending start time.
        starts: f64,
        /// Predecessor completion time.
        pred_ends: f64,
    },
    /// Two records overlap in time on a shared processor.
    ProcessorConflict {
        /// First conflicting task.
        a: FusedTask,
        /// Second conflicting task.
        b: FusedTask,
    },
    /// A record uses processors outside `0..R`.
    ProcOutOfRange {
        /// Task concerned.
        task: FusedTask,
        /// First processor id.
        first: u32,
        /// Occurrences found.
        count: u32,
    },
    /// A record has a non-positive or non-finite duration.
    BadInterval {
        /// Task concerned.
        task: FusedTask,
    },
    /// A main task runs on a group size outside 4..=11.
    BadGroupSize {
        /// Task concerned.
        task: FusedTask,
        /// Group size used.
        size: u32,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongMultiplicity { task, count } => {
                write!(f, "task {task:?} appears {count} times")
            }
            ScheduleError::DependenceViolated {
                task,
                starts,
                pred_ends,
            } => write!(
                f,
                "task {task:?} starts at {starts} before its predecessor ends at {pred_ends}"
            ),
            ScheduleError::ProcessorConflict { a, b } => {
                write!(f, "tasks {a:?} and {b:?} overlap on a processor")
            }
            ScheduleError::ProcOutOfRange { task, first, count } => {
                write!(
                    f,
                    "task {:?} uses procs [{first}, {}) out of range",
                    task,
                    first + count
                )
            }
            ScheduleError::BadInterval { task } => write!(f, "task {task:?} has a bad interval"),
            ScheduleError::BadGroupSize { task, size } => {
                write!(f, "task {task:?} ran on {size} processors")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete executed schedule for one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The instance that was executed.
    pub instance: Instance,
    /// All task records (mains and posts), in completion order.
    pub records: Vec<TaskRecord>,
    /// Campaign makespan, seconds.
    pub makespan: f64,
}

impl Schedule {
    /// Records of main tasks only.
    pub fn mains(&self) -> impl Iterator<Item = &TaskRecord> {
        self.records
            .iter()
            .filter(|r| r.task.kind == TaskKind::FusedMain)
    }

    /// Records of post tasks only.
    pub fn posts(&self) -> impl Iterator<Item = &TaskRecord> {
        self.records
            .iter()
            .filter(|r| r.task.kind == TaskKind::FusedPost)
    }

    /// Finds the record of a given task.
    pub fn record_of(&self, task: FusedTask) -> Option<&TaskRecord> {
        self.records.iter().find(|r| r.task == task)
    }

    /// The schedule as `oa-analyze` sees it: instance dimensions plus
    /// one [`TaskSlot`] per record, in record order.
    pub fn view(&self) -> ScheduleView {
        ScheduleView {
            ns: self.instance.ns,
            nm: self.instance.nm,
            r: self.instance.r,
            slots: self
                .records
                .iter()
                .map(|r| TaskSlot {
                    scenario: r.task.scenario,
                    month: r.task.month,
                    is_post: r.task.kind == TaskKind::FusedPost,
                    first_proc: r.procs.first,
                    proc_count: r.procs.count,
                    start: r.start,
                    end: r.end,
                    group: r.group,
                })
                .collect(),
        }
    }

    /// Runs the full schedule-layer rule set (OA008–OA015) and returns
    /// every diagnostic, warnings included.
    pub fn analyze(&self) -> Report {
        Report::from_diagnostics(oa_analyze::schedule::check_schedule(&self.view()))
    }

    /// Every hard violation in the schedule, in check order — the
    /// collect-all face of [`Schedule::validate`]. Advisory diagnostics
    /// (idle gaps, post starvation) are not errors and are omitted; use
    /// [`Schedule::analyze`] for those.
    pub fn validate_all(&self) -> Vec<ScheduleError> {
        self.analyze()
            .of_severity(Severity::Error)
            .filter_map(|d| self.error_of(d))
            .collect()
    }

    /// Full validation: multiplicities, dependences, processor
    /// exclusivity, ranges and group sizes. Returns the first violation
    /// found; [`Schedule::validate_all`] reports them all.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        match self.validate_all().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Maps an error-severity diagnostic back to the typed error the
    /// original fail-fast validator raised, using the diagnostic's
    /// structured location and quantities.
    fn error_of(&self, d: &Diagnostic) -> Option<ScheduleError> {
        let task_at = |loc: &oa_analyze::Location| -> Option<FusedTask> {
            let kind = match loc.task.as_deref()? {
                "post" => TaskKind::FusedPost,
                _ => TaskKind::FusedMain,
            };
            Some(FusedTask {
                scenario: loc.scenario?,
                month: loc.month?,
                kind,
            })
        };
        let task = task_at(&d.location)?;
        Some(match d.rule {
            RuleCode::WrongMultiplicity => ScheduleError::WrongMultiplicity {
                task,
                count: d.quantity("count").map_or_else(
                    || self.records.iter().filter(|r| r.task == task).count(),
                    |c| c as usize,
                ),
            },
            RuleCode::DependenceViolated => ScheduleError::DependenceViolated {
                task,
                starts: d.quantity("starts")?,
                pred_ends: d.quantity("pred_ends")?,
            },
            RuleCode::ProcessorConflict => ScheduleError::ProcessorConflict {
                a: task,
                b: task_at(d.related.as_ref()?)?,
            },
            RuleCode::ProcOutOfRange => {
                let (first, count) = d.location.procs?;
                ScheduleError::ProcOutOfRange { task, first, count }
            }
            RuleCode::BadInterval => ScheduleError::BadInterval { task },
            RuleCode::ScheduledGroupSize => ScheduleError::BadGroupSize {
                task,
                size: d.quantity("size").map_or(d.location.procs?.1, |s| s as u32),
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: FusedTask, first: u32, count: u32, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            task,
            procs: ProcRange { first, count },
            start,
            end,
            group: None,
        }
    }

    fn tiny_valid() -> Schedule {
        // 1 scenario × 2 months on 5 procs: group of 4 + 1 post proc.
        let inst = Instance::new(1, 2, 5);
        Schedule {
            instance: inst,
            records: vec![
                rec(FusedTask::main(0, 0), 0, 4, 0.0, 100.0),
                rec(FusedTask::post(0, 0), 4, 1, 100.0, 110.0),
                rec(FusedTask::main(0, 1), 0, 4, 100.0, 200.0),
                rec(FusedTask::post(0, 1), 4, 1, 200.0, 210.0),
            ],
            makespan: 210.0,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        tiny_valid().validate().unwrap();
    }

    #[test]
    fn missing_task_detected() {
        let mut s = tiny_valid();
        s.records.pop();
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::WrongMultiplicity { count: 0, .. })
        ));
    }

    #[test]
    fn duplicate_task_detected() {
        let mut s = tiny_valid();
        let dup = s.records[0];
        s.records.push(TaskRecord {
            start: 300.0,
            end: 400.0,
            ..dup
        });
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::WrongMultiplicity { count: 2, .. })
        ));
    }

    #[test]
    fn dependence_violation_detected() {
        let mut s = tiny_valid();
        // main(0,1) starts before main(0,0) ends.
        s.records[2].start = 50.0;
        s.records[2].end = 150.0;
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn post_before_main_detected() {
        let mut s = tiny_valid();
        s.records[1].start = 90.0;
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn processor_conflict_detected() {
        let mut s = tiny_valid();
        // Post(0,0) moved onto the group's processors while main(0,1) runs.
        s.records[1] = rec(FusedTask::post(0, 0), 0, 1, 150.0, 160.0);
        let e = s.validate().unwrap_err();
        assert!(
            matches!(e, ScheduleError::ProcessorConflict { .. }),
            "{e:?}"
        );
    }

    #[test]
    fn out_of_range_detected() {
        let mut s = tiny_valid();
        s.records[1].procs = ProcRange { first: 5, count: 1 };
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::ProcOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_group_size_detected() {
        let mut s = tiny_valid();
        s.records[0].procs = ProcRange { first: 0, count: 3 };
        s.records[2].procs = ProcRange { first: 0, count: 3 };
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::BadGroupSize { size: 3, .. })
        ));
    }

    #[test]
    fn bad_interval_detected() {
        let mut s = tiny_valid();
        s.records[0].end = s.records[0].start;
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::BadInterval { .. })
        ));
    }

    #[test]
    fn corrupted_schedule_reports_every_defect_in_one_pass() {
        // Overlapping processor ranges AND a violated month dependence:
        // the collect-all validator surfaces both together.
        let mut s = tiny_valid();
        s.records[2].start = 50.0;
        s.records[2].end = 150.0;
        let errs = s.validate_all();
        assert!(errs.len() >= 2, "{errs:?}");
        assert!(
            errs.iter()
                .any(|e| matches!(e, ScheduleError::DependenceViolated { .. })),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| matches!(e, ScheduleError::ProcessorConflict { .. })),
            "{errs:?}"
        );
        // The fail-fast face still reports the first error only.
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::DependenceViolated { .. })
        ));
        let report = s.analyze();
        assert!(report.has_errors());
        assert!(
            report.render_text().contains("error[OA009]"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn proc_range_overlap_logic() {
        let a = ProcRange { first: 0, count: 4 };
        let b = ProcRange { first: 3, count: 2 };
        let c = ProcRange { first: 4, count: 2 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(ProcRange::single(7).iter().collect::<Vec<_>>(), vec![7]);
    }
}
