//! Concrete schedules: every task pinned to processors and times.
//!
//! Where `oa-sched::estimate` returns only aggregates, the simulator
//! materializes the full schedule — one record per task with its
//! processor set and interval — so it can be validated against the
//! application's dependence structure and rendered as a Gantt chart
//! (the paper's Figures 3–6).

use serde::{Deserialize, Serialize};

use oa_sched::params::Instance;
use oa_workflow::fusion::FusedTask;
use oa_workflow::task::TaskKind;

/// Contiguous processor interval `[first, first + count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcRange {
    /// First processor id.
    pub first: u32,
    /// Number of processors.
    pub count: u32,
}

impl ProcRange {
    /// Single-processor range.
    pub fn single(proc: u32) -> Self {
        Self { first: proc, count: 1 }
    }

    /// Whether two ranges share any processor.
    pub fn overlaps(&self, other: &ProcRange) -> bool {
        self.first < other.first + other.count && other.first < self.first + self.count
    }

    /// Iterator over the processor ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        self.first..self.first + self.count
    }
}

/// One scheduled task instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Which fused task ran.
    pub task: FusedTask,
    /// The processors it occupied.
    pub procs: ProcRange,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Index of the multiprocessor group that ran it (`None` for post
    /// tasks executed on pool processors).
    pub group: Option<u32>,
}

/// Errors found by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A task appears zero or several times.
    WrongMultiplicity {
        /// Task concerned.
        task: FusedTask,
        /// Occurrences found.
        count: usize,
    },
    /// A record violates a dependence of the fused DAG.
    DependenceViolated {
        /// Task concerned.
        task: FusedTask,
        /// Offending start time.
        starts: f64,
        /// Predecessor completion time.
        pred_ends: f64,
    },
    /// Two records overlap in time on a shared processor.
    ProcessorConflict {
        /// First conflicting task.
        a: FusedTask,
        /// Second conflicting task.
        b: FusedTask,
    },
    /// A record uses processors outside `0..R`.
    ProcOutOfRange {
        /// Task concerned.
        task: FusedTask,
        /// First processor id.
        first: u32,
        /// Occurrences found.
        count: u32,
    },
    /// A record has a non-positive or non-finite duration.
    BadInterval {
        /// Task concerned.
        task: FusedTask,
    },
    /// A main task runs on a group size outside 4..=11.
    BadGroupSize {
        /// Task concerned.
        task: FusedTask,
        /// Group size used.
        size: u32,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongMultiplicity { task, count } => {
                write!(f, "task {:?} appears {count} times", task)
            }
            ScheduleError::DependenceViolated { task, starts, pred_ends } => write!(
                f,
                "task {:?} starts at {starts} before its predecessor ends at {pred_ends}",
                task
            ),
            ScheduleError::ProcessorConflict { a, b } => {
                write!(f, "tasks {:?} and {:?} overlap on a processor", a, b)
            }
            ScheduleError::ProcOutOfRange { task, first, count } => {
                write!(f, "task {:?} uses procs [{first}, {}) out of range", task, first + count)
            }
            ScheduleError::BadInterval { task } => write!(f, "task {:?} has a bad interval", task),
            ScheduleError::BadGroupSize { task, size } => {
                write!(f, "task {:?} ran on {size} processors", task)
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete executed schedule for one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The instance that was executed.
    pub instance: Instance,
    /// All task records (mains and posts), in completion order.
    pub records: Vec<TaskRecord>,
    /// Campaign makespan, seconds.
    pub makespan: f64,
}

impl Schedule {
    /// Records of main tasks only.
    pub fn mains(&self) -> impl Iterator<Item = &TaskRecord> {
        self.records.iter().filter(|r| r.task.kind == TaskKind::FusedMain)
    }

    /// Records of post tasks only.
    pub fn posts(&self) -> impl Iterator<Item = &TaskRecord> {
        self.records.iter().filter(|r| r.task.kind == TaskKind::FusedPost)
    }

    /// Finds the record of a given task.
    pub fn record_of(&self, task: FusedTask) -> Option<&TaskRecord> {
        self.records.iter().find(|r| r.task == task)
    }

    /// Full validation: multiplicities, dependences, processor
    /// exclusivity, ranges and group sizes.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        let inst = self.instance;
        let expected = inst.nbtasks() as usize;

        // Multiplicity via dense per-(s, m, kind) counters.
        let index = |t: &FusedTask| {
            (t.scenario as usize * inst.nm as usize + t.month as usize) * 2
                + (t.kind == TaskKind::FusedPost) as usize
        };
        let mut seen: Vec<u8> = vec![0; expected * 2];
        for r in &self.records {
            if !r.start.is_finite() || !r.end.is_finite() || r.end <= r.start {
                return Err(ScheduleError::BadInterval { task: r.task });
            }
            if r.procs.count == 0 || r.procs.first + r.procs.count > inst.r {
                return Err(ScheduleError::ProcOutOfRange {
                    task: r.task,
                    first: r.procs.first,
                    count: r.procs.count,
                });
            }
            if r.task.kind == TaskKind::FusedMain && !(4..=11).contains(&r.procs.count) {
                return Err(ScheduleError::BadGroupSize { task: r.task, size: r.procs.count });
            }
            let i = index(&r.task);
            seen[i] = seen[i].saturating_add(1);
        }
        for s in 0..inst.ns {
            for m in 0..inst.nm {
                for kind in [TaskKind::FusedMain, TaskKind::FusedPost] {
                    let t = FusedTask { scenario: s, month: m, kind };
                    let c = seen[index(&t)] as usize;
                    if c != 1 {
                        return Err(ScheduleError::WrongMultiplicity { task: t, count: c });
                    }
                }
            }
        }

        // Dependences: main(s, m−1) → main(s, m); main(s, m) → post(s, m).
        let mut main_end = vec![0.0f64; expected];
        let mut main_start = vec![0.0f64; expected];
        let midx = |s: u32, m: u32| s as usize * inst.nm as usize + m as usize;
        for r in self.mains() {
            main_end[midx(r.task.scenario, r.task.month)] = r.end;
            main_start[midx(r.task.scenario, r.task.month)] = r.start;
        }
        const TOL: f64 = 1e-9;
        for s in 0..inst.ns {
            for m in 1..inst.nm {
                let pred = main_end[midx(s, m - 1)];
                let start = main_start[midx(s, m)];
                if start + TOL < pred {
                    return Err(ScheduleError::DependenceViolated {
                        task: FusedTask::main(s, m),
                        starts: start,
                        pred_ends: pred,
                    });
                }
            }
        }
        for r in self.posts() {
            let pred = main_end[midx(r.task.scenario, r.task.month)];
            if r.start + TOL < pred {
                return Err(ScheduleError::DependenceViolated {
                    task: r.task,
                    starts: r.start,
                    pred_ends: pred,
                });
            }
        }

        // Processor exclusivity: sweep per processor.
        let mut by_proc: Vec<Vec<(f64, f64, FusedTask)>> = vec![Vec::new(); inst.r as usize];
        for r in &self.records {
            for p in r.procs.iter() {
                by_proc[p as usize].push((r.start, r.end, r.task));
            }
        }
        for intervals in &mut by_proc {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                if w[1].0 + TOL < w[0].1 {
                    return Err(ScheduleError::ProcessorConflict { a: w[0].2, b: w[1].2 });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: FusedTask, first: u32, count: u32, start: f64, end: f64) -> TaskRecord {
        TaskRecord { task, procs: ProcRange { first, count }, start, end, group: None }
    }

    fn tiny_valid() -> Schedule {
        // 1 scenario × 2 months on 5 procs: group of 4 + 1 post proc.
        let inst = Instance::new(1, 2, 5);
        Schedule {
            instance: inst,
            records: vec![
                rec(FusedTask::main(0, 0), 0, 4, 0.0, 100.0),
                rec(FusedTask::post(0, 0), 4, 1, 100.0, 110.0),
                rec(FusedTask::main(0, 1), 0, 4, 100.0, 200.0),
                rec(FusedTask::post(0, 1), 4, 1, 200.0, 210.0),
            ],
            makespan: 210.0,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        tiny_valid().validate().unwrap();
    }

    #[test]
    fn missing_task_detected() {
        let mut s = tiny_valid();
        s.records.pop();
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::WrongMultiplicity { count: 0, .. })
        ));
    }

    #[test]
    fn duplicate_task_detected() {
        let mut s = tiny_valid();
        let dup = s.records[0];
        s.records.push(TaskRecord { start: 300.0, end: 400.0, ..dup });
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::WrongMultiplicity { count: 2, .. })
        ));
    }

    #[test]
    fn dependence_violation_detected() {
        let mut s = tiny_valid();
        // main(0,1) starts before main(0,0) ends.
        s.records[2].start = 50.0;
        s.records[2].end = 150.0;
        assert!(matches!(s.validate(), Err(ScheduleError::DependenceViolated { .. })));
    }

    #[test]
    fn post_before_main_detected() {
        let mut s = tiny_valid();
        s.records[1].start = 90.0;
        assert!(matches!(s.validate(), Err(ScheduleError::DependenceViolated { .. })));
    }

    #[test]
    fn processor_conflict_detected() {
        let mut s = tiny_valid();
        // Post(0,0) moved onto the group's processors while main(0,1) runs.
        s.records[1] = rec(FusedTask::post(0, 0), 0, 1, 150.0, 160.0);
        let e = s.validate().unwrap_err();
        assert!(matches!(e, ScheduleError::ProcessorConflict { .. }), "{e:?}");
    }

    #[test]
    fn out_of_range_detected() {
        let mut s = tiny_valid();
        s.records[1].procs = ProcRange { first: 5, count: 1 };
        assert!(matches!(s.validate(), Err(ScheduleError::ProcOutOfRange { .. })));
    }

    #[test]
    fn bad_group_size_detected() {
        let mut s = tiny_valid();
        s.records[0].procs = ProcRange { first: 0, count: 3 };
        s.records[2].procs = ProcRange { first: 0, count: 3 };
        assert!(matches!(s.validate(), Err(ScheduleError::BadGroupSize { size: 3, .. })));
    }

    #[test]
    fn bad_interval_detected() {
        let mut s = tiny_valid();
        s.records[0].end = s.records[0].start;
        assert!(matches!(s.validate(), Err(ScheduleError::BadInterval { .. })));
    }

    #[test]
    fn proc_range_overlap_logic() {
        let a = ProcRange { first: 0, count: 4 };
        let b = ProcRange { first: 3, count: 2 };
        let c = ProcRange { first: 4, count: 2 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(ProcRange::single(7).iter().collect::<Vec<_>>(), vec![7]);
    }
}
