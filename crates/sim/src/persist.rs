//! Schedule persistence and comparison.
//!
//! Campaign schedules are hours-long objects worth keeping: saved
//! traces feed post-mortem analysis, regression comparisons between
//! heuristic versions, and external plotting. Schedules serialize to
//! JSON (every type in [`crate::schedule`] derives serde) and
//! [`compare`] quantifies how two schedules of the *same instance*
//! differ.

use std::path::Path;

use serde::{Deserialize, Serialize};

use oa_workflow::task::TaskKind;

use crate::schedule::Schedule;

/// I/O + format errors for schedule persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// The loaded schedule fails structural validation.
    Invalid(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Json(e) => write!(f, "json: {e}"),
            PersistError::Invalid(m) => write!(f, "invalid schedule: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Saves a schedule as pretty JSON.
pub fn save(schedule: &Schedule, path: &Path) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(schedule)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads and re-validates a schedule. Tampered or truncated files are
/// rejected rather than silently analyzed.
pub fn load(path: &Path) -> Result<Schedule, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let schedule: Schedule = serde_json::from_str(&text)?;
    schedule
        .validate()
        .map_err(|e| PersistError::Invalid(e.to_string()))?;
    Ok(schedule)
}

/// Differences between two schedules of the same instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleDiff {
    /// `b.makespan − a.makespan`, seconds (negative = `b` faster).
    pub makespan_delta: f64,
    /// Relative gain of `b` over `a`, percent.
    pub gain_pct: f64,
    /// Per-scenario finish-time deltas (`b − a`), seconds.
    pub scenario_finish_delta: Vec<f64>,
    /// Tasks placed on a different processor set.
    pub moved_tasks: u64,
    /// Tasks with a different start time (beyond tolerance).
    pub retimed_tasks: u64,
}

/// Compares two schedules of the same instance. Panics if the
/// instances differ — diffing campaigns of different shapes is
/// meaningless.
pub fn compare(a: &Schedule, b: &Schedule) -> ScheduleDiff {
    assert_eq!(
        a.instance, b.instance,
        "schedules describe different instances"
    );
    let inst = a.instance;
    let mut finish_a = vec![0.0f64; inst.ns as usize];
    let mut finish_b = vec![0.0f64; inst.ns as usize];
    // Index records by task identity for movement detection.
    let key = |r: &crate::schedule::TaskRecord| {
        (
            r.task.scenario,
            r.task.month,
            r.task.kind == TaskKind::FusedPost,
        )
    };
    // BTreeMap, not HashMap: the key is an Ord tuple and an ordered map
    // keeps this path inside the workspace's determinism audit (ND001)
    // — lookups only today, but map iteration must never be one
    // refactor away from seed-dependent output.
    let mut map_a = std::collections::BTreeMap::new();
    for r in &a.records {
        map_a.insert(key(r), *r);
        let f = &mut finish_a[r.task.scenario as usize];
        *f = f.max(r.end);
    }
    let mut moved = 0u64;
    let mut retimed = 0u64;
    const TOL: f64 = 1e-6;
    for r in &b.records {
        let f = &mut finish_b[r.task.scenario as usize];
        *f = f.max(r.end);
        if let Some(old) = map_a.get(&key(r)) {
            if old.procs != r.procs {
                moved += 1;
            }
            if (old.start - r.start).abs() > TOL {
                retimed += 1;
            }
        }
    }
    let makespan_delta = b.makespan - a.makespan;
    ScheduleDiff {
        makespan_delta,
        gain_pct: if a.makespan > 0.0 {
            -makespan_delta / a.makespan * 100.0
        } else {
            0.0
        },
        scenario_finish_delta: finish_a.iter().zip(&finish_b).map(|(x, y)| y - x).collect(),
        moved_tasks: moved,
        retimed_tasks: retimed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use oa_platform::presets::reference_cluster;
    use oa_sched::heuristics::Heuristic;
    use oa_sched::params::Instance;

    fn schedule(h: Heuristic, r: u32) -> Schedule {
        let inst = Instance::new(4, 6, r);
        let t = reference_cluster(r).timing;
        let g = h.grouping(inst, &t).unwrap();
        execute_default(inst, &t, &g).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("oa-sim-persist-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let s = schedule(Heuristic::Knapsack, 30);
        let path = tmp("roundtrip");
        save(&s, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_tampered_schedules() {
        let mut s = schedule(Heuristic::Basic, 30);
        // Corrupt a dependence: month 1 starts before month 0 ends.
        let idx = s
            .records
            .iter()
            .position(|r| {
                r.task.month == 1 && r.task.kind == oa_workflow::task::TaskKind::FusedMain
            })
            .unwrap();
        s.records[idx].start = 0.0;
        let path = tmp("tampered");
        std::fs::write(&path, serde_json::to_string(&s).unwrap()).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(load(&path), Err(PersistError::Json(_))));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load(Path::new("/nonexistent/x.json")),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn identical_schedules_diff_to_zero() {
        let s = schedule(Heuristic::Knapsack, 30);
        let d = compare(&s, &s);
        assert_eq!(d.makespan_delta, 0.0);
        assert_eq!(d.moved_tasks, 0);
        assert_eq!(d.retimed_tasks, 0);
        assert!(d.scenario_finish_delta.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn diff_detects_the_improvement() {
        let basic = schedule(Heuristic::Basic, 30);
        let knap = schedule(Heuristic::Knapsack, 30);
        let d = compare(&basic, &knap);
        assert!(d.gain_pct >= 0.0, "knapsack should not lose here: {d:?}");
        if d.makespan_delta != 0.0 {
            assert!(d.retimed_tasks > 0);
        }
    }

    #[test]
    #[should_panic(expected = "different instances")]
    fn diff_refuses_mismatched_instances() {
        let a = schedule(Heuristic::Basic, 30);
        let b = schedule(Heuristic::Basic, 40);
        compare(&a, &b);
    }
}
