//! Deterministic execution of arbitrary workflow IRs.
//!
//! Two entry points:
//!
//! * [`execute_ir`] — a generic moldable list scheduler whose ready
//!   set is driven purely by IR precedence: moldable tasks start in
//!   strict bottom-level priority order (head-of-line blocking, no
//!   lower-priority task jumps the queue), rigid tasks backfill FIFO,
//!   and events pop in `(time, node)` order. On the ocean-atmosphere
//!   fused mesh this loop makes *exactly* the decisions of
//!   `oa_baselines::list_sched::list_schedule` with uniform
//!   allocations — pinned by a differential proptest — so the generic
//!   path is validated against an independently-written scheduler.
//! * [`simulate_ir`] — the campaign router: recognized preset meshes
//!   go through the legacy [`crate::engine`] (grouped processors,
//!   scenario policies, fault plans, the integer-time kernel —
//!   byte-identical to the pre-IR stack), and everything else runs on
//!   [`execute_ir`]'s flat pool.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::GroupingError;
use oa_sched::heuristics::{Heuristic, HeuristicError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity};
use oa_sched::time::{time_key, Time, TimeKey};
use oa_trace::Tracer;
use oa_workflow::dag::NodeId;
use oa_workflow::ir::{recognize, Durations, IrClass, IrError, WorkflowIr};

use crate::engine::{simulate_campaign, CampaignOutcome};

/// One executed IR task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrRecord {
    /// The task executed.
    pub node: NodeId,
    /// Processors occupied.
    pub procs: u32,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Outcome of a generic IR execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrSchedule {
    /// Processors of the flat pool.
    pub resources: u32,
    /// All task records, in start order.
    pub records: Vec<IrRecord>,
    /// Workflow makespan, seconds.
    pub makespan: f64,
}

/// Errors from generic IR execution.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExecError {
    /// The workflow failed structural validation.
    Invalid(IrError),
    /// A task needs more processors than the machine has.
    DoesNotFit {
        /// The task concerned.
        node: NodeId,
        /// Its minimum allocation.
        needs: u32,
        /// Processors available.
        resources: u32,
    },
}

impl std::fmt::Display for IrExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrExecError::Invalid(e) => write!(f, "invalid workflow: {e}"),
            IrExecError::DoesNotFit {
                node,
                needs,
                resources,
            } => write!(
                f,
                "node {} needs {needs} processors, the machine has {resources}",
                node.0
            ),
        }
    }
}

impl std::error::Error for IrExecError {}

/// Executes a workflow on a flat pool of `r` processors.
///
/// Allocation rule: a moldable task takes `min(max_procs, r)`
/// processors (never below its minimum — [`IrExecError::DoesNotFit`]
/// otherwise); rigid tasks take exactly their requirement. Priority is
/// the bottom level (longest downstream chain including the task
/// itself) at those allocations; ties break toward the smaller node
/// id, and event completions pop in `(time, lineage, kind, node)`
/// order, so the schedule is a pure function of the workflow.
pub fn execute_ir(ir: &WorkflowIr, d: &impl Durations, r: u32) -> Result<IrSchedule, IrExecError> {
    ir.validate().map_err(IrExecError::Invalid)?;

    let n = ir.node_count();
    let mut alloc = vec![0u32; n];
    let mut dur = vec![0.0f64; n];
    for (id, node) in ir.dag.iter() {
        let a = if node.kind.is_moldable() {
            node.kind.max_procs().min(r).max(node.kind.min_procs())
        } else {
            node.kind.min_procs()
        };
        if a > r {
            return Err(IrExecError::DoesNotFit {
                node: id,
                needs: node.kind.min_procs(),
                resources: r,
            });
        }
        alloc[id.index()] = a;
        dur[id.index()] = node.secs(a, d);
    }

    // Bottom levels over the chosen allocations (reverse topological
    // accumulation), and each node's lineage: the smallest source it
    // descends from. Completion ties break lineage-major, moldable
    // before rigid, then by node id — on a lowered mesh that is
    // exactly the `(scenario, main-before-post)` order of the
    // reference list scheduler.
    let order = ir.dag.topo_sort().expect("validated above");
    let mut bottom = vec![0.0f64; n];
    for &node in order.iter().rev() {
        let tail = ir
            .dag
            .successors(node)
            .iter()
            .map(|s| bottom[s.index()])
            .fold(0.0f64, f64::max);
        bottom[node.index()] = dur[node.index()] + tail;
    }
    let mut lineage: Vec<u32> = (0..n as u32).collect();
    for &node in &order {
        for &s in ir.dag.successors(node) {
            lineage[s.index()] = lineage[s.index()].min(lineage[node.index()]);
        }
    }
    let event_key = |v: NodeId| (lineage[v.index()], !ir.dag.node(v).kind.is_moldable(), v);

    // Ready sets: moldable tasks are picked by priority, rigid tasks
    // backfill FIFO in the order they became ready.
    let mut indeg: Vec<usize> = ir.dag.node_ids().map(|v| ir.dag.in_degree(v)).collect();
    let mut ready_moldable: Vec<NodeId> = Vec::new();
    let mut ready_rigid: VecDeque<NodeId> = VecDeque::new();
    let admit = |v: NodeId, mold: &mut Vec<NodeId>, rigid: &mut VecDeque<NodeId>| {
        if ir.dag.node(v).kind.is_moldable() {
            mold.push(v);
        } else {
            rigid.push_back(v);
        }
    };
    for v in ir.dag.node_ids() {
        if indeg[v.index()] == 0 {
            admit(v, &mut ready_moldable, &mut ready_rigid);
        }
    }

    let mut free = r;
    let mut events: BinaryHeap<TimeKey<(u32, bool, NodeId)>> = BinaryHeap::new();
    let mut records = Vec::with_capacity(n);
    let mut makespan = 0.0f64;
    let mut now = 0.0f64;

    loop {
        // Start moldable tasks in strict priority order: the best
        // bottom level first, smaller node id on ties; if the head
        // does not fit, nothing overtakes it. Candidates are scanned
        // in ascending node id so exact ties resolve to the smaller
        // id by first-seen, robustly at any magnitude.
        ready_moldable.sort_unstable();
        loop {
            let mut best: Option<usize> = None;
            for (i, &v) in ready_moldable.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some(b) => bottom[v.index()] > bottom[ready_moldable[b].index()] + 1e-12,
                };
                if better {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let v = ready_moldable[i];
            if alloc[v.index()] > free {
                break; // head-of-line blocking
            }
            ready_moldable.remove(i);
            free -= alloc[v.index()];
            let end = now + dur[v.index()];
            records.push(IrRecord {
                node: v,
                procs: alloc[v.index()],
                start: now,
                end,
            });
            events.push(time_key(end, event_key(v)));
        }
        // Backfill rigid tasks on whatever is left, FIFO.
        while free > 0 {
            let Some(&v) = ready_rigid.front() else { break };
            if alloc[v.index()] > free {
                break;
            }
            ready_rigid.pop_front();
            free -= alloc[v.index()];
            let end = now + dur[v.index()];
            records.push(IrRecord {
                node: v,
                procs: alloc[v.index()],
                start: now,
                end,
            });
            events.push(time_key(end, event_key(v)));
        }

        // Advance time by one completion.
        let Some(Reverse((Time(t), (_, _, v)))) = events.pop() else {
            break;
        };
        now = t;
        makespan = makespan.max(t);
        free += alloc[v.index()];
        for &s in ir.dag.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                admit(s, &mut ready_moldable, &mut ready_rigid);
            }
        }
    }

    Ok(IrSchedule {
        resources: r,
        records,
        makespan,
    })
}

impl IrSchedule {
    /// Validates the execution against its workflow: every task runs
    /// exactly once, no task starts before a predecessor finishes, and
    /// processor usage never exceeds the pool.
    pub fn validate(&self, ir: &WorkflowIr) -> Result<(), String> {
        let n = ir.node_count();
        if self.records.len() != n {
            return Err(format!("{} records for {n} tasks", self.records.len()));
        }
        let mut iv = vec![None; n];
        for rec in &self.records {
            if rec.end <= rec.start {
                return Err(format!("empty interval for node {}", rec.node.0));
            }
            if iv[rec.node.index()].replace((rec.start, rec.end)).is_some() {
                return Err(format!("node {} ran twice", rec.node.0));
            }
        }
        const TOL: f64 = 1e-9;
        for v in ir.dag.node_ids() {
            let (start, _) = iv[v.index()].ok_or_else(|| format!("node {} never ran", v.0))?;
            for &p in ir.dag.predecessors(v) {
                let (_, pend) = iv[p.index()].unwrap();
                if start + TOL < pend {
                    return Err(format!("node {} started before {} finished", v.0, p.0));
                }
            }
        }
        let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(n * 2);
        for rec in &self.records {
            deltas.push((rec.start, rec.procs as i64));
            deltas.push((rec.end, -(rec.procs as i64)));
        }
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (t, delta) in deltas {
            used += delta;
            if used > self.resources as i64 {
                return Err(format!(
                    "capacity exceeded at t={t}: {used} > {}",
                    self.resources
                ));
            }
        }
        Ok(())
    }
}

/// Outcome of [`simulate_ir`]: which path ran and what it produced.
#[derive(Debug, Clone)]
pub enum IrOutcome {
    /// A recognized preset mesh, executed by the legacy campaign
    /// engine — byte-identical to the pre-IR stack.
    Campaign(CampaignOutcome),
    /// A general workflow, executed by [`execute_ir`] on a flat pool.
    Generic(IrSchedule),
}

/// Errors from [`simulate_ir`].
#[derive(Debug, Clone, PartialEq)]
pub enum IrSimError {
    /// Generic execution failed.
    Exec(IrExecError),
    /// The grouping heuristic failed on the recognized mesh.
    Heuristic(HeuristicError),
    /// The mesh grouping did not validate.
    Grouping(GroupingError),
    /// Fault plans only apply to the grouped mesh engine.
    FaultsUnsupported,
}

impl std::fmt::Display for IrSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrSimError::Exec(e) => write!(f, "{e}"),
            IrSimError::Heuristic(e) => write!(f, "{e}"),
            IrSimError::Grouping(e) => write!(f, "{e}"),
            IrSimError::FaultsUnsupported => {
                write!(f, "fault plans are only supported for preset meshes")
            }
        }
    }
}

impl std::error::Error for IrSimError {}

/// Simulates a workflow campaign on `r` processors.
///
/// Recognized ocean-atmosphere meshes run on the legacy engine with
/// the granularity implied by the mesh (fused or unfused), the given
/// scenario policy/recovery and fault plan — producing exactly the
/// records, metrics and traces of the pre-IR path. General workflows
/// run on [`execute_ir`]; fault plans are rejected there.
#[allow(clippy::too_many_arguments)]
pub fn simulate_ir<T: Tracer>(
    ir: &WorkflowIr,
    table: &TimingTable,
    r: u32,
    heuristic: Heuristic,
    config: &CampaignConfig,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<IrOutcome, IrSimError> {
    let class = recognize(ir);
    let shape = match class {
        IrClass::FusedMesh(s) | IrClass::UnfusedMesh(s) => s,
        IrClass::General => {
            if !plan.failures.is_empty() {
                return Err(IrSimError::FaultsUnsupported);
            }
            return execute_ir(ir, table, r)
                .map(IrOutcome::Generic)
                .map_err(IrSimError::Exec);
        }
    };
    let inst = Instance::for_shape(shape, r);
    let grouping = heuristic
        .grouping(inst, table)
        .map_err(IrSimError::Heuristic)?;
    let config = CampaignConfig {
        granularity: match class {
            IrClass::FusedMesh(_) => Granularity::Fused,
            _ => Granularity::Unfused,
        },
        ..*config
    };
    simulate_campaign(inst, table, &grouping, &config, plan, tracer)
        .map(IrOutcome::Campaign)
        .map_err(IrSimError::Grouping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_sched::policy::ScenarioPolicy;
    use oa_trace::NullTracer;
    use oa_workflow::chain::ExperimentShape;
    use oa_workflow::ir::{lower_fused, DurationModel, IrTaskKind};
    use oa_workflow::moldable::MoldableSpec;

    fn table() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn fused_mesh_matches_the_independent_list_scheduler() {
        use oa_baselines::list_sched::{list_schedule, Allocations};
        let table = table();
        for (ns, nm, r) in [(1, 4, 10), (3, 5, 24), (4, 7, 11), (2, 9, 53)] {
            let shape = ExperimentShape::new(ns, nm);
            let ir = lower_fused(shape);
            let got = execute_ir(&ir, &table, r).unwrap();
            got.validate(&ir).unwrap();
            let want = list_schedule(
                Instance::new(ns, nm, r),
                &table,
                &Allocations::uniform(ns, 11.min(r)),
            )
            .unwrap();
            assert_eq!(got.makespan, want.makespan, "ns={ns} nm={nm} r={r}");
            assert_eq!(got.records.len(), want.records.len());
            for (a, b) in got.records.iter().zip(&want.records) {
                let node = ir.dag.node(a.node);
                let origin = node.origin.unwrap();
                assert_eq!(origin.scenario, b.scenario);
                assert_eq!(origin.month, b.month);
                assert_eq!(a.procs, b.procs);
                assert_eq!(a.start, b.start);
                assert_eq!(a.end, b.end);
            }
        }
    }

    #[test]
    fn general_diamond_respects_precedence() {
        let mut ir = WorkflowIr::new();
        let a = ir.add_task("prep", IrTaskKind::Rigid(1), DurationModel::Fixed(10.0));
        let b = ir.add_task(
            "left",
            IrTaskKind::Moldable(MoldableSpec::pcr()),
            DurationModel::Fixed(100.0),
        );
        let c = ir.add_task(
            "right",
            IrTaskKind::Moldable(MoldableSpec::pcr()),
            DurationModel::Fixed(50.0),
        );
        let d = ir.add_task("join", IrTaskKind::Rigid(2), DurationModel::Fixed(5.0));
        ir.add_dep(a, b).unwrap();
        ir.add_dep(a, c).unwrap();
        ir.add_dep(b, d).unwrap();
        ir.add_dep(c, d).unwrap();
        let s = execute_ir(&ir, &table(), 30).unwrap();
        s.validate(&ir).unwrap();
        // prep [0,10], both branches [10,·] in parallel (11+11 ≤ 30),
        // join after the long branch.
        assert_eq!(s.makespan, 115.0);
    }

    #[test]
    fn too_small_machines_are_rejected() {
        let mut ir = WorkflowIr::new();
        ir.add_task("wide", IrTaskKind::Rigid(64), DurationModel::Fixed(1.0));
        assert!(matches!(
            execute_ir(&ir, &table(), 8),
            Err(IrExecError::DoesNotFit { needs: 64, .. })
        ));
    }

    #[test]
    fn router_sends_meshes_to_the_engine() {
        let table = table();
        let shape = ExperimentShape::new(3, 4);
        let ir = lower_fused(shape);
        let out = simulate_ir(
            &ir,
            &table,
            30,
            Heuristic::Knapsack,
            &CampaignConfig::fused(ScenarioPolicy::LeastAdvanced),
            &FaultPlan::default(),
            &mut NullTracer,
        )
        .unwrap();
        let IrOutcome::Campaign(CampaignOutcome::Completed(run)) = out else {
            panic!("mesh should complete on the engine");
        };
        assert!(run.makespan > 0.0);
    }

    #[test]
    fn router_rejects_faults_on_general_workflows() {
        let mut ir = WorkflowIr::new();
        ir.add_task("solo", IrTaskKind::Rigid(1), DurationModel::Fixed(1.0));
        let plan = FaultPlan {
            failures: vec![(0, 10.0)],
        };
        assert_eq!(
            simulate_ir(
                &ir,
                &table(),
                8,
                Heuristic::Knapsack,
                &CampaignConfig::default(),
                &plan,
                &mut NullTracer,
            )
            .err(),
            Some(IrSimError::FaultsUnsupported)
        );
    }
}
