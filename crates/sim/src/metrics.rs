//! Schedule metrics: utilization, idleness, fairness, phase split.
//!
//! Since the observability layer landed, the aggregation itself lives
//! in `oa-trace`: a schedule is converted to its event stream and
//! folded there, so these post-hoc numbers and a live
//! [`MetricsRegistry`] grown during a traced run are the same fold
//! (bit for bit — tested by property).

use serde::{Deserialize, Serialize};

use oa_trace::prelude::*;

use crate::schedule::Schedule;
use crate::tracing::events_of;

/// Aggregate metrics of an executed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Mean processor utilization over `R × makespan`.
    pub utilization: f64,
    /// Processor-seconds spent in main tasks.
    pub main_proc_secs: f64,
    /// Processor-seconds spent in post tasks.
    pub post_proc_secs: f64,
    /// Completion time of each scenario's last post task, seconds.
    pub scenario_finish: Vec<f64>,
    /// Standard deviation of scenario finish times — the fairness
    /// indicator (the paper wants "some fairness in the execution of
    /// the simulations", Section 3.1).
    pub fairness_stddev: f64,
    /// Processors that never ran anything.
    pub never_used_procs: u32,
}

/// Computes [`Metrics`] from a schedule by folding its trace-event
/// stream (see [`metrics_from_events`]).
pub fn metrics(schedule: &Schedule) -> Metrics {
    metrics_from_events(
        schedule.instance.ns,
        schedule.instance.r,
        &events_of(schedule),
    )
}

/// Computes [`Metrics`] from a recorded event stream — the post-hoc
/// side of the observability layer. The phase split is the
/// [`phase_totals`] fold (stream order), so numbers computed here, by
/// a live [`Metered`] sink, and by the Chrome exporter's `otherData`
/// all agree exactly.
pub fn metrics_from_events(ns: u32, r: u32, events: &[TraceEvent]) -> Metrics {
    let totals = phase_totals(events);
    let mut makespan = totals.makespan;
    let mut scenario_finish = vec![0.0f64; ns as usize];
    let mut used = vec![false; r as usize];
    for ev in events {
        match &ev.kind {
            EventKind::TaskFinish {
                task,
                first_proc,
                procs,
                ..
            } => {
                let sf = &mut scenario_finish[task.scenario as usize];
                if ev.t > *sf {
                    *sf = ev.t;
                }
                for p in *first_proc..first_proc + procs {
                    used[p as usize] = true;
                }
            }
            EventKind::CampaignEnd { makespan: m } => makespan = *m,
            _ => {}
        }
    }
    let (main_proc_secs, post_proc_secs) = (totals.main_proc_secs, totals.post_proc_secs);
    let utilization = if makespan > 0.0 {
        (main_proc_secs + post_proc_secs) / (makespan * r as f64)
    } else {
        0.0
    };
    let mean = scenario_finish.iter().sum::<f64>() / scenario_finish.len() as f64;
    let var = scenario_finish
        .iter()
        .map(|f| (f - mean).powi(2))
        .sum::<f64>()
        / scenario_finish.len() as f64;
    Metrics {
        makespan,
        utilization,
        main_proc_secs,
        post_proc_secs,
        scenario_finish,
        fairness_stddev: var.sqrt(),
        never_used_procs: used.iter().filter(|&&u| !u).count() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;
    use oa_sched::grouping::Grouping;
    use oa_sched::heuristics::Heuristic;
    use oa_sched::params::Instance;

    #[test]
    fn metrics_of_tiny_schedule() {
        let inst = Instance::new(1, 2, 5);
        let t = TimingTable::new([100.0; 8], 10.0).unwrap();
        let s = execute_default(inst, &t, &Grouping::uniform(4, 1, 1)).unwrap();
        let m = metrics(&s);
        assert_eq!(m.makespan, 210.0);
        assert_eq!(m.main_proc_secs, 2.0 * 100.0 * 4.0);
        assert_eq!(m.post_proc_secs, 2.0 * 10.0);
        assert_eq!(m.scenario_finish, vec![210.0]);
        assert_eq!(m.fairness_stddev, 0.0);
        assert_eq!(m.never_used_procs, 0);
    }

    #[test]
    fn idle_procs_counted() {
        // Basic heuristic at R = 53 occupies everything (7×7 + 4 post);
        // a hand-made grouping with one orphan proc shows up here.
        let inst = Instance::new(10, 6, 53);
        let t = PcrModel::reference().table(1.0).unwrap();
        let g = Grouping::uniform(7, 7, 3); // 49 + 3 = 52 < 53
        let s = execute_default(inst, &t, &g).unwrap();
        assert_eq!(metrics(&s).never_used_procs, 1);
    }

    #[test]
    fn least_advanced_is_fairer_than_most_advanced() {
        use crate::executor::{execute, ExecConfig, ScenarioPolicy};
        let inst = Instance::new(6, 10, 26);
        let t = PcrModel::reference().table(1.0).unwrap();
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let fair = metrics(
            &execute(
                inst,
                &t,
                &g,
                ExecConfig {
                    policy: ScenarioPolicy::LeastAdvanced,
                },
            )
            .unwrap(),
        );
        let unfair = metrics(
            &execute(
                inst,
                &t,
                &g,
                ExecConfig {
                    policy: ScenarioPolicy::MostAdvanced,
                },
            )
            .unwrap(),
        );
        assert!(
            fair.fairness_stddev <= unfair.fairness_stddev + 1e-9,
            "fair {} vs unfair {}",
            fair.fairness_stddev,
            unfair.fairness_stddev
        );
    }

    #[test]
    fn utilization_bounded() {
        let inst = Instance::new(10, 24, 53);
        let t = PcrModel::reference().table(1.0).unwrap();
        for h in Heuristic::PAPER {
            let g = h.grouping(inst, &t).unwrap();
            let m = metrics(&execute_default(inst, &t, &g).unwrap());
            assert!(
                m.utilization > 0.0 && m.utilization <= 1.0,
                "{h:?}: {}",
                m.utilization
            );
        }
    }
}
