//! Occupancy profiles: how many processors a schedule keeps busy over
//! time, split by phase.
//!
//! The paper's schedule figures (3–6) are really occupancy pictures —
//! hatched main blocks, post fills, idle gaps. This module computes
//! the underlying step function exactly (no sampling): a sweep over
//! task start/end events yields busy-processor counts per phase, from
//! which come time-weighted averages, peaks, and the makespan share
//! spent above/below occupancy thresholds.

use serde::{Deserialize, Serialize};

use oa_workflow::task::TaskKind;

use crate::schedule::Schedule;

/// One step of the occupancy function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Interval start, seconds.
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// Processors busy with main tasks.
    pub main_procs: u32,
    /// Processors busy with post tasks.
    pub post_procs: u32,
}

impl Step {
    /// Total busy processors in this step.
    pub fn busy(&self) -> u32 {
        self.main_procs + self.post_procs
    }
}

/// The complete occupancy profile of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Steps in time order, covering `[0, makespan]` without gaps.
    pub steps: Vec<Step>,
    /// Cluster size (`R`).
    pub resources: u32,
}

/// Computes the exact occupancy profile.
pub fn profile(schedule: &Schedule) -> Profile {
    let mut events: Vec<(f64, i64, i64)> = Vec::with_capacity(schedule.records.len() * 2);
    for r in &schedule.records {
        let (dm, dp) = match r.task.kind {
            TaskKind::FusedMain => (r.procs.count as i64, 0),
            _ => (0, r.procs.count as i64),
        };
        events.push((r.start, dm, dp));
        events.push((r.end, -dm, -dp));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut steps = Vec::new();
    let mut main = 0i64;
    let mut post = 0i64;
    let mut t = 0.0f64;
    let mut i = 0;
    while i < events.len() {
        let at = events[i].0;
        if at > t {
            steps.push(Step {
                start: t,
                end: at,
                main_procs: main as u32,
                post_procs: post as u32,
            });
            t = at;
        }
        // Apply every event at this instant.
        while i < events.len() && events[i].0 == at {
            main += events[i].1;
            post += events[i].2;
            i += 1;
        }
    }
    debug_assert_eq!(main, 0);
    debug_assert_eq!(post, 0);
    Profile {
        steps,
        resources: schedule.instance.r,
    }
}

impl Profile {
    /// Time-weighted mean busy processors.
    pub fn mean_busy(&self) -> f64 {
        let (num, den) = self.steps.iter().fold((0.0, 0.0), |(n, d), s| {
            let span = s.end - s.start;
            (n + s.busy() as f64 * span, d + span)
        });
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Peak busy processors.
    pub fn peak_busy(&self) -> u32 {
        self.steps.iter().map(Step::busy).max().unwrap_or(0)
    }

    /// Fraction of the horizon with at least `threshold` processors
    /// busy.
    pub fn fraction_at_least(&self, threshold: u32) -> f64 {
        let (hit, total) = self.steps.iter().fold((0.0, 0.0), |(h, t), s| {
            let span = s.end - s.start;
            (if s.busy() >= threshold { h + span } else { h }, t + span)
        });
        if total > 0.0 {
            hit / total
        } else {
            0.0
        }
    }

    /// Total idle processor-seconds over the horizon.
    pub fn idle_proc_secs(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| (self.resources - s.busy().min(self.resources)) as f64 * (s.end - s.start))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use crate::metrics::metrics;
    use oa_platform::presets::reference_cluster;
    use oa_platform::timing::TimingTable;
    use oa_sched::grouping::Grouping;
    use oa_sched::heuristics::Heuristic;
    use oa_sched::params::Instance;

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn profile_covers_the_horizon_without_gaps() {
        let inst = Instance::new(4, 6, 20);
        let t = reference_cluster(20).timing;
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let s = execute_default(inst, &t, &g).unwrap();
        let p = profile(&s);
        assert!((p.steps.first().unwrap().start - 0.0).abs() < 1e-12);
        assert!((p.steps.last().unwrap().end - s.makespan).abs() < 1e-9);
        for w in p.steps.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12, "gap in profile");
        }
    }

    #[test]
    fn occupancy_never_exceeds_resources() {
        let inst = Instance::new(5, 8, 23);
        let t = reference_cluster(23).timing;
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let p = profile(&execute_default(inst, &t, &g).unwrap());
        assert!(p.peak_busy() <= 23);
    }

    #[test]
    fn mean_busy_matches_metrics_utilization() {
        let inst = Instance::new(3, 5, 14);
        let t = flat(100.0, 10.0);
        let g = Grouping::uniform(4, 3, 2);
        let s = execute_default(inst, &t, &g).unwrap();
        let p = profile(&s);
        let m = metrics(&s);
        // mean_busy / R over the same horizon equals utilization.
        assert!((p.mean_busy() / 14.0 - m.utilization).abs() < 1e-9);
        // Conservation: idle + busy = R × makespan.
        let busy = m.main_proc_secs + m.post_proc_secs;
        assert!((p.idle_proc_secs() + busy - 14.0 * s.makespan).abs() < 1e-6);
    }

    #[test]
    fn threshold_fractions_are_monotone() {
        let inst = Instance::new(4, 6, 18);
        let t = flat(50.0, 5.0);
        let g = Grouping::uniform(4, 4, 2);
        let p = profile(&execute_default(inst, &t, &g).unwrap());
        let mut prev = 1.0;
        for thr in 0..=18 {
            let f = p.fraction_at_least(thr);
            assert!(f <= prev + 1e-12, "threshold {thr}");
            prev = f;
        }
        assert_eq!(p.fraction_at_least(0), 1.0);
    }

    #[test]
    fn steady_state_uses_all_groups() {
        // 4 groups of 4 running continuously: main occupancy 16 for
        // most of the horizon.
        let inst = Instance::new(4, 10, 18);
        let t = flat(100.0, 10.0);
        let g = Grouping::uniform(4, 4, 2);
        let p = profile(&execute_default(inst, &t, &g).unwrap());
        assert!(p.fraction_at_least(16) > 0.9);
    }
}
