//! Failure injection: group crashes and checkpoint-based recovery.
//!
//! The application is checkpointed by construction — "the results from
//! the nth monthly simulation are the starting point of the (n+1)th" —
//! so a crashed group costs at most one month of work per scenario: the
//! scenario resumes from its last completed month on another group.
//! This module quantifies that resilience. A [`FaultPlan`] kills groups
//! at given times; the executor replays the paper's policy around the
//! losses, under two recovery models:
//!
//! * [`Recovery::MonthlyCheckpoint`] — the real application: only the
//!   in-flight month is lost;
//! * [`Recovery::RestartScenario`] — a counterfactual without restart
//!   files: the victim scenario loses *all* completed months.
//!
//! A curiosity the property tests surfaced: with *heterogeneous*
//! groups, a failure can shorten the campaign — killing a slow group
//! re-homes its scenario onto a faster group, a move the
//! non-preemptive least-advanced policy would never make on its own.
//! (This is an argument for work-stealing between groups, not for
//! crashing machines.)
//!
//! Dead groups never return and their processors do not join the
//! post-processing pool (the hardware is gone). Failures addressed to
//! a group that already disbanded are ignored — the machines left the
//! group before dying, and post-pool shrinkage is a second-order
//! effect this model does not track.
//!
//! Since the engine refactor this module is a thin configuration of
//! [`crate::engine::simulate_campaign`] (fused granularity, fault plan
//! active); the failure hook itself lives in the engine, where it also
//! composes with unfused granularity and the policy ablations.

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, Granularity, ScenarioPolicy};
use oa_trace::{NullTracer, Tracer};

use crate::engine::{simulate_campaign, CampaignOutcome};

pub use oa_sched::policy::{FaultPlan, Recovery};

/// Outcome of a faulty execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultyOutcome {
    /// The campaign completed.
    Completed {
        /// Campaign makespan, seconds.
        makespan: f64,
        /// Processor-seconds of work destroyed by crashes.
        lost_proc_secs: f64,
        /// Months whose in-flight run was lost (re-executed later).
        months_lost: u32,
    },
    /// Every group died with months still unscheduled.
    Stranded {
        /// Months completed before the grid went dark.
        completed_months: u64,
    },
}

/// Executes `inst` under `grouping` with failures from `plan`.
pub fn estimate_with_failures(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    plan: &FaultPlan,
    recovery: Recovery,
) -> Result<FaultyOutcome, GroupingError> {
    estimate_with_failures_traced(inst, table, grouping, plan, recovery, &mut NullTracer)
}

/// Like [`estimate_with_failures`], but streams the full event story —
/// dispatches, completions, `FailureInject` / `FailureDetect` /
/// `Recover` triples, disbands — into `tracer` as the faulty campaign
/// unfolds.
pub fn estimate_with_failures_traced<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    plan: &FaultPlan,
    recovery: Recovery,
    tracer: &mut T,
) -> Result<FaultyOutcome, GroupingError> {
    let config = CampaignConfig {
        policy: ScenarioPolicy::LeastAdvanced,
        granularity: Granularity::Fused,
        recovery,
    };
    Ok(
        match simulate_campaign(inst, table, grouping, &config, plan, tracer)? {
            CampaignOutcome::Completed(run) => FaultyOutcome::Completed {
                makespan: run.makespan,
                lost_proc_secs: run.lost_proc_secs,
                months_lost: run.months_lost,
            },
            CampaignOutcome::Stranded { completed_months } => {
                FaultyOutcome::Stranded { completed_months }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use oa_platform::presets::reference_cluster;
    use oa_platform::timing::TimingTable;
    use oa_sched::heuristics::Heuristic;

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn no_failures_matches_the_plain_executor() {
        let inst = Instance::new(6, 10, 40);
        let t = reference_cluster(40).timing;
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let plain = execute_default(inst, &t, &g).unwrap().makespan;
        let faulty = estimate_with_failures(
            inst,
            &t,
            &g,
            &FaultPlan::none(),
            Recovery::MonthlyCheckpoint,
        )
        .unwrap();
        match faulty {
            FaultyOutcome::Completed {
                makespan,
                lost_proc_secs,
                months_lost,
            } => {
                assert!((makespan - plain).abs() < 1e-9);
                assert_eq!(lost_proc_secs, 0.0);
                assert_eq!(months_lost, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn one_crash_loses_at_most_one_month_with_checkpoints() {
        let inst = Instance::new(4, 6, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        // Kill group 0 mid-month at t = 150.
        let plan = FaultPlan::none().kill(0, 150.0);
        let out = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        match out {
            FaultyOutcome::Completed {
                makespan,
                lost_proc_secs,
                months_lost,
            } => {
                assert_eq!(months_lost, 1);
                assert!((lost_proc_secs - 50.0 * 4.0).abs() < 1e-9);
                // 24 months on 3 surviving groups, one month redone:
                // strictly worse than failure-free, still finite.
                let clean = execute_default(inst, &t, &g).unwrap().makespan;
                assert!(makespan > clean);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpoints_beat_scenario_restarts() {
        let inst = Instance::new(4, 8, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        // Crash late: the victim scenario has real progress to lose.
        let plan = FaultPlan::none().kill(0, 650.0);
        let ck = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        let rs = estimate_with_failures(inst, &t, &g, &plan, Recovery::RestartScenario).unwrap();
        let (
            FaultyOutcome::Completed { makespan: a, .. },
            FaultyOutcome::Completed { makespan: b, .. },
        ) = (ck, rs)
        else {
            panic!("both should complete");
        };
        assert!(a < b, "checkpointed {a} should beat restart {b}");
    }

    #[test]
    fn all_groups_dead_strands_the_campaign() {
        let inst = Instance::new(3, 10, 12);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 3, 0);
        let plan = FaultPlan::none().kill(0, 50.0).kill(1, 50.0).kill(2, 150.0);
        let out = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        match out {
            FaultyOutcome::Stranded { completed_months } => {
                // One month completed (the survivor's first) at t = 100.
                assert_eq!(completed_months, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_kill_is_idempotent() {
        let inst = Instance::new(3, 4, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 3, 4);
        let once = FaultPlan::none().kill(1, 120.0);
        let twice = FaultPlan::none().kill(1, 120.0).kill(1, 200.0);
        let a = estimate_with_failures(inst, &t, &g, &once, Recovery::MonthlyCheckpoint).unwrap();
        let b = estimate_with_failures(inst, &t, &g, &twice, Recovery::MonthlyCheckpoint).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn late_failure_of_disbanded_group_is_harmless() {
        let inst = Instance::new(2, 2, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 2, 0);
        // Campaign ends by t = 200 + posts; kill at t = 10000.
        let plan = FaultPlan::none().kill(0, 10_000.0);
        let out = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        let clean = execute_default(inst, &t, &g).unwrap().makespan;
        match out {
            FaultyOutcome::Completed {
                makespan,
                months_lost,
                ..
            } => {
                assert!((makespan - clean).abs() < 1e-9);
                assert_eq!(months_lost, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn traced_run_reports_the_damage() {
        use oa_trace::metrics::keys;
        use oa_trace::prelude::*;
        let inst = Instance::new(4, 6, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        let plan = FaultPlan::none().kill(0, 150.0);
        let mut sink = Metered::new(VecTracer::new());
        let out = estimate_with_failures_traced(
            inst,
            &t,
            &g,
            &plan,
            Recovery::MonthlyCheckpoint,
            &mut sink,
        )
        .unwrap();
        let FaultyOutcome::Completed {
            makespan,
            lost_proc_secs,
            ..
        } = out
        else {
            panic!("should complete");
        };
        // The live registry observed the same damage the outcome reports.
        let snap = sink.registry.snapshot();
        assert_eq!(snap.counter(keys::FAILURES), Some(1));
        assert_eq!(snap.counter(keys::RETRIES), Some(1));
        assert_eq!(snap.gauge(keys::PROC_SECS_LOST), Some(lost_proc_secs));
        assert_eq!(snap.gauge(keys::MAKESPAN), Some(makespan));
        // And the stream tells the inject → detect → recover story.
        let events = sink.inner.into_events();
        let pos = |pred: fn(&EventKind) -> bool| events.iter().position(|e| pred(&e.kind));
        let inject = pos(|k| matches!(k, EventKind::FailureInject { .. })).unwrap();
        let detect = pos(|k| matches!(k, EventKind::FailureDetect { .. })).unwrap();
        let recover = pos(|k| matches!(k, EventKind::Recover { .. })).unwrap();
        assert!(inject < detect && detect < recover);
    }

    #[test]
    fn faults_compose_with_unfused_granularity() {
        // Fault injection at the seven-task granularity — impossible
        // before the engine refactor, free now.
        use crate::engine::{simulate_campaign, CampaignOutcome};
        use oa_sched::policy::CampaignConfig;
        let inst = Instance::new(4, 6, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        let plan = FaultPlan::none().kill(0, 150.0);
        let config = CampaignConfig {
            granularity: oa_sched::policy::Granularity::Unfused,
            ..CampaignConfig::default()
        };
        let out =
            simulate_campaign(inst, &t, &g, &config, &plan, &mut oa_trace::NullTracer).unwrap();
        let CampaignOutcome::Completed(run) = out else {
            panic!("should complete");
        };
        assert_eq!(run.months_lost, 1);
        assert!(run.lost_proc_secs > 0.0);
        // The clean unfused run is strictly faster.
        let clean = crate::unfused::estimate_unfused(inst, &t, &g).unwrap();
        assert!(run.makespan > clean.makespan);
    }

    #[test]
    #[should_panic(expected = "failure targets group")]
    fn out_of_range_group_panics() {
        let inst = Instance::new(2, 2, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 2, 0);
        let _ = estimate_with_failures(
            inst,
            &t,
            &g,
            &FaultPlan::none().kill(9, 1.0),
            Recovery::MonthlyCheckpoint,
        );
    }
}
