//! Failure injection: group crashes and checkpoint-based recovery.
//!
//! The application is checkpointed by construction — "the results from
//! the nth monthly simulation are the starting point of the (n+1)th" —
//! so a crashed group costs at most one month of work per scenario: the
//! scenario resumes from its last completed month on another group.
//! This module quantifies that resilience. A [`FaultPlan`] kills groups
//! at given times; the executor replays the paper's policy around the
//! losses, under two recovery models:
//!
//! * [`Recovery::MonthlyCheckpoint`] — the real application: only the
//!   in-flight month is lost;
//! * [`Recovery::RestartScenario`] — a counterfactual without restart
//!   files: the victim scenario loses *all* completed months.
//!
//! A curiosity the property tests surfaced: with *heterogeneous*
//! groups, a failure can shorten the campaign — killing a slow group
//! re-homes its scenario onto a faster group, a move the
//! non-preemptive least-advanced policy would never make on its own.
//! (This is an argument for work-stealing between groups, not for
//! crashing machines.)
//!
//! Dead groups never return and their processors do not join the
//! post-processing pool (the hardware is gone). Failures addressed to
//! a group that already disbanded are ignored — the machines left the
//! group before dying, and post-pool shrinkage is a second-order
//! effect this model does not track.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::time::Time;
use oa_trace::{EventKind, NullTracer, TraceEvent, Tracer};
use oa_workflow::fusion::FusedTask;

/// What a crashed scenario resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Recovery {
    /// Resume from the last completed month (the application's restart
    /// files — the realistic model).
    #[default]
    MonthlyCheckpoint,
    /// Restart the scenario from month 0 (counterfactual: no
    /// checkpoints).
    RestartScenario,
}

/// A failure plan: `(group index, time)` pairs. Group indices refer to
/// the canonical (descending-size) order of the grouping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Failures to inject.
    pub failures: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills group `g` at `time`.
    pub fn kill(mut self, g: usize, time: f64) -> Self {
        self.failures.push((g, time));
        self
    }
}

/// Outcome of a faulty execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultyOutcome {
    /// The campaign completed.
    Completed {
        /// Campaign makespan, seconds.
        makespan: f64,
        /// Processor-seconds of work destroyed by crashes.
        lost_proc_secs: f64,
        /// Months whose in-flight run was lost (re-executed later).
        months_lost: u32,
    },
    /// Every group died with months still unscheduled.
    Stranded {
        /// Months completed before the grid went dark.
        completed_months: u64,
    },
}

/// The mutable state of the group fleet during a faulty execution:
/// which groups are dead, idle or running, which scenarios wait, and
/// how far each has advanced. Bundled so failure handling is a method
/// instead of a function threading a dozen loose references.
struct Fleet {
    /// Canonical group sizes (descending).
    sizes: Vec<u32>,
    /// `dead[g]`: group `g` crashed and never returns.
    dead: Vec<bool>,
    /// `running[g] = (scenario, start time)`; `None` = not running.
    running: Vec<Option<(u32, f64)>>,
    /// Idle groups, kept sorted by `(size, index)`.
    idle: Vec<usize>,
    /// Groups neither dead nor disbanded.
    alive: usize,
    /// Scenarios awaiting a group, least-advanced first.
    waiting: BinaryHeap<Reverse<(u32, u32)>>,
    /// Months completed per scenario.
    months_done: Vec<u32>,
}

/// Work destroyed by crashes, accumulated across failures.
#[derive(Default)]
struct Losses {
    /// Processor-seconds of in-flight work lost.
    proc_secs: f64,
    /// Months whose in-flight run was lost.
    months: u32,
}

/// What one processed failure actually destroyed — the damage
/// assessment the trace layer reports as a `FailureDetect` event.
struct FailureImpact {
    /// The scenario whose in-flight month died, with the month it will
    /// resume from (`None` when the group was idle).
    victim: Option<(u32, u32)>,
    /// Processor-seconds destroyed.
    lost_proc_secs: f64,
    /// Months of progress destroyed.
    months_lost: u32,
}

impl Fleet {
    fn new(ns: u32, sizes: Vec<u32>) -> Self {
        let mut idle: Vec<usize> = (0..sizes.len()).collect();
        idle.sort_unstable_by_key(|&g| (sizes[g], g));
        Self {
            alive: sizes.len(),
            dead: vec![false; sizes.len()],
            running: vec![None; sizes.len()],
            idle,
            waiting: (0..ns).map(|s| Reverse((0, s))).collect(),
            months_done: vec![0u32; ns as usize],
            sizes,
        }
    }

    /// Applies one `(group, time)` failure under `recovery`, charging
    /// destroyed work to `losses`. Double kills and failures of
    /// already-disbanded groups are no-ops (`None`); a kill that lands
    /// returns its damage assessment.
    fn process_failure(
        &mut self,
        failure: (usize, f64),
        recovery: Recovery,
        losses: &mut Losses,
    ) -> Option<FailureImpact> {
        let (g, tf) = failure;
        if self.dead[g] {
            return None; // double kill: no-op
        }
        // A group that already disbanded is not in `idle` nor `running`;
        // its processors belong to the post pool now — ignore (documented).
        if let Some((s, started)) = self.running[g].take() {
            // In-flight month lost.
            let lost = (tf - started).max(0.0) * self.sizes[g] as f64;
            losses.proc_secs += lost;
            losses.months += 1;
            match recovery {
                Recovery::MonthlyCheckpoint => {}
                Recovery::RestartScenario => {
                    self.months_done[s as usize] = 0;
                }
            }
            self.waiting
                .push(Reverse((self.months_done[s as usize], s)));
            self.dead[g] = true;
            self.alive -= 1;
            Some(FailureImpact {
                victim: Some((s, self.months_done[s as usize])),
                lost_proc_secs: lost,
                months_lost: 1,
            })
        } else {
            let key = (self.sizes[g], g);
            let pos = match self
                .idle
                .binary_search_by_key(&key, |&x| (self.sizes[x], x))
            {
                Ok(p) | Err(p) => p,
            };
            if pos < self.idle.len() && self.idle[pos] == g {
                self.idle.remove(pos);
                self.dead[g] = true;
                self.alive -= 1;
                Some(FailureImpact {
                    victim: None,
                    lost_proc_secs: 0.0,
                    months_lost: 0,
                })
            } else {
                // The group already disbanded — ignore.
                None
            }
        }
    }
}

/// Emits the inject/detect/recover event triple for one processed
/// failure (inject always; detect and recover only if the kill landed).
fn emit_failure<T: Tracer>(tracer: &mut T, failure: (usize, f64), impact: Option<&FailureImpact>) {
    let (g, tf) = failure;
    tracer.record(TraceEvent::at(
        tf,
        EventKind::FailureInject { group: g as u32 },
    ));
    let Some(im) = impact else { return };
    tracer.record(TraceEvent::at(
        tf,
        EventKind::FailureDetect {
            group: g as u32,
            victim: im.victim.map(|(s, _)| s),
            lost_proc_secs: im.lost_proc_secs,
            months_lost: im.months_lost,
        },
    ));
    if let Some((s, m)) = im.victim {
        tracer.record(TraceEvent::at(
            tf,
            EventKind::Recover {
                scenario: s,
                resume_month: m,
            },
        ));
    }
}

/// Executes `inst` under `grouping` with failures from `plan`.
pub fn estimate_with_failures(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    plan: &FaultPlan,
    recovery: Recovery,
) -> Result<FaultyOutcome, GroupingError> {
    estimate_with_failures_traced(inst, table, grouping, plan, recovery, &mut NullTracer)
}

/// Like [`estimate_with_failures`], but streams the full event story —
/// dispatches, completions, `FailureInject` / `FailureDetect` /
/// `Recover` triples, disbands — into `tracer` as the faulty campaign
/// unfolds.
pub fn estimate_with_failures_traced<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    plan: &FaultPlan,
    recovery: Recovery,
    tracer: &mut T,
) -> Result<FaultyOutcome, GroupingError> {
    grouping.validate(inst)?;
    let sizes: Vec<u32> = grouping.groups().to_vec();
    let durs: Vec<f64> = sizes.iter().map(|&g| table.main_secs(g)).collect();
    let tp = table.post_secs();
    let nm = inst.nm;

    // Processor layout (for event reporting only): groups first, in
    // canonical order, then the dedicated post pool.
    let mut bases: Vec<u32> = Vec::with_capacity(sizes.len());
    let mut acc = 0u32;
    for &g in &sizes {
        bases.push(acc);
        acc += g;
    }
    let post_base = acc;

    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            0.0,
            EventKind::CampaignBegin {
                ns: inst.ns,
                nm: inst.nm,
                r: inst.r,
                groups: sizes.clone(),
                post_procs: grouping.post_procs,
            },
        ));
    }

    let mut failures = plan.failures.clone();
    failures.sort_by(|a, b| a.1.total_cmp(&b.1));
    for &(g, t) in &failures {
        assert!(
            g < sizes.len(),
            "failure targets group {g}, grouping has {}",
            sizes.len()
        );
        assert!(
            t.is_finite() && t >= 0.0,
            "failure time must be a finite non-negative instant"
        );
    }
    let mut next_failure = 0usize;

    let mut busy: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut fleet = Fleet::new(inst.ns, sizes);
    let mut unfinished = inst.ns as usize;
    let mut losses = Losses::default();

    let mut post_ready: Vec<(f64, FusedTask)> = Vec::with_capacity(inst.nbtasks() as usize);
    // The post pool only collects completed posts' processors: dedicated
    // ones plus *surviving* disbanded groups. Entries carry the proc id
    // so trace events can name the processor; ids don't affect timing
    // (pool slots are interchangeable).
    let mut pool: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
    for p in 0..grouping.post_procs {
        pool.push(Reverse((Time(0.0), post_base + p)));
    }

    let mut main_finish = 0.0f64;

    // One assignment + disband pass; mirrors `oa_sched::estimate`.
    macro_rules! assign {
        ($now:expr) => {{
            while !fleet.idle.is_empty() && unfinished > 0 {
                let Some(&Reverse((_, s))) = fleet.waiting.peek() else {
                    break;
                };
                let g = fleet.idle.pop().expect("non-empty");
                fleet.waiting.pop();
                fleet.running[g] = Some((s, $now));
                busy.push(Reverse((Time($now + durs[g]), g)));
                if tracer.enabled() {
                    let task = FusedTask::main(s, fleet.months_done[s as usize]);
                    tracer.record(TraceEvent::at(
                        $now,
                        EventKind::TaskDispatch {
                            task,
                            group: Some(g as u32),
                            queue_depth: fleet.waiting.len() as u32,
                        },
                    ));
                    tracer.record(TraceEvent::at(
                        $now,
                        EventKind::TaskStart {
                            task,
                            first_proc: bases[g],
                            procs: fleet.sizes[g],
                            group: Some(g as u32),
                        },
                    ));
                }
            }
            while !fleet.idle.is_empty() && fleet.alive > unfinished {
                let g = fleet.idle.remove(0);
                fleet.alive -= 1;
                for p in 0..fleet.sizes[g] {
                    pool.push(Reverse((Time($now), bases[g] + p)));
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        $now,
                        EventKind::GroupDisband {
                            group: g as u32,
                            procs: fleet.sizes[g],
                        },
                    ));
                }
            }
        }};
    }

    assign!(0.0);

    loop {
        // Choose the next event: completion or failure.
        let completion_time = busy.peek().map(|Reverse((Time(t), _))| *t);
        let failure_time = failures.get(next_failure).map(|&(_, t)| t);
        match (completion_time, failure_time) {
            (None, None) => break,
            (Some(_), Some(tf)) if tf <= completion_time.expect("some") => {
                let failure = failures[next_failure];
                let impact = fleet.process_failure(failure, recovery, &mut losses);
                if tracer.enabled() {
                    emit_failure(tracer, failure, impact.as_ref());
                }
                next_failure += 1;
                let tf = failures[next_failure - 1].1;
                assign!(tf);
            }
            (None, Some(_)) => {
                let failure = failures[next_failure];
                let impact = fleet.process_failure(failure, recovery, &mut losses);
                if tracer.enabled() {
                    emit_failure(tracer, failure, impact.as_ref());
                }
                next_failure += 1;
                let tf = failures[next_failure - 1].1;
                if fleet.alive == 0 && unfinished > 0 {
                    // Nothing can run the remaining months.
                    let completed: u64 = fleet.months_done.iter().map(|&m| m as u64).sum();
                    return Ok(FaultyOutcome::Stranded {
                        completed_months: completed,
                    });
                }
                assign!(tf);
            }
            (Some(_), _) => {
                let Reverse((Time(t), g)) = busy.pop().expect("peeked");
                if fleet.dead[g] {
                    continue; // stale completion of a crashed group
                }
                let (s, started) = fleet.running[g].take().expect("busy group has a scenario");
                let month = fleet.months_done[s as usize];
                fleet.months_done[s as usize] += 1;
                main_finish = t;
                post_ready.push((t, FusedTask::post(s, month)));
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        t,
                        EventKind::TaskFinish {
                            task: FusedTask::main(s, month),
                            first_proc: bases[g],
                            procs: fleet.sizes[g],
                            group: Some(g as u32),
                            secs: t - started,
                        },
                    ));
                }
                if fleet.months_done[s as usize] == nm {
                    unfinished -= 1;
                } else {
                    fleet
                        .waiting
                        .push(Reverse((fleet.months_done[s as usize], s)));
                }
                let pos = fleet
                    .idle
                    .binary_search_by_key(&(fleet.sizes[g], g), |&x| (fleet.sizes[x], x))
                    .unwrap_err();
                fleet.idle.insert(pos, g);
                assign!(t);
            }
        }
        if unfinished > 0 && fleet.alive == 0 && busy.is_empty() {
            let completed: u64 = fleet.months_done.iter().map(|&m| m as u64).sum();
            return Ok(FaultyOutcome::Stranded {
                completed_months: completed,
            });
        }
    }

    if unfinished > 0 {
        let completed: u64 = fleet.months_done.iter().map(|&m| m as u64).sum();
        return Ok(FaultyOutcome::Stranded {
            completed_months: completed,
        });
    }

    // Posts: FIFO on the pool; if the pool is empty every group died
    // exactly at the end — posts are stranded only if no capacity at
    // all exists.
    if pool.is_empty() {
        let completed: u64 = fleet.months_done.iter().map(|&m| m as u64).sum();
        return Ok(FaultyOutcome::Stranded {
            completed_months: completed,
        });
    }
    let mut post_finish = 0.0f64;
    for (ready, task) in post_ready {
        let Reverse((Time(avail), proc)) = pool.pop().expect("non-empty");
        let start = if avail > ready { avail } else { ready };
        let fin = start + tp;
        post_finish = post_finish.max(fin);
        pool.push(Reverse((Time(fin), proc)));
        if tracer.enabled() {
            tracer.record(TraceEvent::at(
                fin,
                EventKind::TaskFinish {
                    task,
                    first_proc: proc,
                    procs: 1,
                    group: None,
                    secs: fin - start,
                },
            ));
        }
    }

    let makespan = main_finish.max(post_finish);
    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            makespan,
            EventKind::CampaignEnd { makespan },
        ));
    }
    Ok(FaultyOutcome::Completed {
        makespan,
        lost_proc_secs: losses.proc_secs,
        months_lost: losses.months,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use oa_platform::presets::reference_cluster;
    use oa_platform::timing::TimingTable;
    use oa_sched::heuristics::Heuristic;

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn no_failures_matches_the_plain_executor() {
        let inst = Instance::new(6, 10, 40);
        let t = reference_cluster(40).timing;
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let plain = execute_default(inst, &t, &g).unwrap().makespan;
        let faulty = estimate_with_failures(
            inst,
            &t,
            &g,
            &FaultPlan::none(),
            Recovery::MonthlyCheckpoint,
        )
        .unwrap();
        match faulty {
            FaultyOutcome::Completed {
                makespan,
                lost_proc_secs,
                months_lost,
            } => {
                assert!((makespan - plain).abs() < 1e-9);
                assert_eq!(lost_proc_secs, 0.0);
                assert_eq!(months_lost, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn one_crash_loses_at_most_one_month_with_checkpoints() {
        let inst = Instance::new(4, 6, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        // Kill group 0 mid-month at t = 150.
        let plan = FaultPlan::none().kill(0, 150.0);
        let out = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        match out {
            FaultyOutcome::Completed {
                makespan,
                lost_proc_secs,
                months_lost,
            } => {
                assert_eq!(months_lost, 1);
                assert!((lost_proc_secs - 50.0 * 4.0).abs() < 1e-9);
                // 24 months on 3 surviving groups, one month redone:
                // strictly worse than failure-free, still finite.
                let clean = execute_default(inst, &t, &g).unwrap().makespan;
                assert!(makespan > clean);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpoints_beat_scenario_restarts() {
        let inst = Instance::new(4, 8, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        // Crash late: the victim scenario has real progress to lose.
        let plan = FaultPlan::none().kill(0, 650.0);
        let ck = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        let rs = estimate_with_failures(inst, &t, &g, &plan, Recovery::RestartScenario).unwrap();
        let (
            FaultyOutcome::Completed { makespan: a, .. },
            FaultyOutcome::Completed { makespan: b, .. },
        ) = (ck, rs)
        else {
            panic!("both should complete");
        };
        assert!(a < b, "checkpointed {a} should beat restart {b}");
    }

    #[test]
    fn all_groups_dead_strands_the_campaign() {
        let inst = Instance::new(3, 10, 12);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 3, 0);
        let plan = FaultPlan::none().kill(0, 50.0).kill(1, 50.0).kill(2, 150.0);
        let out = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        match out {
            FaultyOutcome::Stranded { completed_months } => {
                // One month completed (the survivor's first) at t = 100.
                assert_eq!(completed_months, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_kill_is_idempotent() {
        let inst = Instance::new(3, 4, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 3, 4);
        let once = FaultPlan::none().kill(1, 120.0);
        let twice = FaultPlan::none().kill(1, 120.0).kill(1, 200.0);
        let a = estimate_with_failures(inst, &t, &g, &once, Recovery::MonthlyCheckpoint).unwrap();
        let b = estimate_with_failures(inst, &t, &g, &twice, Recovery::MonthlyCheckpoint).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn late_failure_of_disbanded_group_is_harmless() {
        let inst = Instance::new(2, 2, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 2, 0);
        // Campaign ends by t = 200 + posts; kill at t = 10000.
        let plan = FaultPlan::none().kill(0, 10_000.0);
        let out = estimate_with_failures(inst, &t, &g, &plan, Recovery::MonthlyCheckpoint).unwrap();
        let clean = execute_default(inst, &t, &g).unwrap().makespan;
        match out {
            FaultyOutcome::Completed {
                makespan,
                months_lost,
                ..
            } => {
                assert!((makespan - clean).abs() < 1e-9);
                assert_eq!(months_lost, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn traced_run_reports_the_damage() {
        use oa_trace::metrics::keys;
        use oa_trace::prelude::*;
        let inst = Instance::new(4, 6, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 4, 0);
        let plan = FaultPlan::none().kill(0, 150.0);
        let mut sink = Metered::new(VecTracer::new());
        let out = estimate_with_failures_traced(
            inst,
            &t,
            &g,
            &plan,
            Recovery::MonthlyCheckpoint,
            &mut sink,
        )
        .unwrap();
        let FaultyOutcome::Completed {
            makespan,
            lost_proc_secs,
            ..
        } = out
        else {
            panic!("should complete");
        };
        // The live registry observed the same damage the outcome reports.
        let snap = sink.registry.snapshot();
        assert_eq!(snap.counter(keys::FAILURES), Some(1));
        assert_eq!(snap.counter(keys::RETRIES), Some(1));
        assert_eq!(snap.gauge(keys::PROC_SECS_LOST), Some(lost_proc_secs));
        assert_eq!(snap.gauge(keys::MAKESPAN), Some(makespan));
        // And the stream tells the inject → detect → recover story.
        let events = sink.inner.into_events();
        let pos = |pred: fn(&EventKind) -> bool| events.iter().position(|e| pred(&e.kind));
        let inject = pos(|k| matches!(k, EventKind::FailureInject { .. })).unwrap();
        let detect = pos(|k| matches!(k, EventKind::FailureDetect { .. })).unwrap();
        let recover = pos(|k| matches!(k, EventKind::Recover { .. })).unwrap();
        assert!(inject < detect && detect < recover);
    }

    #[test]
    #[should_panic(expected = "failure targets group")]
    fn out_of_range_group_panics() {
        let inst = Instance::new(2, 2, 16);
        let t = flat(100.0, 10.0);
        let g = oa_sched::grouping::Grouping::uniform(4, 2, 0);
        let _ = estimate_with_failures(
            inst,
            &t,
            &g,
            &FaultPlan::none().kill(9, 1.0),
            Recovery::MonthlyCheckpoint,
        );
    }
}
