//! Session-resumable driver over the generic campaign engine.
//!
//! `oa-service` keeps many campaigns alive at once on a virtual clock:
//! a session is admitted at some instant, its portion of work starts
//! when its cluster frees up, and the daemon later asks "where is this
//! session *now*?" as the clock advances. The engine itself answers
//! only the batch question (one full run, one outcome), so this module
//! wraps [`simulate_campaign`] in a [`SessionDriver`]: simulate once
//! at admission, pin the outcome to a virtual start instant, and
//! resolve any later instant to a [`SessionState`] from the recorded
//! schedule — no re-simulation, no drift between queries.
//!
//! Everything here is virtual-time arithmetic over the engine's
//! deterministic output, so a driver query is itself deterministic:
//! the same submission trace yields byte-identical session logs no
//! matter how often or when the daemon is asked.

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan};
use oa_trace::prelude::NullTracer;
use oa_workflow::task::TaskKind;

use crate::engine::{simulate_campaign, CampaignOutcome, CampaignRun};

/// Where a session stands at a queried virtual instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionState {
    /// The query instant precedes the session's start.
    Pending,
    /// Running: months whose fused main task has completed by the
    /// instant, when the engine recorded a schedule (`None` for
    /// faulted or unfused runs, which record no replayable schedule).
    Running {
        /// Completed months, when resolvable.
        months_done: Option<u32>,
    },
    /// The campaign finished at the carried virtual instant.
    Completed {
        /// Absolute finish instant, seconds.
        finish: f64,
    },
    /// Every group died with months still unscheduled.
    Stranded {
        /// Months completed before the grid went dark.
        completed_months: u64,
    },
}

/// One simulated campaign pinned to a virtual start instant.
///
/// # Examples
///
/// ```
/// use oa_platform::prelude::*;
/// use oa_sched::prelude::*;
/// use oa_sim::driver::{SessionDriver, SessionState};
///
/// let table = PcrModel::reference().table(1.0).unwrap();
/// let inst = Instance::new(2, 12, 53);
/// let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
/// let config = CampaignConfig::default();
///
/// // Admitted at t = 100 s of virtual time.
/// let d = SessionDriver::new(100.0, inst, &table, &grouping, &config, &FaultPlan::none())
///     .unwrap();
/// assert_eq!(d.state_at(0.0), SessionState::Pending);
/// let finish = d.finish().unwrap();
/// assert!(finish > 100.0);
/// assert_eq!(d.state_at(finish), SessionState::Completed { finish });
/// assert!(matches!(d.state_at(finish - 1.0), SessionState::Running { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct SessionDriver {
    start: f64,
    outcome: CampaignOutcome,
}

impl SessionDriver {
    /// Simulates the campaign once through the generic engine and pins
    /// the outcome to virtual instant `start`.
    pub fn new(
        start: f64,
        inst: Instance,
        table: &TimingTable,
        grouping: &Grouping,
        config: &CampaignConfig,
        plan: &FaultPlan,
    ) -> Result<Self, GroupingError> {
        let outcome = simulate_campaign(inst, table, grouping, config, plan, &mut NullTracer)?;
        Ok(Self { start, outcome })
    }

    /// The virtual instant the session's work begins.
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// The engine outcome backing this driver.
    #[must_use]
    pub fn outcome(&self) -> &CampaignOutcome {
        &self.outcome
    }

    /// The completed run, if the campaign was not stranded.
    #[must_use]
    pub fn run(&self) -> Option<&CampaignRun> {
        self.outcome.completed()
    }

    /// Simulated makespan, `None` when stranded.
    #[must_use]
    pub fn makespan(&self) -> Option<f64> {
        self.run().map(|r| r.makespan)
    }

    /// Absolute virtual finish instant (`start + makespan`), `None`
    /// when stranded.
    #[must_use]
    pub fn finish(&self) -> Option<f64> {
        self.run().map(|r| self.start + r.makespan)
    }

    /// Resolves a virtual instant to the session's state, using the
    /// recorded schedule for month-level progress when one exists.
    #[must_use]
    pub fn state_at(&self, t: f64) -> SessionState {
        if t < self.start {
            return SessionState::Pending;
        }
        match &self.outcome {
            CampaignOutcome::Stranded { completed_months } => SessionState::Stranded {
                completed_months: *completed_months,
            },
            CampaignOutcome::Completed(run) => {
                let finish = self.start + run.makespan;
                if t >= finish {
                    SessionState::Completed { finish }
                } else {
                    SessionState::Running {
                        months_done: self.months_done_at(t),
                    }
                }
            }
        }
    }

    /// Months whose fused main task completed by instant `t`, when the
    /// run recorded a schedule.
    fn months_done_at(&self, t: f64) -> Option<u32> {
        let schedule = self.run()?.schedule.as_ref()?;
        let elapsed = t - self.start;
        let done = schedule
            .records
            .iter()
            .filter(|r| r.task.kind == TaskKind::FusedMain && r.end <= elapsed)
            .count();
        Some(done as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_sched::heuristics::Heuristic;

    fn driver(start: f64, plan: FaultPlan) -> SessionDriver {
        let table = PcrModel::reference().table(1.0).unwrap();
        let inst = Instance::new(3, 10, 53);
        let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
        SessionDriver::new(
            start,
            inst,
            &table,
            &grouping,
            &CampaignConfig::default(),
            &plan,
        )
        .unwrap()
    }

    #[test]
    fn states_partition_the_timeline() {
        let d = driver(500.0, FaultPlan::none());
        let finish = d.finish().unwrap();
        assert_eq!(d.state_at(499.9), SessionState::Pending);
        assert_eq!(d.state_at(1e12), SessionState::Completed { finish });
        match d.state_at(500.0) {
            SessionState::Running { months_done } => assert_eq!(months_done, Some(0)),
            other => panic!("expected Running at start, got {other:?}"),
        }
    }

    #[test]
    fn month_progress_is_monotone_and_complete() {
        let d = driver(0.0, FaultPlan::none());
        let finish = d.finish().unwrap();
        let total: u32 = 3 * 10;
        let mut last = 0u32;
        for i in 0..=10 {
            let t = finish * f64::from(i) / 10.0;
            if let SessionState::Running {
                months_done: Some(m),
            } = d.state_at(t)
            {
                assert!(m >= last, "progress went backwards");
                assert!(m < total, "all months done but still Running");
                last = m;
            }
        }
        // Just before the end, nearly everything is done.
        if let SessionState::Running {
            months_done: Some(m),
        } = d.state_at(finish - 1e-6)
        {
            assert!(m > 0);
        }
    }

    #[test]
    fn faulted_runs_have_no_month_resolution() {
        let d = driver(0.0, FaultPlan::none().kill(0, 2000.0));
        let finish = d.finish().expect("checkpoint recovery completes");
        match d.state_at(finish / 2.0) {
            SessionState::Running { months_done } => assert_eq!(months_done, None),
            SessionState::Completed { .. } => {} // half-point may already be done
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn start_offset_shifts_finish() {
        let a = driver(0.0, FaultPlan::none());
        let b = driver(777.0, FaultPlan::none());
        assert_eq!(a.makespan(), b.makespan());
        assert!((b.finish().unwrap() - a.finish().unwrap() - 777.0).abs() < 1e-9);
    }
}
