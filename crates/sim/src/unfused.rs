//! Execution at the original seven-task granularity of Figure 1 — the
//! ablation that validates the paper's fusion decision.
//!
//! Section 4.1 fuses `caif + mp + pcr` into one main task and
//! `cof + emf + cd` into one post task before scheduling. This module
//! executes the *unfused* DAG under the same group policy:
//!
//! * a group picks a scenario and runs `caif`, `mp` and `pcr` of the
//!   month back-to-back (the pre tasks use one processor of the group;
//!   the group is held for the whole span, exactly as fusion assumes);
//! * `cof`, `emf`, `cd` are three distinct one-processor tasks chained
//!   through the post pool — unlike fusion, each hop re-enters the
//!   FIFO queue and may land on a different processor or wait behind
//!   other scenarios' diagnostics.
//!
//! The measurable difference against the fused executor is therefore
//! exactly the cost (or benefit) of post-chain interleaving, which the
//! `fusion_ablation` bench quantifies. It is bounded by construction:
//! fused post occupancy equals the sum of the parts, so only queueing
//! order can differ.
//!
//! Since the engine refactor this module is a thin configuration of
//! [`crate::engine::simulate_campaign`] (unfused granularity, no faults) —
//! which also unlocks combinations the legacy loop never had: tracing
//! ([`estimate_unfused_traced`]) and the scenario-policy ablations.

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery};
use oa_trace::{NullTracer, Tracer};

use crate::engine::{simulate_campaign, CampaignOutcome};
use crate::executor::ExecConfig;

/// Aggregates of an unfused execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnfusedEstimate {
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Last `pcr` completion.
    pub main_finish: f64,
    /// Last `cd` completion.
    pub post_finish: f64,
}

/// Executes the seven-task-per-month campaign. The timing table's
/// cluster speed is honoured by scaling the Figure 1 constants with
/// the table's post/180 ratio (pre and post scale with the sequential
/// speed of the machine).
pub fn estimate_unfused(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
) -> Result<UnfusedEstimate, GroupingError> {
    estimate_unfused_traced(
        inst,
        table,
        grouping,
        ExecConfig::default(),
        &mut NullTracer,
    )
}

/// Like [`estimate_unfused`], but under an arbitrary scenario policy
/// and with the full event story — `cof`/`emf`/`cd` task starts and
/// finishes included — streamed into `tracer`. Neither combination was
/// reachable before the engine refactor.
pub fn estimate_unfused_traced<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: ExecConfig,
    tracer: &mut T,
) -> Result<UnfusedEstimate, GroupingError> {
    let config = CampaignConfig {
        policy: config.policy,
        granularity: Granularity::Unfused,
        recovery: Recovery::MonthlyCheckpoint,
    };
    match simulate_campaign(inst, table, grouping, &config, &FaultPlan::none(), tracer)? {
        CampaignOutcome::Completed(run) => Ok(UnfusedEstimate {
            makespan: run.makespan,
            main_finish: run.main_finish,
            post_finish: run.post_finish,
        }),
        CampaignOutcome::Stranded { .. } => {
            unreachable!("an empty fault plan cannot strand the campaign")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_sched::estimate::estimate;
    use oa_sched::heuristics::Heuristic;
    use oa_workflow::task::{
        CAIF_SECS, CD_SECS, COF_SECS, EMF_SECS, FUSED_POST_SECS, FUSED_PRE_SECS, MP_SECS,
    };

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn single_chain_matches_fused_exactly() {
        // With one dedicated post processor there is no interleaving:
        // the chain cof→emf→cd behaves like one 180 s task.
        let inst = Instance::new(1, 5, 12);
        let t = reference();
        let g = Grouping::uniform(11, 1, 1);
        let fused = estimate(inst, &t, &g).unwrap();
        let unfused = estimate_unfused(inst, &t, &g).unwrap();
        assert!((fused.makespan - unfused.makespan).abs() < 1e-9);
    }

    #[test]
    fn fusion_error_is_small_across_the_sweep() {
        // The paper's fusion decision is safe: across resource counts
        // and heuristics, scheduling at the 7-task granularity moves
        // the makespan by well under 1%.
        let t = reference();
        for r in [13u32, 23, 53, 87, 110] {
            let inst = Instance::new(10, 60, r);
            for h in [Heuristic::Basic, Heuristic::Knapsack] {
                let g = h.grouping(inst, &t).unwrap();
                let fused = estimate(inst, &t, &g).unwrap().makespan;
                let unfused = estimate_unfused(inst, &t, &g).unwrap().makespan;
                let rel = (fused - unfused).abs() / fused;
                assert!(
                    rel < 0.01,
                    "{h:?} R={r}: fused {fused} vs unfused {unfused}"
                );
            }
        }
    }

    #[test]
    fn main_phase_is_identical_to_fused() {
        let inst = Instance::new(6, 20, 40);
        let t = reference();
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let fused = estimate(inst, &t, &g).unwrap();
        let unfused = estimate_unfused(inst, &t, &g).unwrap();
        assert!((fused.main_finish - unfused.main_finish).abs() < 1e-9);
    }

    #[test]
    fn post_steps_scale_with_cluster_speed() {
        let inst = Instance::new(2, 4, 12);
        let slow = PcrModel::reference().table(2.0).unwrap();
        let g = Grouping::uniform(4, 2, 2);
        let fast = estimate_unfused(inst, &reference(), &g).unwrap();
        let slow_e = estimate_unfused(inst, &slow, &g).unwrap();
        assert!(slow_e.makespan > fast.makespan * 1.9);
    }

    #[test]
    fn figure1_scaling_is_pinned_to_the_grid5000_presets() {
        // The unfused model rescales the Figure 1 constants by the
        // table's post/180 cluster-speed ratio. Pin that scaling
        // against every Grid'5000 preset so a change to either the
        // constants or the preset tables cannot drift silently: the
        // scaled post chain must sum to the table's fused post
        // duration exactly, and the scaled pre must keep the same
        // share of the fused span it has in Figure 1.
        use oa_platform::presets::benchmark_grid;
        let grid = benchmark_grid(12);
        assert_eq!(grid.len(), 5, "the paper benchmarks five clusters");
        assert_eq!(COF_SECS + EMF_SECS + CD_SECS, FUSED_POST_SECS);
        for (_, cluster) in grid.iter() {
            let t = &cluster.timing;
            let speed = t.post_secs() / FUSED_POST_SECS;
            // Fusing the scaled chain reproduces the fused post bitwise
            // (the multiplication distributes exactly here: every
            // preset's post is 180 × a power-of-two-free ratio, so we
            // allow one ulp of slack).
            let chain: f64 = COF_SECS * speed + EMF_SECS * speed + CD_SECS * speed;
            assert!(
                (chain - t.post_secs()).abs() <= t.post_secs() * 1e-15,
                "{}: chain {chain} vs post {}",
                cluster.name,
                t.post_secs()
            );
            // The pre share keeps Figure 1's 2 s : 180 s proportion.
            let pre = FUSED_PRE_SECS * speed;
            assert!(
                (pre / t.post_secs() - FUSED_PRE_SECS / FUSED_POST_SECS).abs() < 1e-15,
                "{}: pre {pre} breaks the Figure 1 proportion",
                cluster.name
            );
            assert_eq!(
                FUSED_PRE_SECS,
                CAIF_SECS + MP_SECS,
                "Figure 1 pre tasks sum"
            );
            // And the group span equals the fused duration for every
            // group size — fusion changes nothing about the main phase.
            for g in 4..=11u32 {
                let span = (t.main_secs(g) - pre) + pre;
                assert_eq!(
                    span.to_bits(),
                    t.main_secs(g).to_bits(),
                    "{}: G={g} span drifts from the fused duration",
                    cluster.name
                );
            }
        }
    }

    #[test]
    fn traced_unfused_tells_the_seven_task_story() {
        // Unfused + tracing: a combination the legacy loop never had.
        use oa_trace::{EventKind, VecTracer};
        use oa_workflow::task::TaskKind;
        let inst = Instance::new(2, 3, 12);
        let t = reference();
        let g = Grouping::uniform(4, 2, 2);
        let mut sink = VecTracer::new();
        let est = estimate_unfused_traced(inst, &t, &g, ExecConfig::default(), &mut sink).unwrap();
        let untraced = estimate_unfused(inst, &t, &g).unwrap();
        assert_eq!(est, untraced, "tracing must not change the estimate");
        let events = sink.into_events();
        // Each month finishes one main and the three chained posts.
        let finishes = |kind: TaskKind| {
            events
                .iter()
                .filter(
                    |e| matches!(&e.kind, EventKind::TaskFinish { task, .. } if task.kind == kind),
                )
                .count() as u64
        };
        assert_eq!(finishes(TaskKind::FusedMain), inst.nbtasks());
        assert_eq!(finishes(TaskKind::Cof), inst.nbtasks());
        assert_eq!(finishes(TaskKind::Emf), inst.nbtasks());
        assert_eq!(finishes(TaskKind::Cd), inst.nbtasks());
        // The campaign end carries the estimate's makespan.
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::CampaignEnd { makespan } if makespan == est.makespan
        )));
    }

    #[test]
    fn unfused_policy_ablation_is_ordered_like_the_fused_one() {
        // Unfused + policy ablation: the second previously-impossible
        // combination. The adversarial most-advanced policy can only
        // tie or lose against the paper's least-advanced policy, at
        // this granularity too.
        use oa_sched::policy::ScenarioPolicy;
        let t = reference();
        let inst = Instance::new(6, 12, 30);
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let run = |policy| {
            estimate_unfused_traced(inst, &t, &g, ExecConfig { policy }, &mut NullTracer)
                .unwrap()
                .makespan
        };
        let fair = run(ScenarioPolicy::LeastAdvanced);
        let rr = run(ScenarioPolicy::RoundRobin);
        let unfair = run(ScenarioPolicy::MostAdvanced);
        assert!(unfair + 1e-9 >= fair, "unfair {unfair} < fair {fair}");
        assert!(rr > 0.0 && rr.is_finite());
        // And the default-policy path is the legacy entry point.
        assert_eq!(fair, estimate_unfused(inst, &t, &g).unwrap().makespan);
    }
}
