//! Execution at the original seven-task granularity of Figure 1 — the
//! ablation that validates the paper's fusion decision.
//!
//! Section 4.1 fuses `caif + mp + pcr` into one main task and
//! `cof + emf + cd` into one post task before scheduling. This module
//! executes the *unfused* DAG under the same group policy:
//!
//! * a group picks a scenario and runs `caif`, `mp` and `pcr` of the
//!   month back-to-back (the pre tasks use one processor of the group;
//!   the group is held for the whole span, exactly as fusion assumes);
//! * `cof`, `emf`, `cd` are three distinct one-processor tasks chained
//!   through the post pool — unlike fusion, each hop re-enters the
//!   FIFO queue and may land on a different processor or wait behind
//!   other scenarios' diagnostics.
//!
//! The measurable difference against the fused executor is therefore
//! exactly the cost (or benefit) of post-chain interleaving, which the
//! `fusion_ablation` bench quantifies. It is bounded by construction:
//! fused post occupancy equals the sum of the parts, so only queueing
//! order can differ.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::time::Time;
use oa_workflow::task::{CD_SECS, COF_SECS, EMF_SECS, FUSED_POST_SECS, FUSED_PRE_SECS};

/// Aggregates of an unfused execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnfusedEstimate {
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Last `pcr` completion.
    pub main_finish: f64,
    /// Last `cd` completion.
    pub post_finish: f64,
}

/// Executes the seven-task-per-month campaign. The timing table's
/// cluster speed is honoured by scaling the Figure 1 constants with
/// the table's post/180 ratio (pre and post scale with the sequential
/// speed of the machine).
pub fn estimate_unfused(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
) -> Result<UnfusedEstimate, GroupingError> {
    grouping.validate(inst)?;
    let speed = table.post_secs() / FUSED_POST_SECS;
    let pre = FUSED_PRE_SECS * speed;
    let post_steps = [COF_SECS * speed, EMF_SECS * speed, CD_SECS * speed];
    let sizes: Vec<u32> = grouping.groups().to_vec();
    // Group time per month: pre + pcr (table.main includes pre already;
    // subtract the scaled pre to avoid double counting, then add it
    // back — i.e. the group span equals the fused duration exactly).
    let durs: Vec<f64> = sizes
        .iter()
        .map(|&g| (table.main_secs(g) - pre) + pre)
        .collect();
    let nm = inst.nm;

    let mut busy: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut running: Vec<Option<u32>> = vec![None; sizes.len()];
    let mut waiting: BinaryHeap<Reverse<(u32, u32)>> =
        (0..inst.ns).map(|s| Reverse((0, s))).collect();
    let mut months_done = vec![0u32; inst.ns as usize];
    let mut unfinished = inst.ns as usize;
    let mut idle: Vec<usize> = (0..sizes.len()).collect();
    idle.sort_unstable_by_key(|&g| (sizes[g], g));
    let mut alive = sizes.len();

    // Post sub-task events: (ready_time, step_index). Steps re-enter
    // the queue as they progress through cof → emf → cd.
    let mut post_queue: BinaryHeap<Reverse<(Time, u8)>> = BinaryHeap::new();
    let mut pool: BinaryHeap<Reverse<Time>> = BinaryHeap::new();
    for _ in 0..grouping.post_procs {
        pool.push(Reverse(Time(0.0)));
    }

    let assign = |now: f64,
                  idle: &mut Vec<usize>,
                  waiting: &mut BinaryHeap<Reverse<(u32, u32)>>,
                  busy: &mut BinaryHeap<Reverse<(Time, usize)>>,
                  running: &mut Vec<Option<u32>>,
                  alive: &mut usize,
                  unfinished: usize,
                  pool: &mut BinaryHeap<Reverse<Time>>| {
        while !idle.is_empty() {
            let Some(&Reverse((_, s))) = waiting.peek() else {
                break;
            };
            let g = idle.pop().expect("non-empty");
            waiting.pop();
            running[g] = Some(s);
            busy.push(Reverse((Time(now + durs[g]), g)));
        }
        while !idle.is_empty() && *alive > unfinished {
            let g = idle.remove(0);
            *alive -= 1;
            for _ in 0..sizes[g] {
                pool.push(Reverse(Time(now)));
            }
        }
    };

    assign(
        0.0,
        &mut idle,
        &mut waiting,
        &mut busy,
        &mut running,
        &mut alive,
        unfinished,
        &mut pool,
    );

    let mut main_finish = 0.0f64;
    while let Some(Reverse((Time(t), g))) = busy.pop() {
        let s = running[g].take().expect("busy");
        months_done[s as usize] += 1;
        main_finish = t;
        post_queue.push(Reverse((Time(t), 0)));
        if months_done[s as usize] == nm {
            unfinished -= 1;
        } else {
            waiting.push(Reverse((months_done[s as usize], s)));
        }
        let pos = idle
            .binary_search_by_key(&(sizes[g], g), |&x| (sizes[x], x))
            .unwrap_err();
        idle.insert(pos, g);
        assign(
            t,
            &mut idle,
            &mut waiting,
            &mut busy,
            &mut running,
            &mut alive,
            unfinished,
            &mut pool,
        );
    }

    // Drain the post chains through the pool in ready order.
    let mut post_finish = 0.0f64;
    while let Some(Reverse((Time(ready), step))) = post_queue.pop() {
        let Reverse(Time(avail)) = pool.pop().expect("pool non-empty after disbands");
        let start = if avail > ready { avail } else { ready };
        let end = start + post_steps[step as usize];
        pool.push(Reverse(Time(end)));
        if (step as usize) + 1 < post_steps.len() {
            post_queue.push(Reverse((Time(end), step + 1)));
        } else if end > post_finish {
            post_finish = end;
        }
    }

    Ok(UnfusedEstimate {
        makespan: main_finish.max(post_finish),
        main_finish,
        post_finish,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_sched::estimate::estimate;
    use oa_sched::heuristics::Heuristic;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn single_chain_matches_fused_exactly() {
        // With one dedicated post processor there is no interleaving:
        // the chain cof→emf→cd behaves like one 180 s task.
        let inst = Instance::new(1, 5, 12);
        let t = reference();
        let g = Grouping::uniform(11, 1, 1);
        let fused = estimate(inst, &t, &g).unwrap();
        let unfused = estimate_unfused(inst, &t, &g).unwrap();
        assert!((fused.makespan - unfused.makespan).abs() < 1e-9);
    }

    #[test]
    fn fusion_error_is_small_across_the_sweep() {
        // The paper's fusion decision is safe: across resource counts
        // and heuristics, scheduling at the 7-task granularity moves
        // the makespan by well under 1%.
        let t = reference();
        for r in [13u32, 23, 53, 87, 110] {
            let inst = Instance::new(10, 60, r);
            for h in [Heuristic::Basic, Heuristic::Knapsack] {
                let g = h.grouping(inst, &t).unwrap();
                let fused = estimate(inst, &t, &g).unwrap().makespan;
                let unfused = estimate_unfused(inst, &t, &g).unwrap().makespan;
                let rel = (fused - unfused).abs() / fused;
                assert!(
                    rel < 0.01,
                    "{h:?} R={r}: fused {fused} vs unfused {unfused}"
                );
            }
        }
    }

    #[test]
    fn main_phase_is_identical_to_fused() {
        let inst = Instance::new(6, 20, 40);
        let t = reference();
        let g = Heuristic::Knapsack.grouping(inst, &t).unwrap();
        let fused = estimate(inst, &t, &g).unwrap();
        let unfused = estimate_unfused(inst, &t, &g).unwrap();
        assert!((fused.main_finish - unfused.main_finish).abs() < 1e-9);
    }

    #[test]
    fn post_steps_scale_with_cluster_speed() {
        let inst = Instance::new(2, 4, 12);
        let slow = PcrModel::reference().table(2.0).unwrap();
        let g = Grouping::uniform(4, 2, 2);
        let fast = estimate_unfused(inst, &reference(), &g).unwrap();
        let slow_e = estimate_unfused(inst, &slow, &g).unwrap();
        assert!(slow_e.makespan > fast.makespan * 1.9);
    }
}
