//! ASCII Gantt rendering of schedules — the textual equivalent of the
//! paper's Figures 3–6 (hatched main-task rectangles, post-processing
//! fills, overpassing tails).

use oa_workflow::task::TaskKind;

use crate::schedule::Schedule;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Total character columns for the time axis.
    pub width: usize,
    /// Collapse each multiprocessor group to one row (`true`, default)
    /// or draw every processor as its own row.
    pub by_group: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        Self {
            width: 72,
            by_group: true,
        }
    }
}

/// Renders the schedule as an ASCII Gantt chart.
///
/// Main tasks are drawn as `#` (hatched, as in the paper's figures),
/// post tasks as `.`, idle time as spaces. One row per group plus one
/// row per pool processor that ever ran a post.
pub fn render(schedule: &Schedule, opts: GanttOptions) -> String {
    if schedule.records.is_empty() {
        return String::from("(empty schedule)\n");
    }
    let horizon = schedule.makespan.max(1e-9);
    let width = opts.width.max(10);
    let scale = width as f64 / horizon;

    // Row keying: by group index for mains; by first processor for
    // posts / per-proc mode.
    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
    enum RowKey {
        Group(u32),
        Proc(u32),
    }

    let mut rows: std::collections::BTreeMap<RowKey, Vec<char>> = std::collections::BTreeMap::new();
    let mut paint = |key: RowKey, start: f64, end: f64, ch: char| {
        let row = rows.entry(key).or_insert_with(|| vec![' '; width]);
        let a = (start * scale).floor() as usize;
        let b = ((end * scale).ceil() as usize).min(width);
        for cell in row.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
            *cell = ch;
        }
    };

    for r in &schedule.records {
        match (r.task.kind, r.group, opts.by_group) {
            (TaskKind::FusedMain, Some(g), true) => paint(RowKey::Group(g), r.start, r.end, '#'),
            (TaskKind::FusedMain, _, _) => {
                for p in r.procs.iter() {
                    paint(RowKey::Proc(p), r.start, r.end, '#');
                }
            }
            (_, _, _) => paint(RowKey::Proc(r.procs.first), r.start, r.end, '.'),
        }
    }

    let mut out = String::new();
    let hours = schedule.makespan / 3600.0;
    out.push_str(&format!(
        "makespan: {:.0} s ({hours:.1} h)  [#'=main  .'=post]\n",
        schedule.makespan
    ));
    for (key, row) in rows {
        let label = match key {
            RowKey::Group(g) => format!("grp{g:<3}"),
            RowKey::Proc(p) => format!("cpu{p:<3}"),
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

/// Renders with default options.
pub fn render_default(schedule: &Schedule) -> String {
    render(schedule, GanttOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use oa_platform::timing::TimingTable;
    use oa_sched::grouping::Grouping;
    use oa_sched::params::Instance;

    fn small_schedule() -> Schedule {
        let inst = Instance::new(2, 3, 9);
        let t = TimingTable::new([100.0; 8], 30.0).unwrap();
        execute_default(inst, &t, &Grouping::uniform(4, 2, 1)).unwrap()
    }

    #[test]
    fn renders_all_groups_and_post_procs() {
        let s = small_schedule();
        let g = render_default(&s);
        assert!(g.contains("grp0"));
        assert!(g.contains("grp1"));
        assert!(g.contains("cpu8")); // dedicated post proc
        assert!(g.contains('#'));
        assert!(g.contains('.'));
    }

    #[test]
    fn group_rows_are_mostly_full() {
        // Both groups run 3 mains back to back: rows nearly solid '#'.
        let s = small_schedule();
        let g = render(
            &s,
            GanttOptions {
                width: 60,
                by_group: true,
            },
        );
        let grp0 = g.lines().find(|l| l.starts_with("grp0")).unwrap();
        let hashes = grp0.chars().filter(|&c| c == '#').count();
        assert!(hashes > 40, "group row too sparse: {hashes}");
    }

    #[test]
    fn per_proc_mode_expands_groups() {
        let s = small_schedule();
        let g = render(
            &s,
            GanttOptions {
                width: 40,
                by_group: false,
            },
        );
        // 9 processors → at least 8 busy rows (the idle one may be absent).
        let rows = g.lines().filter(|l| l.starts_with("cpu")).count();
        assert!(rows >= 8, "{rows} rows");
        assert!(!g.contains("grp"));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = Schedule {
            instance: Instance::new(1, 1, 4),
            records: vec![],
            makespan: 0.0,
        };
        assert_eq!(render_default(&s), "(empty schedule)\n");
    }

    #[test]
    fn header_reports_makespan() {
        let s = small_schedule();
        let g = render_default(&s);
        let first = g.lines().next().unwrap();
        assert!(first.contains("makespan"));
        assert!(first.contains(&format!("{:.0} s", s.makespan)));
    }
}
