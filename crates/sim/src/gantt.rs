//! ASCII Gantt rendering of schedules — the textual equivalent of the
//! paper's Figures 3–6 (hatched main-task rectangles, post-processing
//! fills, overpassing tails).
//!
//! Since the observability layer landed this is a thin adapter: the
//! schedule is converted to its trace-event stream and drawn by
//! [`oa_trace::gantt::render_events`], the same renderer that draws
//! charts from live or replayed traces.

pub use oa_trace::gantt::GanttOptions;

use crate::schedule::Schedule;
use crate::tracing::events_of;

/// Renders the schedule as an ASCII Gantt chart.
///
/// Main tasks are drawn as `#` (hatched, as in the paper's figures),
/// post tasks as `.`, idle time as spaces. One row per group plus one
/// row per pool processor that ever ran a post.
pub fn render(schedule: &Schedule, opts: GanttOptions) -> String {
    oa_trace::gantt::render_events(&events_of(schedule), opts)
}

/// Renders with default options.
pub fn render_default(schedule: &Schedule) -> String {
    render(schedule, GanttOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_default;
    use oa_platform::timing::TimingTable;
    use oa_sched::grouping::Grouping;
    use oa_sched::params::Instance;

    fn small_schedule() -> Schedule {
        let inst = Instance::new(2, 3, 9);
        let t = TimingTable::new([100.0; 8], 30.0).unwrap();
        execute_default(inst, &t, &Grouping::uniform(4, 2, 1)).unwrap()
    }

    #[test]
    fn renders_all_groups_and_post_procs() {
        let s = small_schedule();
        let g = render_default(&s);
        assert!(g.contains("grp0"));
        assert!(g.contains("grp1"));
        assert!(g.contains("cpu8")); // dedicated post proc
        assert!(g.contains('#'));
        assert!(g.contains('.'));
    }

    #[test]
    fn group_rows_are_mostly_full() {
        // Both groups run 3 mains back to back: rows nearly solid '#'.
        let s = small_schedule();
        let g = render(
            &s,
            GanttOptions {
                width: 60,
                by_group: true,
            },
        );
        let grp0 = g.lines().find(|l| l.starts_with("grp0")).unwrap();
        let hashes = grp0.chars().filter(|&c| c == '#').count();
        assert!(hashes > 40, "group row too sparse: {hashes}");
    }

    #[test]
    fn per_proc_mode_expands_groups() {
        let s = small_schedule();
        let g = render(
            &s,
            GanttOptions {
                width: 40,
                by_group: false,
            },
        );
        // 9 processors → at least 8 busy rows (the idle one may be absent).
        let rows = g.lines().filter(|l| l.starts_with("cpu")).count();
        assert!(rows >= 8, "{rows} rows");
        assert!(!g.contains("grp"));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = Schedule {
            instance: Instance::new(1, 1, 4),
            records: vec![],
            makespan: 0.0,
        };
        assert_eq!(render_default(&s), "(empty schedule)\n");
    }

    #[test]
    fn header_reports_makespan() {
        let s = small_schedule();
        let g = render_default(&s);
        let first = g.lines().next().unwrap();
        assert!(first.contains("makespan"));
        assert!(first.contains(&format!("{:.0} s", s.makespan)));
    }
}
