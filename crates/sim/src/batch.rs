//! Mass-batch variant execution: 10⁵–10⁶ campaign variants per run.
//!
//! A *batch* is a parameter grid (`R` × `NS` × `NM` × policy ×
//! granularity) crossed with Monte Carlo fault plans, all priced and
//! executed with cross-variant sharing:
//!
//! * **planning memo** — groupings come from
//!   [`oa_sched::memo::PlanMemo`], so knapsack DP tables and makespan
//!   scans are solved once per `(timing, R)` rectangle and replayed
//!   bitwise for every shape that shares them;
//! * **kernel head sharing** — for each fused shape one fault-free
//!   *head* run ([`crate::engine`] in capture mode) records the
//!   campaign's canonical state at every `NS`-completion boundary;
//!   every fault variant then resumes from the last checkpoint before
//!   its first fault instead of replaying the fault-free prefix
//!   event by event;
//! * **SoA streaming** — variant results land in [`BatchSoA`]
//!   (structure-of-arrays columns), and workers reuse thread-local
//!   fault buffers plus the engine's thread-local scratch, so the
//!   steady state allocates nothing per variant.
//!
//! The hard invariant, pinned by `tests/batch_equivalence.rs`: every
//! variant's outcome is **bitwise identical** to running that variant
//! individually through [`crate::engine::simulate_campaign_kernel`],
//! at any worker count. [`run_naive`] executes the same enumeration
//! without sharing and is the baseline `oa-bench` measures against.

use std::cell::RefCell;
use std::fmt;

use serde::Serialize;
use serde_json::Value;

use oa_par::Pool;
use oa_platform::speedup::PcrModel;
use oa_platform::timing::TimingTable;
use oa_sched::estimate::estimate;
use oa_sched::grouping::Grouping;
use oa_sched::heuristics::Heuristic;
use oa_sched::memo::{MemoStats, PlanMemo};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};
use oa_trace::NullTracer;

use crate::engine::{
    run_batch_head, run_batch_variant, simulate_campaign_kernel, CampaignOutcome, KernelOpts,
};

/// Specification of one batch sweep, parsed from the JSON the CLI and
/// the service both accept. Axes hold at least one entry each; the
/// variant count is `r × ns × nm × policies × granularities ×
/// variants_per_shape`.
#[derive(Debug, Clone, Serialize)]
pub struct BatchSpec {
    /// Timing table shared by every variant.
    pub table: TimingTable,
    /// Grouping heuristic (one per batch — groupings are shape state,
    /// not variant state).
    pub heuristic: Heuristic,
    /// Recovery model applied to every variant.
    pub recovery: Recovery,
    /// Cluster-size axis.
    pub rs: Vec<u32>,
    /// Scenario-count axis.
    pub nss: Vec<u32>,
    /// Month-count axis.
    pub nms: Vec<u32>,
    /// Scenario-policy axis.
    pub policies: Vec<ScenarioPolicy>,
    /// Granularity axis.
    pub granularities: Vec<Granularity>,
    /// Monte Carlo fault variants per shape.
    pub variants_per_shape: u64,
    /// Faults per variant are uniform in `1..=max_faults`.
    pub max_faults: u32,
    /// Base seed of the deterministic splitmix64 stream.
    pub seed: u64,
    /// Fault-time granularity in seconds. `1.0` keeps times integral
    /// (the calendar kernel stays engaged on resume); finer values
    /// produce fractional times and exercise the heap path.
    pub fault_resolution: f64,
}

/// Why a [`BatchSpec`] could not be parsed or expanded.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// Malformed or out-of-range JSON.
    Parse(String),
    /// A grid shape cannot be planned at all.
    InfeasibleShape {
        /// Processors of the failing shape.
        r: u32,
        /// Scenarios of the failing shape.
        ns: u32,
        /// Why planning failed.
        why: String,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Parse(why) => write!(f, "bad batch spec: {why}"),
            BatchError::InfeasibleShape { r, ns, why } => {
                write!(f, "infeasible shape (r={r}, ns={ns}): {why}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

const HEURISTICS: [Heuristic; 6] = [
    Heuristic::Basic,
    Heuristic::RedistributeIdle,
    Heuristic::NoPostReservation,
    Heuristic::Knapsack,
    Heuristic::KnapsackGreedy,
    Heuristic::Balanced,
];

fn parse_err(why: impl Into<String>) -> BatchError {
    BatchError::Parse(why.into())
}

// The vendored `serde::Value` exposes only variant matching; these
// mirror real serde_json's `as_*` accessors for the shapes the spec
// uses.
fn val_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(n) => Some(n),
        Value::I64(n) => u64::try_from(n).ok(),
        _ => None,
    }
}

fn val_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::F64(x) => Some(x),
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        _ => None,
    }
}

fn val_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn u32_axis(v: &Value, key: &str, default: u32) -> Result<Vec<u32>, BatchError> {
    let Some(field) = v.get(key) else {
        return Ok(vec![default]);
    };
    let one = |x: &Value| {
        val_u64(x)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| parse_err(format!("{key} entries must be u32")))
    };
    let axis = match field {
        Value::Array(items) => items.iter().map(one).collect::<Result<Vec<_>, _>>()?,
        other => vec![one(other)?],
    };
    if axis.is_empty() {
        return Err(parse_err(format!("{key} axis is empty")));
    }
    Ok(axis)
}

fn str_axis<T: Copy>(
    v: &Value,
    key: &str,
    default: T,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, BatchError> {
    let Some(field) = v.get(key) else {
        return Ok(vec![default]);
    };
    let one = |x: &Value| {
        val_str(x)
            .and_then(&parse)
            .ok_or_else(|| parse_err(format!("unknown {key} entry {x:?}")))
    };
    let axis = match field {
        Value::Array(items) => items.iter().map(one).collect::<Result<Vec<_>, _>>()?,
        other => vec![one(other)?],
    };
    if axis.is_empty() {
        return Err(parse_err(format!("{key} axis is empty")));
    }
    Ok(axis)
}

impl BatchSpec {
    /// The headline benchmark spec: a Monte Carlo single-fault sweep
    /// over the paper's reference shape (`NS=10`, `NM=1800`, `R=53`)
    /// under the basic `7×7 | post:4` grouping — the same reference
    /// configuration `oa-bench` times.
    ///
    /// The basic grouping is deliberate: its uniform month duration
    /// lets the steady-state detector lock, so resumed variants skip
    /// both the post-fault main cycles and the periodic drain region.
    /// Mixed-size knapsack groupings (e.g. `4×8 + 3×7` here) produce
    /// an aperiodic busy pattern the detector cannot fold, capping
    /// sharing at checkpoint-resume alone; select them via the spec's
    /// `heuristic` field when throughput matters less than makespan.
    pub fn reference_mc(variants: u64, seed: u64) -> Self {
        Self {
            table: PcrModel::reference()
                .table(1.0)
                .expect("reference model is valid"),
            heuristic: Heuristic::Basic,
            recovery: Recovery::MonthlyCheckpoint,
            rs: vec![53],
            nss: vec![10],
            nms: vec![1800],
            policies: vec![ScenarioPolicy::LeastAdvanced],
            granularities: vec![Granularity::Fused],
            variants_per_shape: variants,
            max_faults: 1,
            seed,
            fault_resolution: 1.0,
        }
    }

    /// Parses the JSON form. Every field is optional; the defaults are
    /// [`BatchSpec::reference_mc`] with 10⁴ variants and seed 42.
    pub fn from_json(v: &Value) -> Result<Self, BatchError> {
        if !matches!(v, Value::Object(_)) {
            return Err(parse_err("spec must be a JSON object"));
        }
        let mut spec = Self::reference_mc(10_000, 42);
        if let Some(t) = v.get("table") {
            let Some(Value::Array(mains)) = t.get("main") else {
                return Err(parse_err("table.main must be an array of 8 seconds"));
            };
            if mains.len() != 8 {
                return Err(parse_err("table.main must hold exactly 8 entries"));
            }
            let mut main = [0.0f64; 8];
            for (slot, m) in main.iter_mut().zip(mains) {
                *slot =
                    val_f64(m).ok_or_else(|| parse_err("table.main entries must be numbers"))?;
            }
            let post = t
                .get("post")
                .and_then(val_f64)
                .ok_or_else(|| parse_err("table.post must be a number"))?;
            spec.table = TimingTable::new(main, post)
                .map_err(|e| parse_err(format!("bad timing table: {e}")))?;
        }
        spec.rs = u32_axis(v, "r", 53)?;
        spec.nss = u32_axis(v, "ns", 10)?;
        spec.nms = u32_axis(v, "nm", 1800)?;
        spec.policies = str_axis(v, "policies", ScenarioPolicy::LeastAdvanced, |s| {
            ScenarioPolicy::parse(s)
        })?;
        spec.granularities = str_axis(v, "granularities", Granularity::Fused, |s| match s {
            "fused" => Some(Granularity::Fused),
            "unfused" => Some(Granularity::Unfused),
            _ => None,
        })?;
        if let Some(h) = v.get("heuristic") {
            let name = val_str(h).ok_or_else(|| parse_err("heuristic must be a string"))?;
            // The `Submit` aliases first, then the canonical labels,
            // so specs read like wire requests and like `Heuristic`
            // docs alike.
            spec.heuristic = match name {
                "basic" => Heuristic::Basic,
                "redistribute" | "gain1" => Heuristic::RedistributeIdle,
                "nopost" | "gain2" => Heuristic::NoPostReservation,
                "knapsack" | "gain3" => Heuristic::Knapsack,
                "knapsack-greedy" => Heuristic::KnapsackGreedy,
                "balanced" => Heuristic::Balanced,
                other => HEURISTICS
                    .into_iter()
                    .find(|c| c.label() == other)
                    .ok_or_else(|| parse_err(format!("unknown heuristic {other}")))?,
            };
        }
        if let Some(r) = v.get("recovery") {
            spec.recovery = match val_str(r) {
                Some("monthly-checkpoint") => Recovery::MonthlyCheckpoint,
                Some("restart-scenario") => Recovery::RestartScenario,
                _ => return Err(parse_err(format!("unknown recovery {r:?}"))),
            };
        }
        if let Some(n) = v.get("variants") {
            spec.variants_per_shape = val_u64(n)
                .filter(|&n| n > 0)
                .ok_or_else(|| parse_err("variants must be a positive integer"))?;
        }
        if let Some(n) = v.get("max_faults") {
            spec.max_faults = val_u64(n)
                .and_then(|n| u32::try_from(n).ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| parse_err("max_faults must be a positive u32"))?;
        }
        if let Some(n) = v.get("seed") {
            spec.seed = val_u64(n).ok_or_else(|| parse_err("seed must be a u64"))?;
        }
        if let Some(n) = v.get("fault_resolution") {
            spec.fault_resolution = val_f64(n)
                .filter(|&x| x > 0.0 && x.is_finite())
                .ok_or_else(|| parse_err("fault_resolution must be a positive number"))?;
        }
        Ok(spec)
    }

    /// Total variants the spec enumerates.
    #[must_use]
    pub fn variant_count(&self) -> u64 {
        self.shape_count() as u64 * self.variants_per_shape
    }

    /// Grid shapes the spec enumerates.
    #[must_use]
    pub fn shape_count(&self) -> usize {
        self.rs.len()
            * self.nss.len()
            * self.nms.len()
            * self.policies.len()
            * self.granularities.len()
    }
}

/// One expanded grid shape: the per-shape state every variant of that
/// shape shares.
#[derive(Debug, Clone)]
pub struct ShapePlan {
    /// Position in the spec's enumeration order (seeds fault streams).
    pub shape_idx: usize,
    /// Instance of the shape.
    pub inst: Instance,
    /// Campaign configuration of the shape.
    pub config: CampaignConfig,
    /// Grouping chosen by the spec's heuristic.
    pub grouping: Grouping,
    /// Fault-time window: fault-free makespan, rounded up to seconds.
    pub horizon_ticks: u64,
}

/// Expands the spec's grid into per-shape plans, pricing groupings
/// through `memo` (knapsack tables shared across the `R` axis).
pub fn expand_shapes(spec: &BatchSpec, memo: &mut PlanMemo) -> Result<Vec<ShapePlan>, BatchError> {
    let mut shapes = Vec::with_capacity(spec.shape_count());
    let mut shape_idx = 0usize;
    for &r in &spec.rs {
        for &ns in &spec.nss {
            for &nm in &spec.nms {
                for &policy in &spec.policies {
                    for &granularity in &spec.granularities {
                        let inst = Instance::new(ns, nm, r);
                        let grouping = if spec.heuristic == Heuristic::Knapsack {
                            memo.knapsack_grouping(inst, &spec.table)
                        } else {
                            spec.heuristic.grouping(inst, &spec.table)
                        }
                        .map_err(|e| BatchError::InfeasibleShape {
                            r,
                            ns,
                            why: e.to_string(),
                        })?;
                        let makespan = estimate(inst, &spec.table, &grouping)
                            .map_err(|e| BatchError::InfeasibleShape {
                                r,
                                ns,
                                why: e.to_string(),
                            })?
                            .makespan;
                        shapes.push(ShapePlan {
                            shape_idx,
                            inst,
                            config: CampaignConfig {
                                policy,
                                granularity,
                                recovery: spec.recovery,
                            },
                            grouping,
                            horizon_ticks: (makespan.ceil() as u64).max(1),
                        });
                        shape_idx += 1;
                    }
                }
            }
        }
    }
    Ok(shapes)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Writes variant `v`'s fault plan for `shape` into `out`, sorted by
/// time (ties keep draw order — the exact comparator the engine
/// applies to a [`FaultPlan`]). Deterministic and order-free: the plan
/// depends only on `(spec.seed, shape.shape_idx, v)`, never on which
/// worker generates it.
pub fn faults_for(spec: &BatchSpec, shape: &ShapePlan, v: u64, out: &mut Vec<(usize, f64)>) {
    out.clear();
    let mut state = spec
        .seed
        .wrapping_add((shape.shape_idx as u64).wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(v.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    let k = 1 + splitmix64(&mut state) % u64::from(spec.max_faults);
    let groups = shape.grouping.group_count() as u64;
    let per_sec = (1.0 / spec.fault_resolution).round().max(1.0) as u64;
    let span = shape.horizon_ticks.saturating_mul(per_sec).max(1);
    for _ in 0..k {
        let g = (splitmix64(&mut state) % groups) as usize;
        let t = (splitmix64(&mut state) % span) as f64 * spec.fault_resolution;
        out.push((g, t));
    }
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
}

/// One variant's result — the outcome fields of a
/// [`CampaignOutcome`], flattened to a `Copy` row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VariantOut {
    /// Whether the campaign completed.
    pub completed: bool,
    /// Makespan (0 when stranded).
    pub makespan: f64,
    /// Last main-phase completion (0 when stranded).
    pub main_finish: f64,
    /// Last post-chain completion (0 when stranded).
    pub post_finish: f64,
    /// Processor-seconds destroyed by crashes (0 when stranded).
    pub lost_proc_secs: f64,
    /// Months lost to crashes (0 when stranded).
    pub months_lost: u32,
    /// Months completed (`NS·NM` when completed).
    pub completed_months: u64,
}

impl VariantOut {
    /// Flattens an engine outcome.
    #[must_use]
    pub fn of(outcome: &CampaignOutcome, inst: Instance) -> Self {
        match outcome {
            CampaignOutcome::Completed(run) => Self {
                completed: true,
                makespan: run.makespan,
                main_finish: run.main_finish,
                post_finish: run.post_finish,
                lost_proc_secs: run.lost_proc_secs,
                months_lost: run.months_lost,
                completed_months: inst.nbtasks(),
            },
            CampaignOutcome::Stranded { completed_months } => Self {
                completed: false,
                makespan: 0.0,
                main_finish: 0.0,
                post_finish: 0.0,
                lost_proc_secs: 0.0,
                months_lost: 0,
                completed_months: *completed_months,
            },
        }
    }
}

/// Variant results in structure-of-arrays form: one column per
/// [`VariantOut`] field, indexed by the spec's enumeration order.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BatchSoA {
    /// Completion flags.
    pub completed: Vec<bool>,
    /// Makespans.
    pub makespan: Vec<f64>,
    /// Main-phase finishes.
    pub main_finish: Vec<f64>,
    /// Post-chain finishes.
    pub post_finish: Vec<f64>,
    /// Crash losses, processor-seconds.
    pub lost_proc_secs: Vec<f64>,
    /// Months lost to crashes.
    pub months_lost: Vec<u32>,
    /// Months completed.
    pub completed_months: Vec<u64>,
}

impl BatchSoA {
    fn with_capacity(n: usize) -> Self {
        Self {
            completed: Vec::with_capacity(n),
            makespan: Vec::with_capacity(n),
            main_finish: Vec::with_capacity(n),
            post_finish: Vec::with_capacity(n),
            lost_proc_secs: Vec::with_capacity(n),
            months_lost: Vec::with_capacity(n),
            completed_months: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, v: VariantOut) {
        self.completed.push(v.completed);
        self.makespan.push(v.makespan);
        self.main_finish.push(v.main_finish);
        self.post_finish.push(v.post_finish);
        self.lost_proc_secs.push(v.lost_proc_secs);
        self.months_lost.push(v.months_lost);
        self.completed_months.push(v.completed_months);
    }

    /// Variants held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.makespan.len()
    }

    /// Whether no variant is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.makespan.is_empty()
    }

    /// Re-assembles row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    #[must_use]
    pub fn at(&self, i: usize) -> VariantOut {
        VariantOut {
            completed: self.completed[i],
            makespan: self.makespan[i],
            main_finish: self.main_finish[i],
            post_finish: self.post_finish[i],
            lost_proc_secs: self.lost_proc_secs[i],
            months_lost: self.months_lost[i],
            completed_months: self.completed_months[i],
        }
    }

    /// FNV-1a over every row's bits in index order — the batch/naive
    /// byte-diff oracle CI checks.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for i in 0..self.len() {
            eat(u64::from(self.completed[i]));
            eat(self.makespan[i].to_bits());
            eat(self.main_finish[i].to_bits());
            eat(self.post_finish[i].to_bits());
            eat(self.lost_proc_secs[i].to_bits());
            eat(u64::from(self.months_lost[i]));
            eat(self.completed_months[i]);
        }
        h
    }
}

/// Result of a batch (or naive) sweep.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-variant results, spec enumeration order.
    pub outs: BatchSoA,
    /// Grid shapes executed.
    pub shapes: usize,
    /// Shapes that qualified for a shared kernel head (checkpoint
    /// resume); the rest fell back to per-variant runs.
    pub heads: usize,
    /// Planning-memo statistics this sweep contributed (a delta when
    /// the caller shares a memo via [`run_batch_with`]).
    pub memo: MemoStats,
}

/// Deterministic aggregate of a sweep — what the service returns and
/// the CLI prints.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSummary {
    /// Variants executed.
    pub variants: u64,
    /// Variants that completed.
    pub completed: u64,
    /// Variants stranded.
    pub stranded: u64,
    /// Smallest completed makespan (0 when none completed).
    pub makespan_min: f64,
    /// Largest completed makespan (0 when none completed).
    pub makespan_max: f64,
    /// Mean completed makespan, index-order summation (0 when none).
    pub makespan_mean: f64,
    /// Total months lost across variants.
    pub months_lost_total: u64,
    /// Total crash losses, processor-seconds, index-order summation.
    pub lost_proc_secs_total: f64,
    /// [`BatchSoA::checksum`], hex — the bitwise-identity fingerprint.
    pub checksum: String,
}

impl BatchReport {
    /// Aggregates the sweep.
    #[must_use]
    pub fn summary(&self) -> SweepSummary {
        let outs = &self.outs;
        let mut completed = 0u64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut months_lost = 0u64;
        let mut lost = 0.0f64;
        for i in 0..outs.len() {
            if outs.completed[i] {
                completed += 1;
                let m = outs.makespan[i];
                if m < min {
                    min = m;
                }
                if m > max {
                    max = m;
                }
                sum += m;
            }
            months_lost += u64::from(outs.months_lost[i]);
            lost += outs.lost_proc_secs[i];
        }
        SweepSummary {
            variants: outs.len() as u64,
            completed,
            stranded: outs.len() as u64 - completed,
            makespan_min: if completed > 0 { min } else { 0.0 },
            makespan_max: max,
            makespan_mean: if completed > 0 {
                sum / completed as f64
            } else {
                0.0
            },
            months_lost_total: months_lost,
            lost_proc_secs_total: lost,
            checksum: format!("{:016x}", outs.checksum()),
        }
    }
}

thread_local! {
    static FAULTS: RefCell<Vec<(usize, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Runs the sweep with cross-variant sharing. Results are bitwise
/// [`run_naive`]'s (and the individual engine's) at any `pool` width.
pub fn run_batch(spec: &BatchSpec, pool: &Pool) -> Result<BatchReport, BatchError> {
    let mut memo = PlanMemo::new();
    run_sweep(spec, pool, true, &mut memo)
}

/// [`run_batch`] against a caller-owned planning memo, so the sweep
/// shares knapsack DP tables and makespan scans with other planning
/// work (the service daemon routes `VariantSweep` requests through
/// its `ClusterJoin` pricing memo). The report's [`BatchReport::memo`]
/// counters are the delta this sweep contributed.
pub fn run_batch_with(
    spec: &BatchSpec,
    pool: &Pool,
    memo: &mut PlanMemo,
) -> Result<BatchReport, BatchError> {
    run_sweep(spec, pool, true, memo)
}

/// Runs the same enumeration variant by variant with no sharing — the
/// baseline the batch engine is benchmarked against.
pub fn run_naive(spec: &BatchSpec, pool: &Pool) -> Result<BatchReport, BatchError> {
    let mut memo = PlanMemo::new();
    run_sweep(spec, pool, false, &mut memo)
}

fn run_sweep(
    spec: &BatchSpec,
    pool: &Pool,
    share: bool,
    memo: &mut PlanMemo,
) -> Result<BatchReport, BatchError> {
    let before = memo.stats();
    let shapes = expand_shapes(spec, memo)?;
    let per_shape = usize::try_from(spec.variants_per_shape).expect("variant count fits usize");
    let mut outs = BatchSoA::with_capacity(shapes.len() * per_shape);
    let mut heads = 0usize;
    for shape in &shapes {
        let head = if share {
            run_batch_head(shape.inst, &spec.table, &shape.grouping, &shape.config)
                .expect("expand_shapes validated the grouping")
        } else {
            None
        };
        if head.is_some() {
            heads += 1;
        }
        let head = head.as_deref();
        let rows = pool.par_map_indices(per_shape, |v| {
            FAULTS.with(|cell| {
                let buf = &mut *cell.borrow_mut();
                faults_for(spec, shape, v as u64, buf);
                let outcome = match head {
                    Some(h) => {
                        let (outcome, _) = run_batch_variant(
                            shape.inst,
                            &spec.table,
                            &shape.grouping,
                            &shape.config,
                            KernelOpts::default(),
                            h,
                            buf,
                        );
                        outcome
                    }
                    None => {
                        let plan = FaultPlan {
                            failures: buf.clone(),
                        };
                        let mut tracer = NullTracer;
                        let (outcome, _) = simulate_campaign_kernel(
                            shape.inst,
                            &spec.table,
                            &shape.grouping,
                            &shape.config,
                            &plan,
                            KernelOpts::default(),
                            &mut tracer,
                        )
                        .expect("expand_shapes validated the grouping");
                        outcome
                    }
                };
                VariantOut::of(&outcome, shape.inst)
            })
        });
        for row in rows {
            outs.push(row);
        }
    }
    let after = memo.stats();
    Ok(BatchReport {
        outs,
        shapes: shapes.len(),
        heads,
        memo: MemoStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            dp_builds: after.dp_builds - before.dp_builds,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> BatchSpec {
        let mut spec = BatchSpec::reference_mc(64, 7);
        spec.nss = vec![4];
        spec.nms = vec![40];
        spec.rs = vec![30, 31];
        spec.max_faults = 3;
        spec
    }

    #[test]
    fn batch_equals_naive_bitwise() {
        let spec = small_spec();
        let pool = Pool::serial();
        let batch = run_batch(&spec, &pool).unwrap();
        let naive = run_naive(&spec, &pool).unwrap();
        assert_eq!(batch.outs.len() as u64, spec.variant_count());
        assert_eq!(batch.heads, 2, "both fused shapes should get a head");
        assert_eq!(batch.outs.checksum(), naive.outs.checksum());
        for i in 0..batch.outs.len() {
            assert_eq!(batch.outs.at(i), naive.outs.at(i), "variant {i}");
        }
    }

    #[test]
    fn worker_count_is_bitwise_neutral() {
        let spec = small_spec();
        let serial = run_batch(&spec, &Pool::serial()).unwrap();
        for jobs in [2, 8] {
            let par = run_batch(&spec, &Pool::new(jobs)).unwrap();
            assert_eq!(par.outs.checksum(), serial.outs.checksum(), "jobs={jobs}");
        }
    }

    #[test]
    fn fractional_faults_take_the_heap_path_and_still_agree() {
        let mut spec = small_spec();
        spec.fault_resolution = 0.5;
        spec.variants_per_shape = 32;
        let pool = Pool::serial();
        let batch = run_batch(&spec, &pool).unwrap();
        let naive = run_naive(&spec, &pool).unwrap();
        assert_eq!(batch.outs.checksum(), naive.outs.checksum());
    }

    #[test]
    fn unfused_shapes_fall_back_without_heads() {
        let mut spec = small_spec();
        spec.granularities = vec![Granularity::Unfused];
        spec.variants_per_shape = 16;
        let pool = Pool::serial();
        let batch = run_batch(&spec, &pool).unwrap();
        let naive = run_naive(&spec, &pool).unwrap();
        assert_eq!(batch.heads, 0);
        assert_eq!(batch.outs.checksum(), naive.outs.checksum());
    }

    #[test]
    fn spec_parses_with_defaults_and_rejects_junk() {
        let v: Value = serde_json::from_str(
            r#"{"r": [30, 40], "ns": 4, "nm": 40, "variants": 100, "seed": 9,
                "policies": ["least-advanced", "round-robin"],
                "heuristic": "basic", "max_faults": 2}"#,
        )
        .unwrap();
        let spec = BatchSpec::from_json(&v).unwrap();
        assert_eq!(spec.shape_count(), 4);
        assert_eq!(spec.variant_count(), 400);
        assert_eq!(spec.heuristic, Heuristic::Basic);

        for bad in [
            r#"{"variants": 0}"#,
            r#"{"max_faults": 0}"#,
            r#"{"heuristic": "nope"}"#,
            r#"{"policies": []}"#,
            r#"{"fault_resolution": -1.0}"#,
            r#"[1, 2]"#,
        ] {
            let v: Value = serde_json::from_str(bad).unwrap();
            assert!(BatchSpec::from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn summary_aggregates_are_deterministic() {
        let spec = small_spec();
        let pool = Pool::serial();
        let a = run_batch(&spec, &pool).unwrap().summary();
        let b = run_batch(&spec, &Pool::new(4)).unwrap().summary();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.variants, spec.variant_count());
        assert!(a.completed > 0);
    }
}
