//! The generic discrete-event campaign engine: one loop, four configs.
//!
//! Historically `oa-sim` carried four hand-rolled event loops — the
//! recording executor, the unfused ablation, the failure replayer and
//! the per-cluster grid runner — each duplicating the same
//! least-advanced-first policy with its own waiting queue. This module
//! is the single loop they all delegate to, generic over the
//! orthogonal knobs of [`CampaignConfig`]:
//!
//! * **policy** — a [`ScenarioQueue`] object (least-advanced,
//!   round-robin, most-advanced) consulted at every assignment;
//! * **granularity** — fused one-shot posts (Figure 2) or the unfused
//!   `cof → emf → cd` chain of Figure 1;
//! * **recovery** — what a scenario crashed by a [`FaultPlan`] resumes
//!   from (monthly checkpoint or full restart);
//!
//! plus a [`Tracer`] sink for the full event story and the thread-local
//! scratch arenas that keep repeat runs allocation-free (the PR-3
//! discipline, now shared by every path instead of only the fused one).
//!
//! # Equivalence guarantees
//!
//! The refactor that introduced this engine is pinned by byte-identity:
//! with an empty fault plan the engine replays *exactly* the decision
//! sequence of the legacy executor (same floats, same record order,
//! same event stream), and the unfused chain reproduces the legacy
//! `estimate_unfused` bitwise. `tests/engine_equivalence.rs` and the
//! tracked `results/*.json` enforce this.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioQueue};
use oa_sched::time::Time;
use oa_trace::{EventKind, TraceEvent, Tracer};
use oa_workflow::fusion::FusedTask;
use oa_workflow::task::{
    TaskKind, CD_SECS, COF_SECS, EMF_SECS, FUSED_POST_SECS, FUSED_PRE_SECS, MIN_PROCS,
};

use crate::schedule::{ProcRange, Schedule, TaskRecord};

/// Post-chain step kinds at unfused granularity, in chain order.
const STEP_KINDS: [TaskKind; 3] = [TaskKind::Cof, TaskKind::Emf, TaskKind::Cd];

/// Aggregates of a completed campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRun {
    /// The full schedule, recorded only for fused runs with an empty
    /// fault plan (the one case where every task runs exactly once and
    /// the record set is a valid [`Schedule`]).
    pub schedule: Option<Schedule>,
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Last main-phase completion.
    pub main_finish: f64,
    /// Last post-chain completion.
    pub post_finish: f64,
    /// Processor-seconds of work destroyed by crashes.
    pub lost_proc_secs: f64,
    /// Months whose in-flight run was lost (re-executed later).
    pub months_lost: u32,
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignOutcome {
    /// The campaign completed.
    Completed(CampaignRun),
    /// Every group died with months still unscheduled.
    Stranded {
        /// Months completed before the grid went dark.
        completed_months: u64,
    },
}

impl CampaignOutcome {
    /// The completed run, if any.
    pub fn completed(&self) -> Option<&CampaignRun> {
        match self {
            CampaignOutcome::Completed(run) => Some(run),
            CampaignOutcome::Stranded { .. } => None,
        }
    }

    /// Makespan of a completed run (`None` when stranded).
    pub fn makespan(&self) -> Option<f64> {
        self.completed().map(|r| r.makespan)
    }
}

/// What one processed failure actually destroyed — the damage
/// assessment the trace layer reports as a `FailureDetect` event.
struct FailureImpact {
    /// The scenario whose in-flight month died, with the month it will
    /// resume from (`None` when the group was idle).
    victim: Option<(u32, u32)>,
    /// Processor-seconds destroyed.
    lost_proc_secs: f64,
    /// Months of progress destroyed.
    months_lost: u32,
}

/// Emits the inject/detect/recover event triple for one processed
/// failure (inject always; detect and recover only if the kill landed).
fn emit_failure<T: Tracer>(tracer: &mut T, failure: (usize, f64), impact: Option<&FailureImpact>) {
    let (g, tf) = failure;
    tracer.record(TraceEvent::at(
        tf,
        EventKind::FailureInject { group: g as u32 },
    ));
    let Some(im) = impact else { return };
    tracer.record(TraceEvent::at(
        tf,
        EventKind::FailureDetect {
            group: g as u32,
            victim: im.victim.map(|(s, _)| s),
            lost_proc_secs: im.lost_proc_secs,
            months_lost: im.months_lost,
        },
    ));
    if let Some((s, m)) = im.victim {
        tracer.record(TraceEvent::at(
            tf,
            EventKind::Recover {
                scenario: s,
                resume_month: m,
            },
        ));
    }
}

/// One ready post-chain step, min-heap keyed: `(ready instant, step
/// index within the month's chain, insertion sequence, scenario,
/// month)`.
type ChainKey = Reverse<(Time, u8, u64, u32, u32)>;

/// Reusable event-loop state: the sweeps execute thousands of
/// campaigns back to back, and clearing these collections (capacity
/// preserved) makes each run allocation-free apart from the returned
/// record arena. Thread-local, so every `oa-par` worker owns its own.
struct Scratch {
    /// Per-group main duration.
    durs: Vec<f64>,
    /// First processor id of each group.
    bases: Vec<u32>,
    /// Busy groups: (finish time, group). Min-heap via `Reverse`.
    busy: BinaryHeap<Reverse<(Time, usize)>>,
    /// Per-group (scenario, start time) while running.
    running: Vec<Option<(u32, f64)>>,
    /// Waiting scenarios under the configured policy.
    waiting: ScenarioQueue,
    /// Months completed per scenario.
    months_done: Vec<u32>,
    /// Idle groups, sorted ascending by (size, index).
    idle: Vec<usize>,
    /// `dead[g]`: group `g` crashed and never returns.
    dead: Vec<bool>,
    /// Ready post work. The insertion counter `seq` makes heap order
    /// deterministic and — because main completions are chronological
    /// — makes the fused drain exactly the legacy insertion-order
    /// FIFO.
    chain: BinaryHeap<ChainKey>,
    /// Post-processor pool: (availability, processor id).
    post_pool: BinaryHeap<Reverse<(Time, u32)>>,
}

impl Default for Scratch {
    fn default() -> Self {
        Self {
            durs: Vec::new(),
            bases: Vec::new(),
            busy: BinaryHeap::new(),
            running: Vec::new(),
            waiting: ScenarioQueue::Least(BinaryHeap::new()),
            months_done: Vec::new(),
            idle: Vec::new(),
            dead: Vec::new(),
            chain: BinaryHeap::new(),
            post_pool: BinaryHeap::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs one campaign under `config`, injecting the failures of `plan`,
/// streaming the full event story into `tracer`.
///
/// This is the single event loop behind `execute_traced`,
/// `estimate_unfused`, `estimate_with_failures_traced` and the grid
/// runners; combinations none of the legacy entry points offered
/// (unfused + tracing, unfused + policy ablations, faults at unfused
/// granularity) are reached by passing the corresponding
/// [`CampaignConfig`] directly.
///
/// # Panics
///
/// Panics if the plan targets a group outside the grouping or gives a
/// non-finite/negative failure time (same contract as the legacy
/// failure executor).
pub fn simulate_campaign<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<CampaignOutcome, GroupingError> {
    grouping.validate(inst)?;
    for &(g, t) in &plan.failures {
        assert!(
            g < grouping.group_count(),
            "failure targets group {g}, grouping has {}",
            grouping.group_count()
        );
        assert!(
            t.is_finite() && t >= 0.0,
            "failure time must be a finite non-negative instant"
        );
    }
    SCRATCH.with(|cell| {
        Ok(run(
            inst,
            table,
            grouping,
            config,
            plan,
            tracer,
            &mut cell.borrow_mut(),
        ))
    })
}

/// The event loop proper, on pre-validated input and reusable state.
#[allow(clippy::too_many_lines)]
fn run<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
    tracer: &mut T,
    scratch: &mut Scratch,
) -> CampaignOutcome {
    let sizes: &[u32] = grouping.groups();
    // The `T[G]` row, indexed by `G - 4` — one array load per group
    // instead of a spec lookup per `main_secs` call.
    let trow = table.main_array();
    let tp = table.post_secs();
    let nm = inst.nm;

    // Post model: one fused post step, or the Figure 1 chain with the
    // constants rescaled by the table's post/180 cluster-speed ratio.
    let (steps, pre, last_step): ([f64; 3], f64, u8) = match config.granularity {
        Granularity::Fused => ([tp, 0.0, 0.0], 0.0, 0),
        Granularity::Unfused => {
            let speed = tp / FUSED_POST_SECS;
            (
                [COF_SECS * speed, EMF_SECS * speed, CD_SECS * speed],
                FUSED_PRE_SECS * speed,
                2,
            )
        }
    };

    let Scratch {
        durs,
        bases,
        busy,
        running,
        waiting,
        months_done,
        idle,
        dead,
        chain,
        post_pool,
    } = scratch;
    durs.clear();
    match config.granularity {
        Granularity::Fused => durs.extend(sizes.iter().map(|&g| trow[(g - MIN_PROCS) as usize])),
        // The table's main duration includes the pre tasks already;
        // subtract the scaled pre and add it back so the group span
        // equals the fused duration *bitwise*.
        Granularity::Unfused => durs.extend(
            sizes
                .iter()
                .map(|&g| (trow[(g - MIN_PROCS) as usize] - pre) + pre),
        ),
    }
    let durs: &[f64] = durs;

    // Processor layout: groups first (descending sizes, canonical),
    // then the dedicated post pool; any remainder stays idle forever.
    bases.clear();
    let mut acc = 0u32;
    for &g in sizes {
        bases.push(acc);
        acc += g;
    }
    let bases: &[u32] = bases;
    let post_base = acc;

    // Failures in time order; ties keep plan order (stable sort).
    let mut failures = plan.failures.clone();
    failures.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut next_failure = 0usize;

    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            0.0,
            EventKind::CampaignBegin {
                ns: inst.ns,
                nm: inst.nm,
                r: inst.r,
                groups: sizes.to_vec(),
                post_procs: grouping.post_procs,
            },
        ));
    }

    // Records become a `Schedule` only when every task provably runs
    // exactly once: fused granularity, nothing to inject. The arena is
    // then the one allocation of the run, pre-sized to its exact final
    // length.
    let record = config.granularity == Granularity::Fused && failures.is_empty();
    let mut records: Vec<TaskRecord> = if record {
        Vec::with_capacity(inst.nbtasks() as usize * 2)
    } else {
        Vec::new()
    };

    busy.clear();
    busy.reserve(sizes.len());
    running.clear();
    running.resize(sizes.len(), None); // (scenario, start)
    waiting.reset(config.policy, inst.ns);
    months_done.clear();
    months_done.resize(inst.ns as usize, 0);
    let mut unfinished = inst.ns as usize;
    idle.clear();
    idle.extend(0..sizes.len());
    idle.sort_unstable_by_key(|&g| (sizes[g], g));
    let mut alive = sizes.len();
    dead.clear();
    dead.resize(sizes.len(), false);

    chain.clear();
    chain.reserve(inst.nbtasks() as usize);
    let mut seq: u64 = 0;
    post_pool.clear();
    post_pool.reserve(inst.r as usize);
    for p in 0..grouping.post_procs {
        post_pool.push(Reverse((Time(0.0), post_base + p)));
    }

    let mut lost_proc_secs = 0.0f64;
    let mut months_lost = 0u32;

    // One assignment + disband pass; mirrors `oa_sched::estimate`.
    macro_rules! assign {
        ($now:expr) => {{
            let now: f64 = $now;
            while !idle.is_empty() && !waiting.is_empty() {
                let g = idle.pop().expect("non-empty"); // largest idle group
                let s = waiting.pop().expect("non-empty");
                running[g] = Some((s, now));
                busy.push(Reverse((Time(now + durs[g]), g)));
                if tracer.enabled() {
                    let task = FusedTask::main(s, months_done[s as usize]);
                    tracer.record(TraceEvent::at(
                        now,
                        EventKind::TaskDispatch {
                            task,
                            group: Some(g as u32),
                            queue_depth: waiting.len() as u32,
                        },
                    ));
                    tracer.record(TraceEvent::at(
                        now,
                        EventKind::TaskStart {
                            task,
                            first_proc: bases[g],
                            procs: sizes[g],
                            group: Some(g as u32),
                        },
                    ));
                }
            }
            while !idle.is_empty() && alive > unfinished {
                let g = idle.remove(0); // smallest idle group disbands
                alive -= 1;
                for p in 0..sizes[g] {
                    post_pool.push(Reverse((Time(now), bases[g] + p)));
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        now,
                        EventKind::GroupDisband {
                            group: g as u32,
                            procs: sizes[g],
                        },
                    ));
                }
            }
        }};
    }

    // Applies one `(group, time)` failure under the configured
    // recovery, charging destroyed work to the loss accumulators.
    // Double kills and failures of already-disbanded groups are no-ops
    // (`None`); a kill that lands returns its damage assessment.
    macro_rules! process_failure {
        ($g:expr, $tf:expr) => {{
            let (g, tf): (usize, f64) = ($g, $tf);
            if dead[g] {
                None // double kill: no-op
            } else if let Some((s, started)) = running[g].take() {
                // In-flight month lost.
                let lost = (tf - started).max(0.0) * sizes[g] as f64;
                lost_proc_secs += lost;
                months_lost += 1;
                if config.recovery == Recovery::RestartScenario {
                    months_done[s as usize] = 0;
                }
                waiting.push(months_done[s as usize], s);
                dead[g] = true;
                alive -= 1;
                Some(FailureImpact {
                    victim: Some((s, months_done[s as usize])),
                    lost_proc_secs: lost,
                    months_lost: 1,
                })
            } else {
                // A group that already disbanded is not in `idle` nor
                // `running`; its processors belong to the post pool now
                // — ignore (documented in `failures`).
                let key = (sizes[g], g);
                let pos = match idle.binary_search_by_key(&key, |&x| (sizes[x], x)) {
                    Ok(p) | Err(p) => p,
                };
                if pos < idle.len() && idle[pos] == g {
                    idle.remove(pos);
                    dead[g] = true;
                    alive -= 1;
                    Some(FailureImpact {
                        victim: None,
                        lost_proc_secs: 0.0,
                        months_lost: 0,
                    })
                } else {
                    None
                }
            }
        }};
    }

    macro_rules! stranded {
        () => {{
            let completed: u64 = months_done.iter().map(|&m| u64::from(m)).sum();
            return CampaignOutcome::Stranded {
                completed_months: completed,
            };
        }};
    }

    assign!(0.0);

    let mut main_finish = 0.0f64;
    loop {
        // Choose the next event: completion or failure.
        let completion_time = busy.peek().map(|Reverse((Time(t), _))| *t);
        let failure_time = failures.get(next_failure).map(|&(_, t)| t);
        match (completion_time, failure_time) {
            (None, None) => break,
            (Some(tc), Some(tf)) if tf <= tc => {
                let failure = failures[next_failure];
                let impact = process_failure!(failure.0, failure.1);
                if tracer.enabled() {
                    emit_failure(tracer, failure, impact.as_ref());
                }
                next_failure += 1;
                assign!(tf);
            }
            (None, Some(tf)) => {
                let failure = failures[next_failure];
                let impact = process_failure!(failure.0, failure.1);
                if tracer.enabled() {
                    emit_failure(tracer, failure, impact.as_ref());
                }
                next_failure += 1;
                if alive == 0 && unfinished > 0 {
                    // Nothing can run the remaining months.
                    stranded!();
                }
                assign!(tf);
            }
            (Some(_), _) => {
                let Reverse((Time(t), g)) = busy.pop().expect("peeked");
                if dead[g] {
                    continue; // stale completion of a crashed group
                }
                let (s, started) = running[g].take().expect("busy group has a scenario");
                let month = months_done[s as usize];
                months_done[s as usize] += 1;
                main_finish = t;
                if record {
                    records.push(TaskRecord {
                        task: FusedTask::main(s, month),
                        procs: ProcRange {
                            first: bases[g],
                            count: sizes[g],
                        },
                        start: started,
                        end: t,
                        group: Some(g as u32),
                    });
                }
                chain.push(Reverse((Time(t), 0, seq, s, month)));
                seq += 1;
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        t,
                        EventKind::TaskFinish {
                            task: FusedTask::main(s, month),
                            first_proc: bases[g],
                            procs: sizes[g],
                            group: Some(g as u32),
                            secs: t - started,
                        },
                    ));
                }
                if months_done[s as usize] == nm {
                    unfinished -= 1;
                } else {
                    waiting.push(months_done[s as usize], s);
                }
                let pos = idle
                    .binary_search_by_key(&(sizes[g], g), |&x| (sizes[x], x))
                    .unwrap_err();
                idle.insert(pos, g);
                assign!(t);
            }
        }
        if unfinished > 0 && alive == 0 && busy.is_empty() {
            stranded!();
        }
    }

    if unfinished > 0 {
        stranded!();
    }

    // Posts: the ready chain drains through the pool, earliest-ready
    // first (FIFO for fused — completions are chronological), each
    // taking the earliest-available processor. If the pool is empty
    // every group died without disbanding: no post capacity exists.
    if post_pool.is_empty() {
        stranded!();
    }
    let mut post_finish = 0.0f64;
    while let Some(Reverse((Time(ready), step, _, s, month))) = chain.pop() {
        let Reverse((Time(avail), proc)) = post_pool.pop().expect("pool non-empty");
        let start = if avail > ready { avail } else { ready };
        let end = start + steps[step as usize];
        post_pool.push(Reverse((Time(end), proc)));
        let task = match config.granularity {
            Granularity::Fused => FusedTask::post(s, month),
            Granularity::Unfused => FusedTask {
                scenario: s,
                month,
                kind: STEP_KINDS[step as usize],
            },
        };
        if record {
            records.push(TaskRecord {
                task,
                procs: ProcRange::single(proc),
                start,
                end,
                group: None,
            });
        }
        if tracer.enabled() {
            tracer.record(TraceEvent::at(
                start,
                EventKind::TaskStart {
                    task,
                    first_proc: proc,
                    procs: 1,
                    group: None,
                },
            ));
            tracer.record(TraceEvent::at(
                end,
                EventKind::TaskFinish {
                    task,
                    first_proc: proc,
                    procs: 1,
                    group: None,
                    secs: end - start,
                },
            ));
        }
        if step < last_step {
            chain.push(Reverse((Time(end), step + 1, seq, s, month)));
            seq += 1;
        } else {
            post_finish = post_finish.max(end);
        }
    }

    let makespan = main_finish.max(post_finish);
    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            makespan,
            EventKind::CampaignEnd { makespan },
        ));
    }

    let schedule = if record {
        let schedule = Schedule {
            instance: inst,
            records,
            makespan,
        };
        // In debug builds, run the full schedule-layer rule set (OA008–
        // OA015) over every schedule the engine produces: a cheap,
        // always-on oracle that any future change to the event loop
        // still respects multiplicity, dependences and processor
        // exclusivity.
        #[cfg(debug_assertions)]
        {
            let report = schedule.analyze();
            debug_assert!(
                !report.has_errors(),
                "engine produced an invalid schedule:\n{}",
                report.render_text()
            );
        }
        Some(schedule)
    } else {
        None
    };

    CampaignOutcome::Completed(CampaignRun {
        schedule,
        makespan,
        main_finish,
        post_finish,
        lost_proc_secs,
        months_lost,
    })
}
