//! The generic discrete-event campaign engine: one loop, four configs.
//!
//! Historically `oa-sim` carried four hand-rolled event loops — the
//! recording executor, the unfused ablation, the failure replayer and
//! the per-cluster grid runner — each duplicating the same
//! least-advanced-first policy with its own waiting queue. This module
//! is the single loop they all delegate to, generic over the
//! orthogonal knobs of [`CampaignConfig`]:
//!
//! * **policy** — a [`ScenarioQueue`] object (least-advanced,
//!   round-robin, most-advanced) consulted at every assignment;
//! * **granularity** — fused one-shot posts (Figure 2) or the unfused
//!   `cof → emf → cd` chain of Figure 1;
//! * **recovery** — what a scenario crashed by a [`FaultPlan`] resumes
//!   from (monthly checkpoint or full restart);
//!
//! plus a [`Tracer`] sink for the full event story and the thread-local
//! scratch arenas that keep repeat runs allocation-free (the PR-3
//! discipline, now shared by every path instead of only the fused one).
//!
//! # The simulation kernel
//!
//! On top of the generic loop sits a two-part kernel optimisation,
//! controlled by [`KernelOpts`] and reported by [`KernelReport`]:
//!
//! 1. **Integer-time calendar queue.** When every task duration (and
//!    every failure instant) is an exact integral second
//!    ([`oa_sched::time::exact_ticks`]), every clock value in the run
//!    is an exactly-represented integer, and the busy set moves from a
//!    `BinaryHeap` of [`TimeKey`]s onto the O(1) bucket ring of
//!    [`crate::calendar::CalendarQueue`]. Pop order is identical by
//!    construction (ascending tick, then ascending group), so the swap
//!    cannot change one bit of output.
//! 2. **Steady-state fast-forward.** A fault-free campaign repeats the
//!    same event pattern every cycle once the pipeline fills. The
//!    detector in the private `ffwd` module spots the recurrence (same
//!    busy/running/idle/waiting shape modulo a constant time offset and
//!    a uniform month shift), and the engine then *replays* the cycle's
//!    journal arithmetically — records, chain entries and trace events
//!    stamped from the template with `t + j·D` — instead of
//!    re-simulating it. The fused post drain runs the same trick over
//!    the processor pool. Both fall back to event-by-event execution
//!    around faults, cluster transitions and the campaign head/tail,
//!    and both are sound only in integer-time mode, where the stamped
//!    additions are exact.
//!
//! # Equivalence guarantees
//!
//! The refactor that introduced this engine is pinned by byte-identity:
//! with an empty fault plan the engine replays *exactly* the decision
//! sequence of the legacy executor (same floats, same record order,
//! same event stream), and the unfused chain reproduces the legacy
//! `estimate_unfused` bitwise. The kernel keeps the same contract in
//! both directions: fast-forwarded runs are bitwise identical to
//! event-by-event runs. `tests/engine_equivalence.rs`,
//! `tests/kernel_equivalence.rs` and the tracked `results/*.json`
//! enforce this.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::grouping::{Grouping, GroupingError};
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioQueue};
use oa_sched::time::{exact_ticks, is_tick_exact, time_key, Time, TimeKey, MAX_EXACT_SECS};
use oa_trace::{EventKind, TraceEvent, Tracer};
use oa_workflow::fusion::FusedTask;
use oa_workflow::task::{
    TaskKind, CD_SECS, COF_SECS, EMF_SECS, FUSED_POST_SECS, FUSED_PRE_SECS, MIN_PROCS,
};

use crate::calendar::CalendarQueue;
use crate::ffwd::{
    pool_match, pool_snapshot, Detector, LogEv, PoolSnap, PostPeriodic, SnapView, MAX_POOL_SNAPS,
};
use crate::schedule::{ProcRange, Schedule, TaskRecord};

pub use crate::ffwd::{KernelOpts, KernelReport};

/// Post-chain step kinds at unfused granularity, in chain order.
const STEP_KINDS: [TaskKind; 3] = [TaskKind::Cof, TaskKind::Emf, TaskKind::Cd];

/// The post model for one granularity: step durations, the pre rescale
/// folded into the group span, and the index of the last chain step.
/// Fused runs one `tp` step; unfused runs the Figure 1 chain with the
/// constants rescaled by the table's post/180 cluster-speed ratio.
fn post_model(granularity: Granularity, tp: f64) -> ([f64; 3], f64, u8) {
    match granularity {
        Granularity::Fused => ([tp, 0.0, 0.0], 0.0, 0),
        Granularity::Unfused => {
            let speed = tp / FUSED_POST_SECS;
            (
                [COF_SECS * speed, EMF_SECS * speed, CD_SECS * speed],
                FUSED_PRE_SECS * speed,
                2,
            )
        }
    }
}

/// Appends the per-group main durations for `sizes` onto `durs`,
/// exactly as the event loop will add them to its clock. `trow` is
/// `table.main_array()`. At unfused granularity the table's duration
/// includes the pre tasks already; the scaled pre is subtracted and
/// added back so the group span equals the fused duration *bitwise*.
fn push_durs(durs: &mut Vec<f64>, sizes: &[u32], trow: &[f64], granularity: Granularity, pre: f64) {
    match granularity {
        Granularity::Fused => durs.extend(sizes.iter().map(|&g| trow[(g - MIN_PROCS) as usize])),
        Granularity::Unfused => durs.extend(
            sizes
                .iter()
                .map(|&g| (trow[(g - MIN_PROCS) as usize] - pre) + pre),
        ),
    }
}

/// The integer-time gate: whether a run over `durs` and `failures`
/// wants the tick representation, and the largest duration in ticks
/// (the calendar ring's required span). Integer time is sound when
/// every clock value the run can produce is an exactly-represented
/// integer: integral task durations, integral failure instants, and a
/// total horizon with comfortable headroom below 2^53.
fn kernel_gate(
    durs: &[f64],
    failures: &[(usize, f64)],
    inst: Instance,
    steps_sum: f64,
    requested: bool,
) -> (bool, u64) {
    let mut max_dur_ticks = 0u64;
    let mut durs_ticky = true;
    for &d in durs {
        match exact_ticks(d) {
            Some(ticks) if ticks > 0 => max_dur_ticks = max_dur_ticks.max(ticks),
            _ => {
                durs_ticky = false;
                break;
            }
        }
    }
    let faults_ticky = failures.iter().all(|&(_, t)| is_tick_exact(t));
    let max_fault = failures.iter().fold(0.0f64, |a, &(_, t)| a.max(t));
    // Loose serial-work bound on the final clock value; restarts can
    // re-execute at most one campaign's worth of months per failure.
    let horizon = max_fault
        + (f64::from(inst.nm) + 1.0)
            * (f64::from(inst.ns) + failures.len() as f64 + 1.0)
            * (max_dur_ticks as f64 + steps_sum + 1.0);
    let want_ticks = requested && durs_ticky && faults_ticky && horizon < MAX_EXACT_SECS / 2.0;
    (want_ticks, max_dur_ticks)
}

/// Whether a campaign qualifies for the integer-time kernel — the
/// engine's gate, decided without running the event loop. This is the
/// value [`KernelReport::integer_time`] will report whenever `opts`
/// requests the kernel (calendar or fast-forward on); with neither
/// knob set the engine stays on the heap regardless of eligibility.
///
/// `oa-analyze`'s static certifier mirrors this decision independently
/// (it cannot depend on this crate); rule `CT002` cross-checks the two
/// against each other and against the report of a real run.
#[must_use]
pub fn kernel_eligibility(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
) -> bool {
    let (steps, pre, _) = post_model(config.granularity, table.post_secs());
    let mut durs = Vec::with_capacity(grouping.group_count());
    push_durs(
        &mut durs,
        grouping.groups(),
        table.main_array(),
        config.granularity,
        pre,
    );
    let (want_ticks, max_dur_ticks) =
        kernel_gate(&durs, &plan.failures, inst, steps.iter().sum(), true);
    want_ticks && CalendarQueue::<u32>::ring_fits(max_dur_ticks)
}

/// Aggregates of a completed campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRun {
    /// The full schedule, recorded only for fused runs with an empty
    /// fault plan (the one case where every task runs exactly once and
    /// the record set is a valid [`Schedule`]).
    pub schedule: Option<Schedule>,
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Last main-phase completion.
    pub main_finish: f64,
    /// Last post-chain completion.
    pub post_finish: f64,
    /// Processor-seconds of work destroyed by crashes.
    pub lost_proc_secs: f64,
    /// Months whose in-flight run was lost (re-executed later).
    pub months_lost: u32,
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignOutcome {
    /// The campaign completed.
    Completed(CampaignRun),
    /// Every group died with months still unscheduled.
    Stranded {
        /// Months completed before the grid went dark.
        completed_months: u64,
    },
}

impl CampaignOutcome {
    /// The completed run, if any.
    pub fn completed(&self) -> Option<&CampaignRun> {
        match self {
            CampaignOutcome::Completed(run) => Some(run),
            CampaignOutcome::Stranded { .. } => None,
        }
    }

    /// Makespan of a completed run (`None` when stranded).
    pub fn makespan(&self) -> Option<f64> {
        self.completed().map(|r| r.makespan)
    }
}

/// What one processed failure actually destroyed — the damage
/// assessment the trace layer reports as a `FailureDetect` event.
struct FailureImpact {
    /// The scenario whose in-flight month died, with the month it will
    /// resume from (`None` when the group was idle).
    victim: Option<(u32, u32)>,
    /// Processor-seconds destroyed.
    lost_proc_secs: f64,
    /// Months of progress destroyed.
    months_lost: u32,
}

/// Emits the inject/detect/recover event triple for one processed
/// failure (inject always; detect and recover only if the kill landed).
fn emit_failure<T: Tracer>(tracer: &mut T, failure: (usize, f64), impact: Option<&FailureImpact>) {
    let (g, tf) = failure;
    tracer.record(TraceEvent::at(
        tf,
        EventKind::FailureInject { group: g as u32 },
    ));
    let Some(im) = impact else { return };
    tracer.record(TraceEvent::at(
        tf,
        EventKind::FailureDetect {
            group: g as u32,
            victim: im.victim.map(|(s, _)| s),
            lost_proc_secs: im.lost_proc_secs,
            months_lost: im.months_lost,
        },
    ));
    if let Some((s, m)) = im.victim {
        tracer.record(TraceEvent::at(
            tf,
            EventKind::Recover {
                scenario: s,
                resume_month: m,
            },
        ));
    }
}

/// One ready post-chain step at unfused granularity, min-heap keyed:
/// the ready instant, then `(step index within the month's chain,
/// insertion sequence, scenario, month)` as the deterministic
/// tie-break.
type ChainKey = TimeKey<(u8, u64, u32, u32)>;

/// The busy set — `(finish time, group)` in pop order — in either of
/// its two representations. The calendar queue is used whenever the
/// run qualifies for integer time; the pop sequence is identical
/// either way (unique group payloads, ascending tie-break).
enum Busy<'a> {
    /// `f64` binary heap: the always-correct fallback.
    Heap(&'a mut BinaryHeap<TimeKey<usize>>),
    /// Integer-tick bucket ring.
    Cal(&'a mut CalendarQueue<usize>),
}

impl Busy<'_> {
    fn push(&mut self, t: f64, g: usize) {
        match self {
            Busy::Heap(h) => h.push(time_key(t, g)),
            Busy::Cal(c) => {
                debug_assert!(t >= 0.0 && t.fract() == 0.0, "non-integral tick {t}");
                c.push(t as u64, g);
            }
        }
    }

    fn peek_time(&mut self) -> Option<f64> {
        match self {
            Busy::Heap(h) => h.peek().map(|Reverse((Time(t), _))| *t),
            Busy::Cal(c) => c.peek().map(|(t, _)| t as f64),
        }
    }

    fn pop(&mut self) -> Option<(f64, usize)> {
        match self {
            Busy::Heap(h) => h.pop().map(|Reverse((Time(t), g))| (t, g)),
            Busy::Cal(c) => c.pop().map(|(t, g)| (t as f64, g)),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Busy::Heap(h) => h.is_empty(),
            Busy::Cal(c) => c.is_empty(),
        }
    }

    /// Keeps the calendar's push window in step with simulated time
    /// when an event other than a pop advances the clock.
    fn advance_to(&mut self, now: f64) {
        if let Busy::Cal(c) = self {
            debug_assert!(now >= 0.0 && now.fract() == 0.0, "non-integral tick {now}");
            c.advance_to(now as u64);
        }
    }
}

/// The ready post work, in the representation its pop order allows.
/// Fused main completions are chronological and the legacy heap key
/// broke ties by insertion sequence, so the fused drain is exactly a
/// FIFO — a ring buffer replaces the heap bitwise-identically. The
/// unfused chain re-enters steps at out-of-order ready times and keeps
/// the heap.
enum Chain<'a> {
    /// Fused: `(finish time, scenario, month)` in push order.
    Fifo(&'a mut VecDeque<(f64, u32, u32)>),
    /// Unfused: ready steps keyed for earliest-ready-first.
    Heap(&'a mut BinaryHeap<ChainKey>),
}

impl Chain<'_> {
    fn len(&self) -> usize {
        match self {
            Chain::Fifo(f) => f.len(),
            Chain::Heap(h) => h.len(),
        }
    }
}

/// The fused drain's view of the completion chain: an optional
/// borrowed prefix (the shared head chain of a batch resume) followed
/// by this run's own completions. Indexing is chain-absolute, so the
/// fast-forward bookkeeping (`PostPeriodic::start_idx`, template
/// windows) is oblivious to where the prefix ends.
struct Entries<'a> {
    prefix: &'a [(f64, u32, u32)],
    tail: &'a [(f64, u32, u32)],
}

impl Entries<'_> {
    fn len(&self) -> usize {
        self.prefix.len() + self.tail.len()
    }

    #[inline]
    fn at(&self, i: usize) -> (f64, u32, u32) {
        if i < self.prefix.len() {
            self.prefix[i]
        } else {
            self.tail[i - self.prefix.len()]
        }
    }
}

/// One resumable engine state, captured at an `NS`-completion boundary
/// of a fault-free head run (index 0 is the post-first-assignment
/// state at `t = 0`). Every collection is stored in its canonical
/// (sorted / pop-order) form; pop order is a pure function of content
/// for each container involved, so pushing the content back rebuilds
/// an indistinguishable queue.
#[derive(Debug, Clone, Default)]
pub(crate) struct Checkpoint {
    /// Instant of the boundary (the `completions`-th main finish; 0 at
    /// index 0).
    t: f64,
    /// `main_finish` as of the boundary (equals `t` except at index 0).
    main_finish: f64,
    /// Main completions so far.
    completions: u64,
    /// Busy groups as absolute `(finish tick, group)`, ascending.
    busy: Vec<(u64, u32)>,
    /// Per-group `(scenario, start)` while running.
    running: Vec<Option<(u32, f64)>>,
    /// Months completed per scenario.
    months_done: Vec<u32>,
    /// Idle groups, ascending by `(size, index)`.
    idle: Vec<u32>,
    /// Waiting scenario ids in the queue's canonical order.
    waiting: Vec<u32>,
    /// Post pool as `(availability, processor)`, ascending.
    pool: Vec<(f64, u32)>,
    /// Groups not yet disbanded or dead.
    alive: usize,
    /// Scenarios with months still to run.
    unfinished: usize,
}

/// Post-drain state at the same boundary as its [`Checkpoint`]: what
/// the head's drain looked like after consuming exactly the chain
/// prefix up to the boundary. A resumed variant may adopt this state —
/// skipping the prefix drain entirely — iff `valid` holds and every
/// variant-side pool entry below `post_base` (group disbands, which
/// differ after the fault) is strictly later than `maxpop`, so none of
/// them could have been popped inside the prefix.
#[derive(Debug, Clone, Default)]
pub(crate) struct DrainCk {
    /// No processor below `post_base` was popped within the prefix.
    valid: bool,
    /// Largest availability popped within the prefix.
    maxpop: f64,
    /// `post_finish` after the prefix.
    post_finish: f64,
    /// Pool entries at ids ≥ `post_base` after the prefix, ascending.
    pool: Vec<(f64, u32)>,
}

/// Everything a fault-free head run captures for later resumes: the
/// per-boundary checkpoints (main phase and drain), the full completion
/// chain, and the head's own outcome (reused verbatim for fault-free
/// variants).
#[derive(Debug, Default)]
pub(crate) struct BatchHead {
    checkpoints: Vec<Checkpoint>,
    drain_cks: Vec<DrainCk>,
    chain: Vec<(f64, u32, u32)>,
    /// The head's own result, filled by [`run_batch_head`].
    pub outcome: Option<(CampaignOutcome, KernelReport)>,
}

impl BatchHead {
    /// Index of the last checkpoint strictly before `t`, i.e. the
    /// furthest state a variant whose first fault hits at `t` can adopt
    /// unchanged. Strictness matters: a checkpoint taken *at* the
    /// fault instant already contains completions the faulted run
    /// handles after the fault. The `t = 0` checkpoint is the one
    /// exception — it precedes the event loop entirely, so a fault at
    /// `t = 0` resumes from it (the saturation below).
    pub fn checkpoint_before(&self, t: f64) -> usize {
        self.checkpoints
            .partition_point(|ck| ck.t < t)
            .saturating_sub(1)
    }
}

/// How one `run` call participates in cross-variant batching.
pub(crate) enum Batch<'a> {
    /// Plain single run.
    Off,
    /// Fault-free head run: capture checkpoints into the given head.
    /// Requires fused granularity, integer time and fast-forward off
    /// (every boundary must be visited to be captured).
    Capture(&'a mut BatchHead),
    /// Variant run: restore the `ck`-th checkpoint of `head` and
    /// simulate onward under `failures` (pre-sorted by time, ties in
    /// plan order — the order `run` itself would produce).
    Resume {
        /// The captured head to resume from.
        head: &'a BatchHead,
        /// Checkpoint index, from [`BatchHead::checkpoint_before`].
        ck: usize,
        /// The variant's fault plan, sorted.
        failures: &'a [(usize, f64)],
    },
}

/// Reusable event-loop state: the sweeps execute thousands of
/// campaigns back to back, and clearing these collections (capacity
/// preserved) makes each run allocation-free apart from the returned
/// record arena and the bounded buffers of the fast-forward detector.
/// Thread-local, so every `oa-par` worker owns its own.
struct Scratch {
    /// Per-group main duration.
    durs: Vec<f64>,
    /// First processor id of each group.
    bases: Vec<u32>,
    /// Busy groups, heap representation.
    busy_heap: BinaryHeap<TimeKey<usize>>,
    /// Busy groups, integer-tick representation.
    busy_cal: CalendarQueue<usize>,
    /// Per-group (scenario, start time) while running.
    running: Vec<Option<(u32, f64)>>,
    /// Waiting scenarios under the configured policy.
    waiting: ScenarioQueue,
    /// Months completed per scenario.
    months_done: Vec<u32>,
    /// Idle groups, sorted ascending by (size, index).
    idle: Vec<usize>,
    /// `dead[g]`: group `g` crashed and never returns.
    dead: Vec<bool>,
    /// Ready post work, unfused representation. The insertion counter
    /// `seq` makes heap order deterministic.
    chain_heap: BinaryHeap<ChainKey>,
    /// Ready post work, fused representation (push order == pop order).
    chain_fifo: VecDeque<(f64, u32, u32)>,
    /// Post-processor pool: (availability, processor id).
    post_pool: BinaryHeap<TimeKey<u32>>,
    /// Steady-state cycle detector (snapshots + event journal).
    det: Detector,
    /// Snapshot build buffer: busy as (tick offset, group).
    snap_busy: Vec<(u64, u32)>,
    /// Snapshot build buffer: running as (group, scenario, age ticks).
    snap_running: Vec<(u32, u32, u64)>,
    /// Snapshot build buffer: idle groups.
    snap_idle: Vec<u32>,
    /// Snapshot build buffer: waiting scenario ids, canonical order.
    snap_wait: Vec<u32>,
    /// Waiting-queue canonical content buffer.
    wait_buf: Vec<(u32, u32)>,
    /// Calendar drain/rebuild buffer (snapshots and cycle shifts).
    cal_buf: Vec<(u64, usize)>,
    /// Post-drain boundary snapshots of the pool shape.
    pool_snaps: Vec<PoolSnap>,
    /// Pool snapshot / rebuild sort buffer.
    pool_buf: Vec<(f64, u32)>,
    /// Post-drain replay template: (processor, start, end) per entry
    /// of the periodic chain region.
    tmpl: Vec<(u32, f64, f64)>,
    /// Failure sort buffer: the plan in time order, reused run to run.
    fail_buf: Vec<(usize, f64)>,
}

impl Default for Scratch {
    fn default() -> Self {
        Self {
            durs: Vec::new(),
            bases: Vec::new(),
            busy_heap: BinaryHeap::new(),
            busy_cal: CalendarQueue::new(),
            running: Vec::new(),
            waiting: ScenarioQueue::Least(BinaryHeap::new()),
            months_done: Vec::new(),
            idle: Vec::new(),
            dead: Vec::new(),
            chain_heap: BinaryHeap::new(),
            chain_fifo: VecDeque::new(),
            post_pool: BinaryHeap::new(),
            det: Detector::default(),
            snap_busy: Vec::new(),
            snap_running: Vec::new(),
            snap_idle: Vec::new(),
            snap_wait: Vec::new(),
            wait_buf: Vec::new(),
            cal_buf: Vec::new(),
            pool_snaps: Vec::new(),
            pool_buf: Vec::new(),
            tmpl: Vec::new(),
            fail_buf: Vec::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs one campaign under `config`, injecting the failures of `plan`,
/// streaming the full event story into `tracer`.
///
/// This is the single event loop behind `execute_traced`,
/// `estimate_unfused`, `estimate_with_failures_traced` and the grid
/// runners; combinations none of the legacy entry points offered
/// (unfused + tracing, unfused + policy ablations, faults at unfused
/// granularity) are reached by passing the corresponding
/// [`CampaignConfig`] directly.
///
/// Runs with the default [`KernelOpts`] (fast-forward and calendar
/// queue on — both bitwise-neutral); use
/// [`simulate_campaign_kernel`] to pick kernel options or observe what
/// the kernel did.
///
/// # Panics
///
/// Panics if the plan targets a group outside the grouping or gives a
/// non-finite/negative failure time (same contract as the legacy
/// failure executor).
pub fn simulate_campaign<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<CampaignOutcome, GroupingError> {
    simulate_campaign_kernel(
        inst,
        table,
        grouping,
        config,
        plan,
        KernelOpts::default(),
        tracer,
    )
    .map(|(outcome, _)| outcome)
}

/// [`simulate_campaign`] with explicit kernel options, returning what
/// the kernel did alongside the outcome. The outcome is bitwise
/// independent of `opts` — fast-forward and the calendar queue are
/// pure performance knobs, pinned by `tests/kernel_equivalence.rs`.
///
/// # Panics
///
/// Same contract as [`simulate_campaign`].
pub fn simulate_campaign_kernel<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
    opts: KernelOpts,
    tracer: &mut T,
) -> Result<(CampaignOutcome, KernelReport), GroupingError> {
    grouping.validate(inst)?;
    for &(g, t) in &plan.failures {
        assert!(
            g < grouping.group_count(),
            "failure targets group {g}, grouping has {}",
            grouping.group_count()
        );
        assert!(
            t.is_finite() && t >= 0.0,
            "failure time must be a finite non-negative instant"
        );
    }
    SCRATCH.with(|cell| {
        Ok(run(
            inst,
            table,
            grouping,
            config,
            plan,
            opts,
            tracer,
            &mut cell.borrow_mut(),
            Batch::Off,
        ))
    })
}

/// Runs the fault-free head of a batch: fused granularity, calendar on,
/// fast-forward off (every `NS`-completion boundary must be visited to
/// be captured). Returns `None` when the shape does not qualify for
/// integer time — callers fall back to plain per-variant runs.
///
/// The head records (`record == true`), so fault-free variants reuse
/// its outcome — schedule included — verbatim.
pub(crate) fn run_batch_head(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
) -> Result<Option<Box<BatchHead>>, GroupingError> {
    grouping.validate(inst)?;
    let plan = FaultPlan::none();
    if config.granularity != Granularity::Fused
        || !kernel_eligibility(inst, table, grouping, config, &plan)
    {
        return Ok(None);
    }
    let opts = KernelOpts {
        fast_forward: false,
        calendar: true,
    };
    let mut head = Box::new(BatchHead::default());
    let mut tracer = oa_trace::NullTracer;
    let (outcome, report) = SCRATCH.with(|cell| {
        run(
            inst,
            table,
            grouping,
            config,
            &plan,
            opts,
            &mut tracer,
            &mut cell.borrow_mut(),
            Batch::Capture(&mut head),
        )
    });
    if !matches!(outcome, CampaignOutcome::Completed(_)) {
        // A fault-free run can strand only on degenerate groupings
        // (no post processors); nothing to resume from.
        return Ok(None);
    }
    head.outcome = Some((outcome, report));
    Ok(Some(head))
}

/// Runs one variant by resuming `head` at the last checkpoint strictly
/// before the variant's first fault. `failures` must be non-empty,
/// sorted by time with ties in plan order, and valid for `grouping`
/// (the caller generated them). The outcome is bitwise what
/// [`simulate_campaign_kernel`] returns for the same plan.
pub(crate) fn run_batch_variant(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    opts: KernelOpts,
    head: &BatchHead,
    failures: &[(usize, f64)],
) -> (CampaignOutcome, KernelReport) {
    debug_assert!(!failures.is_empty(), "fault-free variants reuse the head");
    debug_assert!(failures.windows(2).all(|w| w[0].1 <= w[1].1));
    let ck = head.checkpoint_before(failures[0].1);
    let plan = FaultPlan::none();
    let mut tracer = oa_trace::NullTracer;
    SCRATCH.with(|cell| {
        run(
            inst,
            table,
            grouping,
            config,
            &plan,
            opts,
            &mut tracer,
            &mut cell.borrow_mut(),
            Batch::Resume { head, ck, failures },
        )
    })
}

/// The event loop proper, on pre-validated input and reusable state.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run<T: Tracer>(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
    opts: KernelOpts,
    tracer: &mut T,
    scratch: &mut Scratch,
    batch: Batch<'_>,
) -> (CampaignOutcome, KernelReport) {
    let (capture, head_prefix, resume_ck, resume_failures) = match batch {
        Batch::Off => (None, &[][..], None, None),
        Batch::Capture(h) => (Some(h), &[][..], None, None),
        Batch::Resume { head, ck, failures } => (
            None,
            &head.chain[..head.checkpoints[ck].completions as usize],
            Some((&head.checkpoints[ck], &head.drain_cks[ck])),
            Some(failures),
        ),
    };
    let mut capture = capture;
    let sizes: &[u32] = grouping.groups();
    // The `T[G]` row, indexed by `G - 4` — one array load per group
    // instead of a spec lookup per `main_secs` call.
    let trow = table.main_array();
    let tp = table.post_secs();
    let nm = inst.nm;

    let (steps, pre, last_step) = post_model(config.granularity, tp);

    let Scratch {
        durs,
        bases,
        busy_heap,
        busy_cal,
        running,
        waiting,
        months_done,
        idle,
        dead,
        chain_heap,
        chain_fifo,
        post_pool,
        det,
        snap_busy,
        snap_running,
        snap_idle,
        snap_wait,
        wait_buf,
        cal_buf,
        pool_snaps,
        pool_buf,
        tmpl,
        fail_buf,
    } = scratch;
    durs.clear();
    push_durs(durs, sizes, trow, config.granularity, pre);
    let durs: &[f64] = durs;

    // Processor layout: groups first (descending sizes, canonical),
    // then the dedicated post pool; any remainder stays idle forever.
    bases.clear();
    let mut acc = 0u32;
    for &g in sizes {
        bases.push(acc);
        acc += g;
    }
    let bases: &[u32] = bases;
    let post_base = acc;

    // Failures in time order; ties keep plan order (stable sort). A
    // batch resume brings its own pre-sorted slice.
    let failures: &[(usize, f64)] = match resume_failures {
        Some(f) => f,
        None => {
            fail_buf.clear();
            fail_buf.extend_from_slice(&plan.failures);
            fail_buf.sort_by(|a, b| a.1.total_cmp(&b.1));
            fail_buf
        }
    };
    let mut next_failure = 0usize;

    // Kernel mode selection — see [`kernel_gate`] / [`kernel_eligibility`].
    let mut report = KernelReport::default();
    let (want_ticks, max_dur_ticks) = kernel_gate(
        durs,
        failures,
        inst,
        steps.iter().sum(),
        opts.calendar || opts.fast_forward,
    );
    let use_cal = want_ticks && busy_cal.configure(max_dur_ticks);
    report.integer_time = use_cal;
    let ff_on = opts.fast_forward && use_cal;
    det.reset_run();
    debug_assert!(capture.is_none() || use_cal, "capture implies integer time");

    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            0.0,
            EventKind::CampaignBegin {
                ns: inst.ns,
                nm: inst.nm,
                r: inst.r,
                groups: sizes.to_vec(),
                post_procs: grouping.post_procs,
            },
        ));
    }

    // Records become a `Schedule` only when every task provably runs
    // exactly once: fused granularity, nothing to inject. The arena is
    // then the one allocation of the run, pre-sized to its exact final
    // length.
    let record =
        config.granularity == Granularity::Fused && failures.is_empty() && resume_ck.is_none();
    let mut records: Vec<TaskRecord> = if record {
        Vec::with_capacity(inst.nbtasks() as usize * 2)
    } else {
        Vec::new()
    };

    let mut busy = if use_cal {
        Busy::Cal(busy_cal)
    } else {
        busy_heap.clear();
        busy_heap.reserve(sizes.len());
        Busy::Heap(busy_heap)
    };
    running.clear();
    running.resize(sizes.len(), None); // (scenario, start)
    waiting.reset(config.policy, inst.ns);
    months_done.clear();
    months_done.resize(inst.ns as usize, 0);
    let mut unfinished = inst.ns as usize;
    idle.clear();
    idle.extend(0..sizes.len());
    idle.sort_unstable_by_key(|&g| (sizes[g], g));
    let mut alive = sizes.len();
    dead.clear();
    dead.resize(sizes.len(), false);

    let mut seq: u64 = 0;
    let mut chain = match config.granularity {
        Granularity::Fused => {
            chain_fifo.clear();
            chain_fifo.reserve(inst.nbtasks() as usize);
            Chain::Fifo(chain_fifo)
        }
        Granularity::Unfused => {
            chain_heap.clear();
            chain_heap.reserve(inst.nbtasks() as usize);
            Chain::Heap(chain_heap)
        }
    };
    post_pool.clear();
    post_pool.reserve(inst.r as usize);
    for p in 0..grouping.post_procs {
        post_pool.push(time_key(0.0, post_base + p));
    }

    let mut lost_proc_secs = 0.0f64;
    let mut months_lost = 0u32;
    let mut completions: u64 = 0;
    let mut post_periodic: Option<PostPeriodic> = None;
    let mut main_finish = 0.0f64;

    // A batch resume re-enters the loop mid-run: install the chosen
    // checkpoint's canonical state over the t=0 layout. The checkpoint
    // precedes the variant's first fault, so the history up to here is
    // bitwise the fault-free head's — losses stay zero and the skipped
    // prefix of the completion chain is `head_prefix`.
    if let Some((ck, _)) = resume_ck {
        busy.advance_to(ck.t);
        for &(tick, bg) in &ck.busy {
            busy.push(tick as f64, bg as usize);
        }
        running.clear();
        running.extend_from_slice(&ck.running);
        months_done.clear();
        months_done.extend_from_slice(&ck.months_done);
        unfinished = ck.unfinished;
        idle.clear();
        idle.extend(ck.idle.iter().map(|&g| g as usize));
        alive = ck.alive;
        waiting.reset(config.policy, 0);
        for &ws in &ck.waiting {
            waiting.push(months_done[ws as usize], ws);
        }
        post_pool.clear();
        for &(a, pp) in &ck.pool {
            post_pool.push(time_key(a, pp));
        }
        completions = ck.completions;
        main_finish = ck.main_finish;
    }

    // One assignment + disband pass; mirrors `oa_sched::estimate`.
    macro_rules! assign {
        ($now:expr) => {{
            let now: f64 = $now;
            while !idle.is_empty() && !waiting.is_empty() {
                let g = idle.pop().expect("non-empty"); // largest idle group
                let s = waiting.pop().expect("non-empty");
                running[g] = Some((s, now));
                busy.push(now + durs[g], g);
                if ff_on && det.armed() && tracer.enabled() {
                    det.log.push(LogEv::Dispatch {
                        t: now,
                        g: g as u32,
                        s,
                        month: months_done[s as usize],
                        queue_depth: waiting.len() as u32,
                    });
                }
                if tracer.enabled() {
                    let task = FusedTask::main(s, months_done[s as usize]);
                    tracer.record(TraceEvent::at(
                        now,
                        EventKind::TaskDispatch {
                            task,
                            group: Some(g as u32),
                            queue_depth: waiting.len() as u32,
                        },
                    ));
                    tracer.record(TraceEvent::at(
                        now,
                        EventKind::TaskStart {
                            task,
                            first_proc: bases[g],
                            procs: sizes[g],
                            group: Some(g as u32),
                        },
                    ));
                }
            }
            while !idle.is_empty() && alive > unfinished {
                let g = idle.remove(0); // smallest idle group disbands
                alive -= 1;
                for p in 0..sizes[g] {
                    post_pool.push(time_key(now, bases[g] + p));
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        now,
                        EventKind::GroupDisband {
                            group: g as u32,
                            procs: sizes[g],
                        },
                    ));
                }
            }
        }};
    }

    // Records the loop state in canonical form for later batch resumes.
    // Only reached in capture runs (fused, calendar on, fault-free), at
    // instants where `completions` is a multiple of `NS` — the offsets
    // batch variants look up by their first fault time. Every container
    // is stored in an order that makes its pop sequence a pure function
    // of content, so a rebuilt queue replays bitwise.
    macro_rules! capture_ck {
        ($now:expr) => {{
            if let Some(head) = capture.as_deref_mut() {
                let now: f64 = $now;
                let Busy::Cal(cal) = &busy else {
                    unreachable!("capture implies integer time")
                };
                cal_buf.clear();
                cal.sorted_content(cal_buf);
                waiting.canonical_content_into(wait_buf);
                pool_buf.clear();
                pool_buf.extend(post_pool.iter().map(|&Reverse((Time(a), pp))| (a, pp)));
                pool_buf.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                head.checkpoints.push(Checkpoint {
                    t: now,
                    main_finish,
                    completions,
                    busy: cal_buf
                        .iter()
                        .map(|&(tick, bg)| (tick, bg as u32))
                        .collect(),
                    running: running.clone(),
                    months_done: months_done.clone(),
                    idle: idle.iter().map(|&g| g as u32).collect(),
                    waiting: wait_buf.iter().map(|&(_, ws)| ws).collect(),
                    pool: pool_buf.clone(),
                    alive,
                    unfinished,
                });
            }
        }};
    }

    // Applies one `(group, time)` failure under the configured
    // recovery, charging destroyed work to the loss accumulators.
    // Double kills and failures of already-disbanded groups are no-ops
    // (`None`); a kill that lands returns its damage assessment.
    macro_rules! process_failure {
        ($g:expr, $tf:expr) => {{
            let (g, tf): (usize, f64) = ($g, $tf);
            if dead[g] {
                None // double kill: no-op
            } else if let Some((s, started)) = running[g].take() {
                // In-flight month lost.
                let lost = (tf - started).max(0.0) * sizes[g] as f64;
                lost_proc_secs += lost;
                months_lost += 1;
                if config.recovery == Recovery::RestartScenario {
                    months_done[s as usize] = 0;
                }
                waiting.push(months_done[s as usize], s);
                dead[g] = true;
                alive -= 1;
                Some(FailureImpact {
                    victim: Some((s, months_done[s as usize])),
                    lost_proc_secs: lost,
                    months_lost: 1,
                })
            } else {
                // A group that already disbanded is not in `idle` nor
                // `running`; its processors belong to the post pool now
                // — ignore (documented in `failures`).
                let key = (sizes[g], g);
                let pos = match idle.binary_search_by_key(&key, |&x| (sizes[x], x)) {
                    Ok(p) | Err(p) => p,
                };
                if pos < idle.len() && idle[pos] == g {
                    idle.remove(pos);
                    dead[g] = true;
                    alive -= 1;
                    Some(FailureImpact {
                        victim: None,
                        lost_proc_secs: 0.0,
                        months_lost: 0,
                    })
                } else {
                    None
                }
            }
        }};
    }

    macro_rules! stranded {
        () => {{
            let completed: u64 = months_done.iter().map(|&m| u64::from(m)).sum();
            return (
                CampaignOutcome::Stranded {
                    completed_months: completed,
                },
                report,
            );
        }};
    }

    if resume_ck.is_none() {
        assign!(0.0);
        capture_ck!(0.0);
    }

    loop {
        // Choose the next event: completion or failure.
        let completion_time = busy.peek_time();
        let failure_time = failures.get(next_failure).map(|&(_, t)| t);
        match (completion_time, failure_time) {
            (None, None) => break,
            (Some(tc), Some(tf)) if tf <= tc => {
                busy.advance_to(tf);
                let failure = failures[next_failure];
                let impact = process_failure!(failure.0, failure.1);
                if tracer.enabled() {
                    emit_failure(tracer, failure, impact.as_ref());
                }
                next_failure += 1;
                det.disturb();
                assign!(tf);
            }
            (None, Some(tf)) => {
                busy.advance_to(tf);
                let failure = failures[next_failure];
                let impact = process_failure!(failure.0, failure.1);
                if tracer.enabled() {
                    emit_failure(tracer, failure, impact.as_ref());
                }
                next_failure += 1;
                det.disturb();
                if alive == 0 && unfinished > 0 {
                    // Nothing can run the remaining months.
                    stranded!();
                }
                assign!(tf);
            }
            (Some(_), _) => {
                let (t, g) = busy.pop().expect("peeked");
                if dead[g] {
                    continue; // stale completion of a crashed group
                }
                let (s, started) = running[g].take().expect("busy group has a scenario");
                let month = months_done[s as usize];
                months_done[s as usize] += 1;
                main_finish = t;
                completions += 1;
                if record {
                    records.push(TaskRecord {
                        task: FusedTask::main(s, month),
                        procs: ProcRange {
                            first: bases[g],
                            count: sizes[g],
                        },
                        start: started,
                        end: t,
                        group: Some(g as u32),
                    });
                }
                match &mut chain {
                    Chain::Fifo(f) => f.push_back((t, s, month)),
                    Chain::Heap(h) => {
                        h.push(time_key(t, (0, seq, s, month)));
                        seq += 1;
                    }
                }
                if ff_on && det.armed() {
                    det.log.push(LogEv::Finish {
                        t,
                        g: g as u32,
                        s,
                        month,
                    });
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        t,
                        EventKind::TaskFinish {
                            task: FusedTask::main(s, month),
                            first_proc: bases[g],
                            procs: sizes[g],
                            group: Some(g as u32),
                            secs: t - started,
                        },
                    ));
                }
                if months_done[s as usize] == nm {
                    unfinished -= 1;
                } else {
                    waiting.push(months_done[s as usize], s);
                }
                let pos = idle
                    .binary_search_by_key(&(sizes[g], g), |&x| (sizes[x], x))
                    .unwrap_err();
                idle.insert(pos, g);
                assign!(t);
                if completions.is_multiple_of(u64::from(inst.ns)) {
                    capture_ck!(t);
                }

                // Steady-state detection: offer a snapshot every NS
                // completions once the fault plan is exhausted. A
                // cycle always spans NS·dm completions, so this
                // cadence cannot miss the period.
                if ff_on
                    && det.active()
                    && next_failure == failures.len()
                    && completions.is_multiple_of(u64::from(inst.ns))
                {
                    let Busy::Cal(cal) = &busy else {
                        unreachable!("fast-forward implies integer time")
                    };
                    cal_buf.clear();
                    cal.sorted_content(cal_buf);
                    let t_tick = t as u64;
                    snap_busy.clear();
                    snap_busy.extend(cal_buf.iter().map(|&(tick, bg)| (tick - t_tick, bg as u32)));
                    snap_running.clear();
                    for (rg, slot) in running.iter().enumerate() {
                        if let Some((rs, start)) = slot {
                            snap_running.push((rg as u32, *rs, (t - start) as u64));
                        }
                    }
                    snap_idle.clear();
                    snap_idle.extend(idle.iter().map(|&ig| ig as u32));
                    waiting.canonical_content_into(wait_buf);
                    snap_wait.clear();
                    snap_wait.extend(wait_buf.iter().map(|&(_, ws)| ws));
                    let view = SnapView {
                        t,
                        completions,
                        chain_len: head_prefix.len() + chain.len(),
                        months: months_done,
                        busy: snap_busy,
                        running: snap_running,
                        idle: snap_idle,
                        waiting: snap_wait,
                    };
                    if let Some(m) = det.observe(&view, nm) {
                        // Replay the matched cycle k times from the
                        // journal: all sums below are integer-exact,
                        // so every stamped value is bitwise what
                        // event-by-event simulation would compute.
                        for j in 1..=m.k {
                            let shift = (j as f64) * m.d;
                            let dmj = u32::try_from(j).expect("k < NM") * m.dm;
                            for ev in &det.log[m.log_start..m.log_end] {
                                match *ev {
                                    LogEv::Finish {
                                        t: te,
                                        g: eg,
                                        s: es,
                                        month: em,
                                    } => {
                                        let eg = eg as usize;
                                        let t2 = te + shift;
                                        let m2 = em + dmj;
                                        main_finish = t2;
                                        if record {
                                            records.push(TaskRecord {
                                                task: FusedTask::main(es, m2),
                                                procs: ProcRange {
                                                    first: bases[eg],
                                                    count: sizes[eg],
                                                },
                                                start: t2 - durs[eg],
                                                end: t2,
                                                group: Some(eg as u32),
                                            });
                                        }
                                        match &mut chain {
                                            Chain::Fifo(f) => f.push_back((t2, es, m2)),
                                            Chain::Heap(h) => {
                                                h.push(time_key(t2, (0, seq, es, m2)));
                                                seq += 1;
                                            }
                                        }
                                        if tracer.enabled() {
                                            tracer.record(TraceEvent::at(
                                                t2,
                                                EventKind::TaskFinish {
                                                    task: FusedTask::main(es, m2),
                                                    first_proc: bases[eg],
                                                    procs: sizes[eg],
                                                    group: Some(eg as u32),
                                                    secs: durs[eg],
                                                },
                                            ));
                                        }
                                    }
                                    LogEv::Dispatch {
                                        t: te,
                                        g: eg,
                                        s: es,
                                        month: em,
                                        queue_depth,
                                    } => {
                                        // Journaled only when tracing.
                                        let t2 = te + shift;
                                        let task = FusedTask::main(es, em + dmj);
                                        tracer.record(TraceEvent::at(
                                            t2,
                                            EventKind::TaskDispatch {
                                                task,
                                                group: Some(eg),
                                                queue_depth,
                                            },
                                        ));
                                        tracer.record(TraceEvent::at(
                                            t2,
                                            EventKind::TaskStart {
                                                task,
                                                first_proc: bases[eg as usize],
                                                procs: sizes[eg as usize],
                                                group: Some(eg),
                                            },
                                        ));
                                    }
                                }
                            }
                        }
                        // Shift the live state k cycles forward.
                        let total = (m.k as f64) * m.d;
                        let total_ticks = total as u64;
                        let Busy::Cal(cal) = &mut busy else {
                            unreachable!("fast-forward implies integer time")
                        };
                        cal_buf.clear();
                        while let Some(entry) = cal.pop() {
                            cal_buf.push(entry);
                        }
                        for &(tick, bg) in cal_buf.iter() {
                            cal.push(tick + total_ticks, bg);
                        }
                        for slot in running.iter_mut().flatten() {
                            slot.1 += total;
                        }
                        let dm_total = u32::try_from(m.k).expect("k < NM") * m.dm;
                        for md in months_done.iter_mut() {
                            *md += dm_total;
                        }
                        waiting.canonical_content_into(wait_buf);
                        waiting.reset(config.policy, 0);
                        for &(_, ws) in wait_buf.iter() {
                            waiting.push(months_done[ws as usize], ws);
                        }
                        completions += m.k * m.cycle_completions;
                        report.main_cycles_skipped = m.k;
                        if config.granularity == Granularity::Fused {
                            post_periodic = Some(PostPeriodic {
                                start_idx: m.chain_start,
                                cycles: m.k + 1,
                                len: m.cycle_completions as usize,
                                d: m.d,
                            });
                        }
                    }
                }
            }
        }
        if unfinished > 0 && alive == 0 && busy.is_empty() {
            stranded!();
        }
    }

    if unfinished > 0 {
        stranded!();
    }

    // Posts: the ready chain drains through the pool, earliest-ready
    // first (FIFO for fused — completions are chronological), each
    // taking the earliest-available processor. If the pool is empty
    // every group died without disbanding: no post capacity exists.
    if post_pool.is_empty() {
        stranded!();
    }
    let mut post_finish = 0.0f64;
    match chain {
        Chain::Fifo(fifo) => {
            // Fused drain, with its own steady-state fast-forward: the
            // main-phase replay hands over the periodic chain region,
            // and once the pool shape recurs at a cycle boundary
            // (relative to the boundary instant, bitwise), the drain
            // stamps whole cycles from the template. Sound only when
            // the post duration is integral too.
            let tail: &[(f64, u32, u32)] = fifo.make_contiguous();
            if let Some(head) = capture.as_deref_mut() {
                head.chain.clear();
                head.chain.extend_from_slice(tail);
            }
            let entries = Entries {
                prefix: head_prefix,
                tail,
            };
            let mut pd =
                post_periodic.filter(|p| is_tick_exact(steps[0]) && p.len > 0 && p.cycles >= 2);
            let mut n_pool_snaps = 0usize;
            tmpl.clear();
            let mut i = 0usize;
            // A resumed variant re-drains the head's chain prefix. When
            // the head's own drain of that prefix never popped a
            // disbanded-group processor, and none of the variant's
            // disbanded entries can preempt a pop the head made (every
            // one strictly later than the latest availability the head
            // popped), the pool evolution over the prefix is bitwise
            // the head's: adopt its recorded result and start at the
            // tail. Otherwise fall back to the full event-by-event
            // drain, which is always correct.
            if let Some((_, dck)) = resume_ck {
                let min_disband = post_pool
                    .iter()
                    .filter(|&&Reverse((_, pp))| pp < post_base)
                    .map(|&Reverse((Time(a), _))| a)
                    .fold(f64::INFINITY, f64::min);
                if dck.valid && !head_prefix.is_empty() && min_disband > dck.maxpop {
                    pool_buf.clear();
                    pool_buf.extend(
                        post_pool
                            .iter()
                            .filter(|&&Reverse((_, pp))| pp < post_base)
                            .map(|&Reverse((Time(a), pp))| (a, pp)),
                    );
                    post_pool.clear();
                    for &(a, pp) in pool_buf.iter() {
                        post_pool.push(time_key(a, pp));
                    }
                    for &(a, pp) in &dck.pool {
                        post_pool.push(time_key(a, pp));
                    }
                    post_finish = dck.post_finish;
                    i = head_prefix.len();
                }
            }
            // Capture-side drain bookkeeping: one `DrainCk` per main
            // checkpoint, recorded when the drain reaches that
            // checkpoint's chain offset.
            let mut next_dck = 0usize;
            let mut dck_maxpop = 0.0f64;
            let mut dck_valid = true;
            macro_rules! capture_dck {
                () => {{
                    if let Some(head) = capture.as_deref_mut() {
                        while next_dck < head.checkpoints.len()
                            && head.checkpoints[next_dck].completions as usize == i
                        {
                            pool_buf.clear();
                            pool_buf.extend(
                                post_pool
                                    .iter()
                                    .filter(|&&Reverse((_, pp))| pp >= post_base)
                                    .map(|&Reverse((Time(a), pp))| (a, pp)),
                            );
                            pool_buf
                                .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                            head.drain_cks.push(DrainCk {
                                valid: dck_valid,
                                maxpop: dck_maxpop,
                                post_finish,
                                pool: pool_buf.clone(),
                            });
                            next_dck += 1;
                        }
                    }
                }};
            }
            while i < entries.len() {
                capture_dck!();
                if let Some(p) = pd {
                    if i >= p.start_idx && (i - p.start_idx).is_multiple_of(p.len) {
                        let c = ((i - p.start_idx) / p.len) as u64;
                        if c >= p.cycles {
                            pd = None; // past the periodic region
                        } else {
                            let t_b = entries.at(i).0;
                            if n_pool_snaps == pool_snaps.len() {
                                pool_snaps.push(PoolSnap::default());
                            }
                            let (prev, slot) = pool_snaps.split_at_mut(n_pool_snaps);
                            let snap = &mut slot[0];
                            pool_snapshot(
                                snap,
                                c,
                                t_b,
                                post_pool.iter().map(|&Reverse((Time(a), pp))| (a, pp)),
                            );
                            let hit = prev[..n_pool_snaps]
                                .iter()
                                .rev()
                                .find_map(|ps| pool_match(ps, snap).map(|sh| (ps, sh)));
                            if let Some((ps, sh)) = hit {
                                let q = c - ps.cycle;
                                // The handed-over region spaces boundaries
                                // exactly `d` apart; anything else means the
                                // chain is not actually periodic here.
                                debug_assert_eq!(sh.delta, (q as f64) * p.d);
                                let mut n = if sh.delta == (q as f64) * p.d {
                                    (p.cycles - c) / q
                                } else {
                                    0
                                };
                                if let Some(min_stable) = sh.min_stable {
                                    // A replayed window may only pop shifted
                                    // (cycling) processors: cap n so the
                                    // largest shifted availability, advancing
                                    // `delta` per window, stays strictly
                                    // below every parked one.
                                    let room = min_stable - sh.max_shifted - 1.0;
                                    let cap = if room < 0.0 {
                                        0.0
                                    } else {
                                        (room / sh.delta).floor()
                                    };
                                    n = n.min(cap as u64);
                                }
                                if n >= 1 {
                                    let w0 =
                                        usize::try_from(ps.cycle).expect("cycle index") * p.len;
                                    let w1 = usize::try_from(c).expect("cycle index") * p.len;
                                    if !record && !tracer.enabled() {
                                        // Nothing observes the replayed
                                        // tasks: only the final clock
                                        // matters, and shifted ends are
                                        // monotone in both the window
                                        // entry and the replay index —
                                        // the max is the window max
                                        // shifted the full n·q cycles,
                                        // the same f64 the loop below
                                        // would keep.
                                        let mut en_max = f64::NEG_INFINITY;
                                        for &(_, _, en) in &tmpl[w0..w1] {
                                            if en > en_max {
                                                en_max = en;
                                            }
                                        }
                                        let end = en_max + ((n * q) as f64) * p.d;
                                        if end > post_finish {
                                            post_finish = end;
                                        }
                                    } else {
                                        for r in 1..=n {
                                            let shift_secs = ((r * q) as f64) * p.d;
                                            let stride = usize::try_from(r * q)
                                                .expect("cycle stride")
                                                * p.len;
                                            for (off, &(proc, st, en)) in
                                                tmpl[w0..w1].iter().enumerate()
                                            {
                                                let ci = p.start_idx + w0 + stride + off;
                                                let (er, es, em) = entries.at(ci);
                                                debug_assert_eq!(
                                                    er,
                                                    entries.at(p.start_idx + w0 + off).0
                                                        + shift_secs,
                                                    "replayed chain entry off the periodic lattice"
                                                );
                                                let start = st + shift_secs;
                                                let end = en + shift_secs;
                                                let task = FusedTask::post(es, em);
                                                if record {
                                                    records.push(TaskRecord {
                                                        task,
                                                        procs: ProcRange::single(proc),
                                                        start,
                                                        end,
                                                        group: None,
                                                    });
                                                }
                                                if tracer.enabled() {
                                                    tracer.record(TraceEvent::at(
                                                        start,
                                                        EventKind::TaskStart {
                                                            task,
                                                            first_proc: proc,
                                                            procs: 1,
                                                            group: None,
                                                        },
                                                    ));
                                                    tracer.record(TraceEvent::at(
                                                        end,
                                                        EventKind::TaskFinish {
                                                            task,
                                                            first_proc: proc,
                                                            procs: 1,
                                                            group: None,
                                                            secs: end - start,
                                                        },
                                                    ));
                                                }
                                                if end > post_finish {
                                                    post_finish = end;
                                                }
                                            }
                                        }
                                    }
                                    // Advance the cycling processors n·q
                                    // cycles; the parked ones kept their
                                    // absolute availabilities throughout.
                                    let total = ((n * q) as f64) * p.d;
                                    let cutoff = sh.min_stable.unwrap_or(f64::INFINITY);
                                    pool_buf.clear();
                                    pool_buf.extend(
                                        post_pool.iter().map(|&Reverse((Time(a), pp))| (a, pp)),
                                    );
                                    post_pool.clear();
                                    for &(a, pp) in pool_buf.iter() {
                                        let a2 = if a < cutoff { a + total } else { a };
                                        post_pool.push(time_key(a2, pp));
                                    }
                                    report.post_cycles_skipped = n * q;
                                    i += usize::try_from(n * q).expect("cycle stride") * p.len;
                                    pd = None;
                                    continue;
                                }
                                pd = None; // matched too late to skip
                            } else {
                                n_pool_snaps += 1;
                                if n_pool_snaps == MAX_POOL_SNAPS {
                                    pd = None; // pool never settled
                                }
                            }
                        }
                    }
                }
                let (ready, s, month) = entries.at(i);
                let Reverse((Time(avail), proc)) = post_pool.pop().expect("pool non-empty");
                if capture.is_some() {
                    if avail > dck_maxpop {
                        dck_maxpop = avail;
                    }
                    if proc < post_base {
                        dck_valid = false;
                    }
                }
                let start = if avail > ready { avail } else { ready };
                let end = start + steps[0];
                post_pool.push(time_key(end, proc));
                if let Some(p) = pd {
                    if i >= p.start_idx {
                        tmpl.push((proc, start, end));
                    }
                }
                let task = FusedTask::post(s, month);
                if record {
                    records.push(TaskRecord {
                        task,
                        procs: ProcRange::single(proc),
                        start,
                        end,
                        group: None,
                    });
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        start,
                        EventKind::TaskStart {
                            task,
                            first_proc: proc,
                            procs: 1,
                            group: None,
                        },
                    ));
                    tracer.record(TraceEvent::at(
                        end,
                        EventKind::TaskFinish {
                            task,
                            first_proc: proc,
                            procs: 1,
                            group: None,
                            secs: end - start,
                        },
                    ));
                }
                if end > post_finish {
                    post_finish = end;
                }
                i += 1;
            }
            // The final checkpoint sits at the end of the chain.
            capture_dck!();
        }
        Chain::Heap(heap) => {
            // Unfused drain: steps re-enter the chain at out-of-order
            // ready times, so the heap (and event-by-event processing)
            // stays.
            while let Some(Reverse((Time(ready), (step, _, s, month)))) = heap.pop() {
                let Reverse((Time(avail), proc)) = post_pool.pop().expect("pool non-empty");
                let start = if avail > ready { avail } else { ready };
                let end = start + steps[step as usize];
                post_pool.push(time_key(end, proc));
                let task = FusedTask {
                    scenario: s,
                    month,
                    kind: STEP_KINDS[step as usize],
                };
                if tracer.enabled() {
                    tracer.record(TraceEvent::at(
                        start,
                        EventKind::TaskStart {
                            task,
                            first_proc: proc,
                            procs: 1,
                            group: None,
                        },
                    ));
                    tracer.record(TraceEvent::at(
                        end,
                        EventKind::TaskFinish {
                            task,
                            first_proc: proc,
                            procs: 1,
                            group: None,
                            secs: end - start,
                        },
                    ));
                }
                if step < last_step {
                    heap.push(time_key(end, (step + 1, seq, s, month)));
                    seq += 1;
                } else {
                    post_finish = post_finish.max(end);
                }
            }
        }
    }

    let makespan = main_finish.max(post_finish);
    if tracer.enabled() {
        tracer.record(TraceEvent::at(
            makespan,
            EventKind::CampaignEnd { makespan },
        ));
    }

    let schedule = if record {
        let schedule = Schedule {
            instance: inst,
            records,
            makespan,
        };
        // In debug builds, run the full schedule-layer rule set (OA008–
        // OA015) over every schedule the engine produces: a cheap,
        // always-on oracle that any future change to the event loop
        // still respects multiplicity, dependences and processor
        // exclusivity.
        #[cfg(debug_assertions)]
        {
            let report = schedule.analyze();
            debug_assert!(
                !report.has_errors(),
                "engine produced an invalid schedule:\n{}",
                report.render_text()
            );
        }
        Some(schedule)
    } else {
        None
    };

    (
        CampaignOutcome::Completed(CampaignRun {
            schedule,
            makespan,
            main_finish,
            post_finish,
            lost_proc_secs,
            months_lost,
        }),
        report,
    )
}
