//! Cluster loss at grid level: the price of "no migration".
//!
//! Section 5 fixes placement for life: "once a scenario has been
//! scheduled on a cluster, it can not change location". That is the
//! right call when clusters are reliable — but what if one dies
//! mid-campaign? This module quantifies the choice:
//!
//! * [`ClusterFailurePolicy::Strand`] — the paper's rule taken
//!   literally: the victim cluster's unfinished scenarios are lost;
//! * [`ClusterFailurePolicy::Replan`] — scenarios *may* migrate after
//!   a failure: each victim scenario ships its latest restart payload
//!   (120 MB over the wide area) to a surviving cluster and its
//!   remaining months run there after that cluster's own assignment.
//!
//! The replanning model is deliberately conservative: survivors finish
//! their original assignments untouched, then run adopted scenarios as
//! a fresh campaign (planned by the same heuristic). Interleaving
//! adopted months into surviving clusters' tails could only improve on
//! the numbers reported here.

use serde::{Deserialize, Serialize};

use oa_platform::cluster::ClusterId;
use oa_platform::grid::Grid;
use oa_sched::heuristics::{Heuristic, HeuristicError};
use oa_sched::params::Instance;

use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};

use crate::executor::ExecConfig;
use crate::grid_exec::{run_grid, ClusterCampaign, ConfiguredGridOutcome, GridOutcome};
use crate::transfer::{migration_secs, Link};

/// What happens to the victim cluster's scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterFailurePolicy {
    /// Paper rule: no migration; the scenarios are abandoned.
    Strand,
    /// Migrate restart payloads and finish on the survivors.
    Replan,
}

/// Outcome of a grid execution with one cluster failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridFailureOutcome {
    /// The failure instant, seconds.
    pub failed_at: f64,
    /// Scenarios that were still unfinished on the dead cluster.
    pub victim_scenarios: Vec<u32>,
    /// Months those scenarios had already completed (saved by the
    /// monthly checkpoints).
    pub checkpointed_months: u64,
    /// Months re-homed to survivors (`Replan`) or lost (`Strand`).
    pub remaining_months: u64,
    /// Campaign makespan. Under `Strand` this covers only the
    /// surviving scenarios — `complete` says whether the campaign
    /// actually finished.
    pub makespan: f64,
    /// Whether every scenario finished.
    pub complete: bool,
}

/// Which cluster to kill, when, and what to do about it — the failure
/// scenario under study, bundled so experiment entry points stay at a
/// sane arity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterFailureSpec {
    /// The cluster that dies.
    pub failed: ClusterId,
    /// When it dies, as a fraction of the failure-free makespan
    /// (must be in `[0, 1]`).
    pub at_fraction: f64,
    /// What happens to its unfinished scenarios.
    pub policy: ClusterFailurePolicy,
}

/// Plans and executes `ns × nm` on `grid`, kills `spec.failed` at
/// `spec.at_fraction` of the failure-free makespan, and applies
/// `spec.policy`.
///
/// Panics if `spec.failed` is out of range or `spec.at_fraction` is
/// not in `[0, 1]`.
pub fn run_grid_with_cluster_failure(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    spec: ClusterFailureSpec,
    link: &Link,
) -> Result<GridFailureOutcome, HeuristicError> {
    let ClusterFailureSpec {
        failed,
        at_fraction,
        policy,
    } = spec;
    assert!(failed.index() < grid.len(), "failed cluster out of range");
    assert!(
        (0.0..=1.0).contains(&at_fraction),
        "at_fraction must be in [0, 1]"
    );

    let base: GridOutcome = run_grid(grid, heuristic, ns, nm, ExecConfig::default())?;
    let failed_at = base.makespan * at_fraction;

    // Progress of the dead cluster's scenarios at the failure instant.
    let victim = &base.clusters[failed.index()];
    let mut victim_scenarios = Vec::new();
    let mut checkpointed = 0u64;
    let mut remaining = 0u64;
    if let Some(schedule) = &victim.schedule {
        let local_ns = schedule.instance.ns;
        let mut done = vec![0u32; local_ns as usize];
        for r in schedule.mains() {
            if r.end <= failed_at {
                done[r.task.scenario as usize] += 1;
            }
        }
        for (local, &months) in done.iter().enumerate() {
            if months < nm {
                victim_scenarios.push(victim.scenarios[local]);
                checkpointed += months as u64;
                remaining += (nm - months) as u64;
            }
        }
    }

    // Survivors' own makespans are unaffected.
    let survivor_ms: Vec<(usize, f64)> = base
        .clusters
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != failed.index())
        .map(|(i, c)| (i, c.makespan()))
        .collect();
    let survivors_finish = survivor_ms.iter().map(|&(_, m)| m).fold(0.0f64, f64::max);

    if victim_scenarios.is_empty() {
        // The dead cluster had already finished (or had no work).
        return Ok(GridFailureOutcome {
            failed_at,
            victim_scenarios,
            checkpointed_months: 0,
            remaining_months: 0,
            makespan: base.makespan.min(survivors_finish.max(failed_at)),
            complete: true,
        });
    }

    match policy {
        ClusterFailurePolicy::Strand => Ok(GridFailureOutcome {
            failed_at,
            victim_scenarios,
            checkpointed_months: checkpointed,
            remaining_months: remaining,
            makespan: survivors_finish,
            complete: false,
        }),
        ClusterFailurePolicy::Replan => {
            // Greedily adopt victims: each goes to the survivor whose
            // completion time grows the least. A survivor adopting k
            // scenarios runs them as a fresh campaign of the *longest*
            // remaining chain (conservative: remaining months differ by
            // at most one here, and the estimator needs one nm).
            let longest_left = (remaining.div_ceil(victim_scenarios.len() as u64) as u32).max(1);
            let mut adopted = vec![0u32; grid.len()];
            let completion: Vec<f64> = (0..grid.len())
                .map(|i| {
                    if i == failed.index() {
                        f64::INFINITY
                    } else {
                        base.clusters[i].makespan().max(failed_at)
                    }
                })
                .collect();
            let migration = migration_secs(link);
            for _ in &victim_scenarios {
                // Completion if survivor i adopts one more scenario.
                let best = (0..grid.len())
                    .filter(|&i| i != failed.index())
                    .min_by(|&a, &b| {
                        let ca = adoption_completion(
                            grid,
                            heuristic,
                            a,
                            adopted[a] + 1,
                            longest_left,
                            &completion,
                            migration,
                        );
                        let cb = adoption_completion(
                            grid,
                            heuristic,
                            b,
                            adopted[b] + 1,
                            longest_left,
                            &completion,
                            migration,
                        );
                        ca.total_cmp(&cb)
                    })
                    .expect("at least one survivor");
                adopted[best] += 1;
            }
            let mut makespan = survivors_finish;
            for (i, &k) in adopted.iter().enumerate() {
                if k > 0 {
                    makespan = makespan.max(adoption_completion(
                        grid,
                        heuristic,
                        i,
                        k,
                        longest_left,
                        &completion,
                        migration,
                    ));
                }
            }
            Ok(GridFailureOutcome {
                failed_at,
                victim_scenarios,
                checkpointed_months: checkpointed,
                remaining_months: remaining,
                makespan,
                complete: true,
            })
        }
    }
}

/// Grid execution with *group-level* failures: each cluster keeps
/// running, but individual groups inside it may crash, replayed by the
/// shared campaign engine under `recovery`. This sits between the
/// failure-free grid of [`run_grid`] and the whole-cluster loss of
/// [`run_grid_with_cluster_failure`] — a granularity the pre-engine
/// executors could not express, because the grid loop only knew how to
/// call the fused fault-free path.
///
/// `faults[i]` holds cluster `i`'s failures (local group ids). Panics
/// if `faults.len() != grid.len()`.
pub fn run_grid_with_group_failures(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    recovery: Recovery,
    faults: &[FaultPlan],
) -> Result<ConfiguredGridOutcome, HeuristicError> {
    assert_eq!(faults.len(), grid.len(), "one fault plan per cluster");
    let campaigns: Vec<ClusterCampaign> = faults
        .iter()
        .map(|plan| ClusterCampaign {
            config: CampaignConfig {
                policy: ScenarioPolicy::LeastAdvanced,
                granularity: Granularity::Fused,
                recovery,
            },
            faults: plan.clone(),
        })
        .collect();
    crate::grid_exec::run_grid_configured(grid, heuristic, ns, nm, &campaigns)
}

/// Completion time of survivor `i` adopting `k` scenarios of
/// `months_left` months after its own assignment and one migration.
fn adoption_completion(
    grid: &Grid,
    heuristic: Heuristic,
    i: usize,
    k: u32,
    months_left: u32,
    completion: &[f64],
    migration: f64,
) -> f64 {
    let cluster = &grid.clusters()[i];
    let inst = Instance::new(k, months_left, cluster.resources);
    let extra = heuristic
        .makespan(inst, &cluster.timing)
        .expect("survivors priced the campaign, so they fit groups");
    completion[i] + migration + extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::presets::benchmark_grid;

    fn setup() -> Grid {
        benchmark_grid(30)
    }

    #[test]
    fn strand_loses_the_victims() {
        let grid = setup();
        let out = run_grid_with_cluster_failure(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            ClusterFailureSpec {
                failed: ClusterId(0),
                at_fraction: 0.5,
                policy: ClusterFailurePolicy::Strand,
            },
            &Link::gigabit(),
        )
        .unwrap();
        assert!(!out.complete);
        assert!(!out.victim_scenarios.is_empty());
        assert!(out.remaining_months > 0);
    }

    #[test]
    fn replan_completes_and_never_beats_the_clean_run() {
        let grid = setup();
        let clean = run_grid(&grid, Heuristic::Knapsack, 10, 24, ExecConfig::default())
            .unwrap()
            .makespan;
        // Losing the *fastest* cluster: its victims re-home onto other
        // survivors whose slack (relative to the slowest cluster, which
        // sets the grid makespan) can absorb the work — replanning may
        // be nearly free here.
        let fast = run_grid_with_cluster_failure(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            ClusterFailureSpec {
                failed: ClusterId(0),
                at_fraction: 0.5,
                policy: ClusterFailurePolicy::Replan,
            },
            &Link::gigabit(),
        )
        .unwrap();
        assert!(fast.complete);
        assert!(fast.makespan + 1e-6 >= clean);
        assert!(fast.checkpointed_months > 0);

        // Losing the *slowest* cluster mid-run must cost real time: its
        // remaining months restart on survivors after their own work.
        let slow = run_grid_with_cluster_failure(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            ClusterFailureSpec {
                failed: ClusterId(4),
                at_fraction: 0.5,
                policy: ClusterFailurePolicy::Replan,
            },
            &Link::gigabit(),
        )
        .unwrap();
        if !slow.victim_scenarios.is_empty() {
            assert!(slow.complete);
            assert!(
                slow.makespan > clean,
                "losing the critical cluster must cost time"
            );
        }
    }

    #[test]
    fn late_failure_costs_less_than_early() {
        let grid = setup();
        let run = |frac| {
            run_grid_with_cluster_failure(
                &grid,
                Heuristic::Knapsack,
                10,
                24,
                ClusterFailureSpec {
                    failed: ClusterId(0),
                    at_fraction: frac,
                    policy: ClusterFailurePolicy::Replan,
                },
                &Link::gigabit(),
            )
            .unwrap()
            .makespan
        };
        assert!(run(0.9) <= run(0.1) + 1e-6);
    }

    #[test]
    fn failure_after_victims_finished_is_free() {
        let grid = setup();
        // Cluster 4 (slowest) gets the fewest scenarios; failing the
        // fastest cluster at 100% — everything it had is done.
        let out = run_grid_with_cluster_failure(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            ClusterFailureSpec {
                failed: ClusterId(0),
                at_fraction: 1.0,
                policy: ClusterFailurePolicy::Strand,
            },
            &Link::gigabit(),
        )
        .unwrap();
        assert!(out.complete);
        assert!(out.victim_scenarios.is_empty());
    }

    #[test]
    fn group_failures_degrade_one_cluster_without_stranding_the_grid() {
        let grid = setup();
        let clean = run_grid(&grid, Heuristic::Knapsack, 10, 24, ExecConfig::default()).unwrap();
        // No failures anywhere: bitwise-identical to the plain grid run.
        let none = vec![FaultPlan::none(); grid.len()];
        let base = run_grid_with_group_failures(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            Recovery::MonthlyCheckpoint,
            &none,
        )
        .unwrap();
        assert!(base.complete);
        assert_eq!(base.makespan.to_bits(), clean.makespan.to_bits());
        // Kill one group on cluster 2 mid-campaign: that cluster loses
        // at most a month per its checkpoints; the others are untouched.
        let mut faults = none;
        faults[2] = FaultPlan::none().kill(0, clean.makespan * 0.3);
        let hurt = run_grid_with_group_failures(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            Recovery::MonthlyCheckpoint,
            &faults,
        )
        .unwrap();
        assert!(hurt.complete, "one group loss cannot strand a cluster");
        assert!(hurt.clusters[2].makespan() > base.clusters[2].makespan());
        for i in [0usize, 1, 3, 4] {
            assert_eq!(
                hurt.clusters[i].makespan().to_bits(),
                base.clusters[i].makespan().to_bits()
            );
        }
        // Restart-from-scratch recovery can only be worse on the victim.
        let restart = run_grid_with_group_failures(
            &grid,
            Heuristic::Knapsack,
            10,
            24,
            Recovery::RestartScenario,
            &faults,
        )
        .unwrap();
        assert!(restart.clusters[2].makespan() + 1e-9 >= hurt.clusters[2].makespan());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cluster_panics() {
        let grid = setup();
        let _ = run_grid_with_cluster_failure(
            &grid,
            Heuristic::Basic,
            2,
            2,
            ClusterFailureSpec {
                failed: ClusterId(9),
                at_fraction: 0.5,
                policy: ClusterFailurePolicy::Strand,
            },
            &Link::gigabit(),
        );
    }
}
