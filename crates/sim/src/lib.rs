//! # oa-sim — discrete-event execution of Ocean-Atmosphere campaigns
//!
//! The validated simulation backend of the reproduction:
//!
//! * [`schedule`] — complete schedules (every task pinned to processors
//!   and times) with structural validation: multiplicities, DAG
//!   dependences, processor exclusivity, moldable group sizes;
//! * [`engine`] — the one generic discrete-event campaign loop, driven
//!   by an `oa_sched::policy::CampaignConfig` (scenario policy × task
//!   granularity × recovery model) plus a fault plan and a tracer; the
//!   modules below are thin configurations of it. The loop carries a
//!   two-part simulation kernel (steady-state fast-forward + the
//!   integer-time [`calendar`] queue), bitwise identical to
//!   event-by-event execution and controlled via
//!   `engine::KernelOpts`;
//! * [`calendar`] — the O(1) integer-tick bucket queue backing the
//!   kernel's busy set;
//! * [`batch`] — the mass-batch variant engine: 10⁵–10⁶ Monte Carlo /
//!   grid variants per run with cross-variant sharing (planning memo,
//!   checkpoint-resume kernel heads, SoA result streaming), bitwise
//!   identical to running each variant individually;
//! * [`driver`] — session-resumable wrapper over the engine: one
//!   simulation pinned to a virtual start instant, with any later
//!   instant resolvable to a session state (the per-session backend
//!   of the `oa-service` daemon);
//! * [`executor`] — fused fault-free execution under the paper's
//!   least-advanced-first policy (plus round-robin and most-advanced
//!   ablations), producing full schedules;
//! * [`gantt`] — ASCII Gantt rendering (the paper's Figures 3–6);
//! * [`metrics`] — utilization, fairness, phase-split accounting;
//! * [`tracing`] — bridges to the `oa-trace` observability layer:
//!   schedule → event-stream conversion and the cluster-tagging
//!   adapter for grid timelines;
//! * [`grid_exec`] — multi-cluster execution of an Algorithm 1
//!   repartition (the simulation behind Figure 10);
//! * [`ir_exec`] — execution of the generalized workflow IR: a ready-
//!   set list scheduler driven purely by IR precedence for arbitrary
//!   DAGs, and a router that sends recognized ocean-atmosphere preset
//!   meshes through the legacy [`engine`] unchanged (byte-identical
//!   outputs, integer-time kernel gate preserved).
//!
//! The makespans produced here agree (to float tolerance) with the
//! fast aggregate estimator `oa_sched::estimate` — property-tested in
//! this crate — so heuristics can plan with the estimator and the
//! simulator remains the single source of truth for *schedules*.
//!
//! # Examples
//!
//! ```
//! use oa_platform::prelude::*;
//! use oa_sched::prelude::*;
//! use oa_sim::prelude::*;
//!
//! let table = PcrModel::reference().table(1.0).unwrap();
//! let inst = Instance::new(4, 6, 30);
//! let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
//! let schedule = execute_default(inst, &table, &grouping).unwrap();
//! schedule.validate().unwrap();
//! println!("{}", render_default(&schedule));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod calendar;
pub mod driver;
pub mod engine;
pub mod executor;
pub mod failures;
pub(crate) mod ffwd;
pub mod gantt;
pub mod grid_exec;
pub mod grid_failures;
pub mod ir_exec;
pub mod metrics;
pub mod persist;
pub mod profile;
pub mod schedule;
pub mod tracing;
pub mod transfer;
pub mod unfused;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::batch::{
        expand_shapes, faults_for, run_batch, run_naive, BatchError, BatchReport, BatchSoA,
        BatchSpec, ShapePlan, SweepSummary, VariantOut,
    };
    pub use crate::driver::{SessionDriver, SessionState};
    pub use crate::engine::{
        kernel_eligibility, simulate_campaign, simulate_campaign_kernel, CampaignOutcome,
        CampaignRun, KernelOpts, KernelReport,
    };
    pub use crate::executor::{
        execute, execute_default, execute_traced, ExecConfig, ScenarioPolicy,
    };
    pub use crate::failures::{
        estimate_with_failures, estimate_with_failures_traced, FaultPlan, FaultyOutcome, Recovery,
    };
    pub use crate::gantt::{render, render_default, GanttOptions};
    pub use crate::grid_exec::{
        execute_repartition, execute_repartition_configured_traced, execute_repartition_traced,
        run_grid, run_grid_configured, run_grid_traced, run_grid_with_staging,
        run_grid_with_staging_traced, ClusterCampaign, ClusterOutcome, ConfiguredClusterOutcome,
        ConfiguredGridOutcome, GridOutcome,
    };
    pub use crate::grid_failures::{
        run_grid_with_cluster_failure, run_grid_with_group_failures, ClusterFailurePolicy,
        ClusterFailureSpec, GridFailureOutcome,
    };
    pub use crate::ir_exec::{
        execute_ir, simulate_ir, IrExecError, IrOutcome, IrRecord, IrSchedule, IrSimError,
    };
    pub use crate::metrics::{metrics, metrics_from_events, Metrics};
    pub use crate::persist::{compare, load, save, PersistError, ScheduleDiff};
    pub use crate::profile::{profile, Profile, Step};
    pub use crate::schedule::{ProcRange, Schedule, ScheduleError, TaskRecord};
    pub use crate::tracing::{events_of, ClusterTag};
    pub use crate::transfer::{migration_secs, staging_delays, Link, StagingModel};
    pub use crate::unfused::{estimate_unfused, estimate_unfused_traced, UnfusedEstimate};
    pub use oa_sched::policy::{CampaignConfig, Granularity};
}

#[cfg(test)]
mod proptests {
    use crate::executor::{execute, ExecConfig, ScenarioPolicy};
    use oa_platform::timing::TimingTable;
    use oa_sched::estimate::estimate;
    use oa_sched::heuristics::Heuristic;
    use oa_sched::params::Instance;
    use proptest::prelude::*;

    fn arb_table() -> impl Strategy<Value = TimingTable> {
        (
            50.0f64..3000.0,
            1.0f64..400.0,
            proptest::collection::vec(0.0f64..400.0, 8),
        )
            .prop_map(|(t11, tp, bumps)| {
                let mut main = [0.0f64; 8];
                let mut acc = t11;
                for i in (0..8).rev() {
                    main[i] = acc;
                    acc += bumps[i];
                }
                TimingTable::new(main, tp).expect("non-increasing by construction")
            })
    }

    fn arb_instance() -> impl Strategy<Value = Instance> {
        (1u32..=10, 1u32..=25, 4u32..=130).prop_map(|(ns, nm, r)| Instance::new(ns, nm, r))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn schedules_validate_and_match_estimator((inst, table) in (arb_instance(), arb_table())) {
            for h in Heuristic::PAPER {
                let Ok(grouping) = h.grouping(inst, &table) else { continue };
                let sched = execute(inst, &table, &grouping, ExecConfig::default()).unwrap();
                prop_assert!(sched.validate().is_ok(), "{h:?}: invalid schedule");
                let est = estimate(inst, &table, &grouping).unwrap();
                prop_assert!((sched.makespan - est.makespan).abs() < 1e-6,
                    "{h:?}: sim {} vs estimate {}", sched.makespan, est.makespan);
            }
        }

        #[test]
        fn random_fault_plans_behave(
            (inst, table) in (arb_instance(), arb_table()),
            kills in proptest::collection::vec((0usize..4, 0.0f64..1.5), 0..4),
        ) {
            use crate::failures::{estimate_with_failures, FaultPlan, FaultyOutcome, Recovery};
            let Ok(grouping) = Heuristic::Knapsack.grouping(inst, &table) else { return Ok(()) };
            let clean = estimate(inst, &table, &grouping).unwrap().makespan;
            let plan = FaultPlan {
                failures: kills
                    .iter()
                    .map(|&(g, f)| (g % grouping.group_count().max(1), f * clean))
                    .collect(),
            };
            let out = estimate_with_failures(inst, &table, &grouping, &plan, Recovery::MonthlyCheckpoint)
                .unwrap();
            match out {
                FaultyOutcome::Completed { makespan, lost_proc_secs, months_lost } => {
                    // NOTE: failures can legitimately *shorten* the
                    // campaign when groups are heterogeneous — killing a
                    // slow group re-homes its month onto a faster one,
                    // which the non-preemptive policy would never do on
                    // its own. So the bound is the critical path, not
                    // the failure-free makespan.
                    let lb = inst.nm as f64 * table.main_secs(11);
                    prop_assert!(makespan + 1e-6 >= lb,
                        "faulty {makespan} beats the critical path {lb}");
                    if grouping.groups().iter().all(|&g| g == grouping.groups()[0]) {
                        // Uniform groups: no re-homing speedup exists.
                        prop_assert!(makespan + 1e-6 >= clean,
                            "faulty {makespan} < clean {clean} with uniform groups");
                    }
                    let bound = plan.failures.len() as f64 * 11.0 * table.main_secs(4);
                    prop_assert!(lost_proc_secs <= bound + 1e-6);
                    prop_assert!(months_lost as usize <= plan.failures.len());
                }
                FaultyOutcome::Stranded { completed_months } => {
                    prop_assert!(completed_months < inst.nbtasks());
                }
            }
        }

        #[test]
        fn traced_registry_agrees_with_post_hoc_metrics((inst, table) in (arb_instance(), arb_table())) {
            // The live metrics fold (a `Metered` sink observing the
            // executor's event stream) and the post-hoc `metrics()`
            // aggregation must agree exactly — same fold, same order,
            // same bits.
            use oa_trace::metrics::keys;
            use oa_trace::Metered;
            let Ok(grouping) = Heuristic::Knapsack.grouping(inst, &table) else { return Ok(()) };
            let mut sink = Metered::null();
            let sched = crate::executor::execute_traced(
                inst, &table, &grouping, ExecConfig::default(), &mut sink).unwrap();
            let m = crate::metrics::metrics(&sched);
            let snap = sink.registry.snapshot();
            prop_assert_eq!(snap.gauge(keys::PROC_SECS_MAIN), Some(m.main_proc_secs));
            prop_assert_eq!(snap.gauge(keys::PROC_SECS_POST), Some(m.post_proc_secs));
            prop_assert_eq!(snap.gauge(keys::MAKESPAN), Some(sched.makespan));
            prop_assert_eq!(snap.counter(keys::TASKS_MAIN), Some(inst.nbtasks()));
            prop_assert_eq!(snap.counter(keys::TASKS_POST), Some(inst.nbtasks()));
        }

        #[test]
        fn ir_execution_matches_the_list_scheduler((inst, table) in (arb_instance(), arb_table())) {
            // The generic IR executor, fed the lowered fused mesh, must
            // make exactly the decisions of the independently-written
            // moldable list scheduler with uniform max allocations —
            // bitwise times, identical record order.
            use crate::ir_exec::execute_ir;
            use oa_baselines::list_sched::{list_schedule, Allocations};
            use oa_workflow::ir::lower_fused;
            let ir = lower_fused(inst.shape());
            let got = execute_ir(&ir, &table, inst.r).unwrap();
            let want =
                list_schedule(inst, &table, &Allocations::uniform(inst.ns, 11.min(inst.r))).unwrap();
            prop_assert_eq!(got.makespan, want.makespan);
            prop_assert_eq!(got.records.len(), want.records.len());
            for (a, b) in got.records.iter().zip(&want.records) {
                let origin = ir.dag.node(a.node).origin.unwrap();
                prop_assert_eq!(origin.scenario, b.scenario);
                prop_assert_eq!(origin.month, b.month);
                prop_assert_eq!((a.procs, a.start, a.end), (b.procs, b.start, b.end));
            }
        }

        #[test]
        fn all_policies_produce_valid_schedules((inst, table) in (arb_instance(), arb_table())) {
            let Ok(grouping) = Heuristic::Knapsack.grouping(inst, &table) else { return Ok(()) };
            for policy in [ScenarioPolicy::LeastAdvanced, ScenarioPolicy::RoundRobin, ScenarioPolicy::MostAdvanced] {
                let sched = execute(inst, &table, &grouping, ExecConfig { policy }).unwrap();
                prop_assert!(sched.validate().is_ok(), "{policy:?}: invalid schedule");
                prop_assert_eq!(sched.records.len() as u64, inst.nbtasks() * 2);
            }
        }
    }
}
