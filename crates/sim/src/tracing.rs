//! Bridges between schedules and the `oa-trace` event layer.
//!
//! Two directions: [`events_of`] converts a finished [`Schedule`] into
//! the exact event stream the traced executor would have emitted for
//! it (so post-hoc exports need no re-execution), and [`ClusterTag`]
//! adapts a [`Tracer`] so a per-cluster executor run lands on the grid
//! timeline — stamped with its cluster id and shifted by the cluster's
//! staging offset.

use oa_trace::prelude::*;

use crate::schedule::Schedule;

/// Converts a schedule into task-finish events (record order — all
/// mains in completion order, then all posts) plus a final
/// `CampaignEnd`. The per-task `secs` is `end − start` of the record,
/// the same expression the metrics fold uses, so aggregates computed
/// from these events match `metrics()` bit for bit.
pub fn events_of(schedule: &Schedule) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(schedule.records.len() + 1);
    for r in &schedule.records {
        events.push(TraceEvent::at(
            r.end,
            EventKind::TaskFinish {
                task: r.task,
                first_proc: r.procs.first,
                procs: r.procs.count,
                group: r.group,
                secs: r.end - r.start,
            },
        ));
    }
    events.push(TraceEvent::at(
        schedule.makespan,
        EventKind::CampaignEnd {
            makespan: schedule.makespan,
        },
    ));
    events
}

/// Re-stamps every event with a cluster id and shifts its timestamp by
/// a fixed offset before forwarding — the adapter grid executions use
/// to put each cluster's events on the shared grid timeline (offset =
/// the cluster's stage-in delay).
#[derive(Debug)]
pub struct ClusterTag<'a, T: Tracer> {
    inner: &'a mut T,
    cluster: u32,
    offset: f64,
}

impl<'a, T: Tracer> ClusterTag<'a, T> {
    /// Tags events for `cluster`, shifting times by `offset` seconds.
    pub fn new(inner: &'a mut T, cluster: u32, offset: f64) -> Self {
        Self {
            inner,
            cluster,
            offset,
        }
    }
}

impl<T: Tracer> Tracer for ClusterTag<'_, T> {
    fn record(&mut self, mut event: TraceEvent) {
        event.t += self.offset;
        event.cluster = Some(self.cluster);
        self.inner.record(event);
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute_default, execute_traced, ExecConfig};
    use crate::metrics::metrics;
    use oa_platform::timing::TimingTable;
    use oa_sched::grouping::Grouping;
    use oa_sched::params::Instance;
    use oa_trace::metrics::keys;

    fn small_schedule() -> Schedule {
        let inst = Instance::new(2, 3, 9);
        let t = TimingTable::new([100.0; 8], 30.0).unwrap();
        execute_default(inst, &t, &Grouping::uniform(4, 2, 1)).unwrap()
    }

    #[test]
    fn events_mirror_records() {
        let s = small_schedule();
        let events = events_of(&s);
        assert_eq!(events.len(), s.records.len() + 1);
        let totals = phase_totals(&events);
        let m = metrics(&s);
        assert_eq!(totals.main_proc_secs, m.main_proc_secs);
        assert_eq!(totals.post_proc_secs, m.post_proc_secs);
        assert_eq!(totals.makespan, s.makespan);
    }

    #[test]
    fn live_trace_agrees_with_post_hoc_conversion() {
        let inst = Instance::new(2, 3, 9);
        let t = TimingTable::new([100.0; 8], 30.0).unwrap();
        let g = Grouping::uniform(4, 2, 1);
        let mut sink = VecTracer::new();
        let s = execute_traced(inst, &t, &g, ExecConfig::default(), &mut sink).unwrap();
        let live: Vec<TraceEvent> = sink
            .into_events()
            .into_iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::TaskFinish { .. } | EventKind::CampaignEnd { .. }
                )
            })
            .collect();
        assert_eq!(live, events_of(&s));
    }

    #[test]
    fn metered_execution_matches_metrics_exactly() {
        let inst = Instance::new(4, 6, 26);
        let t = TimingTable::new(
            [800.0, 420.0, 290.0, 230.0, 200.0, 180.0, 165.0, 155.0],
            30.0,
        )
        .unwrap();
        let g = Grouping::uniform(7, 3, 2);
        let mut sink = Metered::null();
        let s = execute_traced(inst, &t, &g, ExecConfig::default(), &mut sink).unwrap();
        let snap = sink.registry.snapshot();
        let m = metrics(&s);
        assert_eq!(snap.gauge(keys::PROC_SECS_MAIN), Some(m.main_proc_secs));
        assert_eq!(snap.gauge(keys::PROC_SECS_POST), Some(m.post_proc_secs));
        assert_eq!(snap.gauge(keys::MAKESPAN), Some(s.makespan));
        assert_eq!(
            snap.counter(keys::TASKS_MAIN),
            Some(s.mains().count() as u64)
        );
        assert_eq!(
            snap.counter(keys::TASKS_POST),
            Some(s.posts().count() as u64)
        );
    }

    #[test]
    fn cluster_tag_shifts_and_stamps() {
        let mut sink = VecTracer::new();
        let mut tag = ClusterTag::new(&mut sink, 3, 50.0);
        tag.record(TraceEvent::at(
            10.0,
            EventKind::CampaignEnd { makespan: 10.0 },
        ));
        let events = sink.into_events();
        assert_eq!(events[0].t, 60.0);
        assert_eq!(events[0].cluster, Some(3));
    }

    #[test]
    fn disabled_inner_disables_tag() {
        let mut null = NullTracer;
        let tag = ClusterTag::new(&mut null, 0, 0.0);
        assert!(!tag.enabled());
    }
}
