//! Steady-state cycle detection for the campaign engine's
//! fast-forward kernel.
//!
//! A fault-free campaign is NS independent scenarios of NM identical
//! monthly DAGs: once the pipeline fills, the engine state becomes
//! *periodic* — the same busy/running/idle/waiting shape recurs, only
//! shifted by a constant time offset `D` and a constant per-scenario
//! month offset `dm`. From that point on, re-simulating each cycle is
//! wasted work: the records, trace events and state deltas of one
//! cycle are a template for all the following ones.
//!
//! This module is the detector half of that optimisation. The engine
//! feeds it a state snapshot every NS processed completions (a cycle
//! always spans `NS · dm` completions, so this cadence cannot miss a
//! period); the detector hashes the time-shift-invariant shape,
//! compares against up to [`MAX_SNAPS`] earlier snapshots, and on a
//! verified match returns a [`CycleMatch`] telling the engine how many
//! whole cycles it may replay arithmetically. The engine performs the
//! replay itself (it owns the records, the chain and the tracer) from
//! the [`LogEv`] journal captured while the detector was armed.
//!
//! # When detection is sound
//!
//! The replay stamps event times as `t + j·D`. For that to be *bitwise*
//! identical to event-by-event simulation, every addition must be
//! exact, which the engine guarantees before arming the detector: all
//! task durations (and any failure instants) are integral seconds below
//! `2^53` (`oa_sched::time::exact_ticks`), so every clock value in the
//! run is an exactly-represented integer and `f64` addition never
//! rounds. The detector additionally refuses to operate while a fault
//! is pending — the engine only arms it once `next_failure` has passed
//! the end of the plan — and it caps the skip so that no scenario
//! reaches its final month inside a replayed cycle (completion events
//! change the state shape: scenarios leave the system and groups
//! disband, which only the event-by-event path handles).

/// Kernel knobs of [`crate::engine::simulate_campaign_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOpts {
    /// Detect periodic steady state and advance whole cycles
    /// arithmetically (implies the integer-time representation when
    /// eligible). Output remains bitwise identical either way.
    pub fast_forward: bool,
    /// Use the integer-tick calendar queue for the busy set when every
    /// duration is an exact integral second (falls back to the binary
    /// heap otherwise).
    pub calendar: bool,
}

impl Default for KernelOpts {
    fn default() -> Self {
        Self {
            fast_forward: true,
            calendar: true,
        }
    }
}

impl KernelOpts {
    /// The pure event-by-event baseline: no fast-forward, no calendar
    /// queue — the exact seed behaviour, kept reachable for
    /// differential tests and the kernel benches.
    #[must_use]
    pub fn event_by_event() -> Self {
        Self {
            fast_forward: false,
            calendar: false,
        }
    }
}

/// What the kernel actually did during one run — the observability
/// counterpart of [`KernelOpts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelReport {
    /// The run qualified for the integer-time representation (integral
    /// durations and failure instants, bounded horizon).
    pub integer_time: bool,
    /// Whole main-phase cycles the fast-forward replayed from template
    /// instead of simulating.
    pub main_cycles_skipped: u64,
    /// Whole post-phase cycles replayed from template during the drain.
    pub post_cycles_skipped: u64,
}

/// Snapshots kept before the detector gives up. 64 snapshots at one
/// per NS completions covers a transient of 64 candidate cycles —
/// pipelines fill in a handful.
const MAX_SNAPS: usize = 64;

/// Journal cap: if the log grows past this without a match the
/// detector gives up rather than hoard memory (the pathological case
/// is a long aperiodic run under the most-advanced policy).
const MAX_LOG: usize = 1 << 20;

/// One journaled engine event, captured while the detector is armed.
/// Times are absolute; the replay shifts them by whole cycle deltas.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LogEv {
    /// A main-task completion on group `g`.
    Finish {
        /// Completion instant.
        t: f64,
        /// Group index.
        g: u32,
        /// Scenario.
        s: u32,
        /// Month that completed.
        month: u32,
    },
    /// A dispatch of scenario `s` onto group `g` (the engine emits a
    /// `TaskDispatch` + `TaskStart` pair for it).
    Dispatch {
        /// Dispatch instant.
        t: f64,
        /// Group index.
        g: u32,
        /// Scenario.
        s: u32,
        /// Month being started.
        month: u32,
        /// Waiting-queue depth after the pop, for the trace event.
        queue_depth: u32,
    },
}

/// A verified periodic match: the engine may replay the journal window
/// `log[log_start..log_end]` `k` times, shifting times by `j·d` and
/// months by `j·dm` on replay `j`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleMatch {
    /// Cycle time delta (exact integral seconds).
    pub d: f64,
    /// Months every scenario advances per cycle.
    pub dm: u32,
    /// Whole cycles to replay (≥ 1).
    pub k: u64,
    /// Journal window start (snapshot A's log length).
    pub log_start: usize,
    /// Journal window end (current log length).
    pub log_end: usize,
    /// Chain length at snapshot A — the first chain index of the
    /// periodic region, which the post drain's own detector picks up.
    pub chain_start: usize,
    /// Completions per cycle (= NS · dm).
    pub cycle_completions: u64,
}

/// One stored state snapshot, shape fields relative to the snapshot
/// instant so that time-shifted recurrences compare equal. All offsets
/// are exact (integral-second mode), stored as raw `f64` bits.
#[derive(Debug, Default)]
struct Snap {
    /// Snapshot instant.
    t: f64,
    /// Completions processed so far.
    completions: u64,
    /// Chain length at the snapshot.
    chain_len: usize,
    /// Journal length at the snapshot.
    log_len: usize,
    /// Hash of the shape fields below.
    hash: u64,
    /// Months completed per scenario (absolute; compared modulo a
    /// uniform shift).
    months: Vec<u32>,
    /// Busy set: (finish − t) in exact bits, group — sorted pop order.
    busy: Vec<(u64, u32)>,
    /// Running groups: (group, scenario, (t − start) bits).
    running: Vec<(u32, u32, u64)>,
    /// Idle groups in assignment order.
    idle: Vec<u32>,
    /// Waiting scenarios in canonical pop-determining order.
    waiting: Vec<u32>,
}

/// A borrowed view of the engine state at a snapshot point.
pub(crate) struct SnapView<'a> {
    /// Current instant (a completion time).
    pub t: f64,
    /// Completions processed so far.
    pub completions: u64,
    /// Chain length right now.
    pub chain_len: usize,
    /// Months completed per scenario.
    pub months: &'a [u32],
    /// Busy set as (finish − t) bits and group, sorted pop order.
    pub busy: &'a [(u64, u32)],
    /// Running groups as (group, scenario, (t − start) bits).
    pub running: &'a [(u32, u32, u64)],
    /// Idle groups in assignment order.
    pub idle: &'a [u32],
    /// Waiting scenario ids in canonical order.
    pub waiting: &'a [u32],
}

/// FNV-1a over a word stream; collisions are harmless (a full
/// comparison always verifies a hash hit).
fn hash_words(words: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The steady-state detector. Lives in the engine's thread-local
/// scratch; all buffers are reused across runs.
#[derive(Debug, Default)]
pub(crate) struct Detector {
    /// Snapshot arena; only the first `n` entries are live.
    snaps: Vec<Snap>,
    /// Live snapshots.
    n: usize,
    /// Event journal since arming.
    pub(crate) log: Vec<LogEv>,
    /// Whether the journal is being captured.
    armed: bool,
    /// Gave up or already fired — no further snapshots this run.
    done: bool,
}

impl Detector {
    /// Resets for a new run.
    pub(crate) fn reset_run(&mut self) {
        self.n = 0;
        self.log.clear();
        self.armed = false;
        self.done = false;
    }

    /// A failure was processed: drop all snapshots and the journal.
    /// (The engine re-arms automatically once the plan is exhausted.)
    pub(crate) fn disturb(&mut self) {
        self.n = 0;
        self.log.clear();
        self.armed = false;
    }

    /// Whether the journal should be fed.
    pub(crate) fn armed(&self) -> bool {
        self.armed && !self.done
    }

    /// Whether the detector still wants snapshots.
    pub(crate) fn active(&self) -> bool {
        !self.done
    }

    /// Offers a snapshot. Returns a verified cycle match, after which
    /// the detector retires for the rest of the run (the remaining
    /// months fit in fewer than two cycles, so a second fast-forward
    /// cannot pay for its detection).
    pub(crate) fn observe(&mut self, view: &SnapView<'_>, nm: u32) -> Option<CycleMatch> {
        if self.done {
            return None;
        }
        if self.log.len() > MAX_LOG {
            self.give_up();
            return None;
        }
        let hash = hash_words(
            view.busy
                .iter()
                .flat_map(|&(dt, g)| [dt, u64::from(g)])
                .chain(
                    view.running
                        .iter()
                        .flat_map(|&(g, s, age)| [u64::from(g), u64::from(s), age]),
                )
                .chain(view.idle.iter().map(|&g| u64::from(g)))
                .chain(view.waiting.iter().map(|&s| u64::from(s))),
        );
        // Newest first: the most recent matching snapshot gives the
        // shortest period and therefore the smallest replay template.
        for i in (0..self.n).rev() {
            let snap = &self.snaps[i];
            if snap.hash != hash || !Self::shape_eq(snap, view) {
                continue;
            }
            let Some(dm) = Self::uniform_month_shift(&snap.months, view.months) else {
                continue;
            };
            let d = view.t - snap.t;
            debug_assert!(d > 0.0 && d.fract() == 0.0, "cycle delta must be exact");
            debug_assert_eq!(
                view.completions - snap.completions,
                u64::from(dm) * view.months.len() as u64,
                "a cycle spans NS * dm completions"
            );
            // Cap the skip so every replayed completion still re-queues
            // its scenario: months stay strictly below NM throughout.
            let k = view
                .months
                .iter()
                .map(|&m| {
                    // Matching shapes put every scenario in running or
                    // waiting, so none has completed yet.
                    debug_assert!(m < nm, "completed scenario inside a matched cycle");
                    u64::from((nm - 1 - m) / dm)
                })
                .min()
                .expect("at least one scenario");
            self.done = true; // one shot per run either way
            if k == 0 {
                return None;
            }
            return Some(CycleMatch {
                d,
                dm,
                k,
                log_start: snap.log_len,
                log_end: self.log.len(),
                chain_start: snap.chain_len,
                cycle_completions: view.completions - snap.completions,
            });
        }
        if self.n == MAX_SNAPS {
            self.give_up();
            return None;
        }
        self.store(view, hash);
        self.armed = true;
        None
    }

    fn give_up(&mut self) {
        self.done = true;
        self.n = 0;
        self.log.clear();
    }

    fn shape_eq(snap: &Snap, view: &SnapView<'_>) -> bool {
        snap.busy == view.busy
            && snap.running == view.running
            && snap.idle == view.idle
            && snap.waiting == view.waiting
    }

    /// The uniform `dm ≥ 1` with `b[s] == a[s] + dm` for every
    /// scenario, if one exists.
    fn uniform_month_shift(a: &[u32], b: &[u32]) -> Option<u32> {
        debug_assert_eq!(a.len(), b.len());
        let dm = b
            .first()
            .zip(a.first())
            .and_then(|(&b0, &a0)| b0.checked_sub(a0))?;
        (dm >= 1 && a.iter().zip(b).all(|(&x, &y)| y.checked_sub(x) == Some(dm))).then_some(dm)
    }

    /// Stores `view` in the snapshot arena, reusing buffers.
    fn store(&mut self, view: &SnapView<'_>, hash: u64) {
        if self.n == self.snaps.len() {
            self.snaps.push(Snap::default());
        }
        let snap = &mut self.snaps[self.n];
        snap.t = view.t;
        snap.completions = view.completions;
        snap.chain_len = view.chain_len;
        snap.log_len = self.log.len();
        snap.hash = hash;
        snap.months.clear();
        snap.months.extend_from_slice(view.months);
        snap.busy.clear();
        snap.busy.extend_from_slice(view.busy);
        snap.running.clear();
        snap.running.extend_from_slice(view.running);
        snap.idle.clear();
        snap.idle.extend_from_slice(view.idle);
        snap.waiting.clear();
        snap.waiting.extend_from_slice(view.waiting);
        self.n += 1;
    }
}

/// The periodic region of the post chain, handed from the main-phase
/// fast-forward to the drain: chain entries
/// `[start_idx, start_idx + cycles·len)` repeat with period `len`
/// entries / `d` seconds. The drain runs its own pool-shape detector
/// over the cycle boundaries (see `engine::drain_fused`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PostPeriodic {
    /// First chain index of the periodic region.
    pub start_idx: usize,
    /// Whole cycles in the region (the matched window plus the
    /// replayed ones).
    pub cycles: u64,
    /// Chain entries per cycle.
    pub len: usize,
    /// Cycle time delta, exact integral seconds.
    pub d: f64,
}

/// One pool snapshot at a post-phase cycle boundary: the *absolute*
/// availability of every processor (exact bits), sorted by processor
/// id. Absolute, not boundary-relative, because the pool mixes two
/// populations: the reserved post processors cycle with the chain
/// (their availabilities recur relative to the boundary), while the
/// main-phase processors sit parked at the instant they will finish
/// their last main task — a *constant* availability far in the future
/// that a relative encoding would smear across every boundary.
#[derive(Debug, Default)]
pub(crate) struct PoolSnap {
    /// Cycle index within the periodic region.
    pub cycle: u64,
    /// Boundary instant (first ready time of the cycle).
    pub t_b: f64,
    /// (processor id, absolute availability bits), sorted by id.
    pub avails: Vec<(u32, u64)>,
}

/// A pool recurrence between two boundaries: every processor either
/// kept its availability bit-for-bit (*stable* — parked, untouched by
/// the window) or advanced by exactly the boundary delta (*shifted* —
/// participating in the cycle).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolShift {
    /// Boundary time delta (exact integral seconds).
    pub delta: f64,
    /// Largest availability among shifted processors at the newer
    /// boundary.
    pub max_shifted: f64,
    /// Smallest availability among stable processors, if any. A
    /// replayed window may only pop shifted processors, so replay must
    /// stop while `max_shifted` (advancing `delta` per window) is
    /// still strictly below this.
    pub min_stable: Option<f64>,
}

/// Boundary snapshots kept before the post-phase detector gives up.
pub(crate) const MAX_POOL_SNAPS: usize = 64;

/// Builds a pool snapshot into `snap` from `(avail, proc)` pairs at
/// boundary instant `t_b`.
pub(crate) fn pool_snapshot(
    snap: &mut PoolSnap,
    cycle: u64,
    t_b: f64,
    pool: impl Iterator<Item = (f64, u32)>,
) {
    snap.cycle = cycle;
    snap.t_b = t_b;
    snap.avails.clear();
    snap.avails
        .extend(pool.map(|(avail, p)| (p, avail.to_bits())));
    snap.avails.sort_unstable_by_key(|&(p, _)| p);
}

/// Tests whether `cur` is a recurrence of `prev`: same processor set,
/// each one either stable or shifted by exactly the boundary delta.
/// Stability over a window proves the processor was never popped in it
/// (a pop re-enters strictly later), so during a shifted replay the
/// stable set is inert as long as no shifted availability crosses it.
pub(crate) fn pool_match(prev: &PoolSnap, cur: &PoolSnap) -> Option<PoolShift> {
    if prev.avails.len() != cur.avails.len() {
        return None;
    }
    let delta = cur.t_b - prev.t_b;
    if delta <= 0.0 {
        return None;
    }
    let mut max_shifted = f64::NEG_INFINITY;
    let mut min_stable = f64::INFINITY;
    let mut any_shifted = false;
    for (&(pa, ba), &(pb, bb)) in prev.avails.iter().zip(&cur.avails) {
        if pa != pb {
            return None;
        }
        if ba == bb {
            min_stable = min_stable.min(f64::from_bits(bb));
        } else if (f64::from_bits(ba) + delta).to_bits() == bb {
            any_shifted = true;
            max_shifted = max_shifted.max(f64::from_bits(bb));
        } else {
            return None;
        }
    }
    if !any_shifted {
        return None;
    }
    Some(PoolShift {
        delta,
        max_shifted,
        min_stable: min_stable.is_finite().then_some(min_stable),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        t: f64,
        completions: u64,
        months: &'a [u32],
        busy: &'a [(u64, u32)],
        running: &'a [(u32, u32, u64)],
        idle: &'a [u32],
        waiting: &'a [u32],
    ) -> SnapView<'a> {
        SnapView {
            t,
            completions,
            chain_len: completions as usize,
            months,
            busy,
            running,
            idle,
            waiting,
        }
    }

    #[test]
    fn detects_a_uniform_shift_and_caps_k() {
        let mut det = Detector::default();
        det.reset_run();
        let busy = [(100u64, 0u32), (250, 1)];
        let running = [(0u32, 0u32, 50u64), (1, 1, 10)];
        let idle: [u32; 0] = [];
        let waiting = [2u32];
        // ns = 3 scenarios, dm = 2 per cycle, cycle = 6 completions.
        let a = view(1000.0, 6, &[4, 4, 4], &busy, &running, &idle, &waiting);
        assert!(det.observe(&a, 100).is_none());
        let b = view(1600.0, 12, &[6, 6, 6], &busy, &running, &idle, &waiting);
        let m = det.observe(&b, 100).expect("periodic state must match");
        assert_eq!(m.dm, 2);
        assert_eq!(m.d, 600.0);
        assert_eq!(m.cycle_completions, 6);
        // (nm - 1 - 6) / 2 = 46 whole cycles stay below month 100.
        assert_eq!(m.k, 46);
        // One shot: the detector retires after firing.
        assert!(!det.active());
    }

    #[test]
    fn non_uniform_month_progress_never_matches() {
        let mut det = Detector::default();
        det.reset_run();
        let busy = [(10u64, 0u32)];
        let running = [(0u32, 0u32, 5u64)];
        let idle: [u32; 0] = [];
        let waiting = [1u32];
        let a = view(10.0, 2, &[1, 1], &busy, &running, &idle, &waiting);
        assert!(det.observe(&a, 50).is_none());
        // Same shape, but scenario 1 advanced twice as fast.
        let b = view(30.0, 4, &[2, 3], &busy, &running, &idle, &waiting);
        assert!(det.observe(&b, 50).is_none());
        assert!(det.active(), "a non-match keeps the detector alive");
    }

    #[test]
    fn shape_difference_never_matches() {
        let mut det = Detector::default();
        det.reset_run();
        let running = [(0u32, 0u32, 5u64)];
        let idle: [u32; 0] = [];
        let waiting = [1u32];
        let a = view(10.0, 2, &[1, 1], &[(10, 0)], &running, &idle, &waiting);
        assert!(det.observe(&a, 50).is_none());
        let b = view(30.0, 4, &[2, 2], &[(11, 0)], &running, &idle, &waiting);
        assert!(det.observe(&b, 50).is_none());
    }

    #[test]
    fn disturb_forgets_everything() {
        let mut det = Detector::default();
        det.reset_run();
        let busy = [(10u64, 0u32)];
        let running: [(u32, u32, u64); 0] = [];
        let idle = [0u32];
        let waiting: [u32; 0] = [];
        let a = view(10.0, 1, &[1], &busy, &running, &idle, &waiting);
        assert!(det.observe(&a, 50).is_none());
        assert!(det.armed());
        det.disturb();
        assert!(!det.armed());
        // The exact recurrence of snapshot A no longer matches anything.
        let b = view(20.0, 2, &[2], &busy, &running, &idle, &waiting);
        assert!(det.observe(&b, 50).is_none());
    }

    #[test]
    fn near_tail_match_retires_without_firing() {
        let mut det = Detector::default();
        det.reset_run();
        let busy = [(10u64, 0u32)];
        let running: [(u32, u32, u64); 0] = [];
        let idle = [0u32];
        let waiting: [u32; 0] = [];
        let a = view(10.0, 1, &[8], &busy, &running, &idle, &waiting);
        assert!(det.observe(&a, 10).is_none());
        // dm = 1, nm = 10, month 9: (10 - 1 - 9) / 1 = 0 cycles fit.
        let b = view(20.0, 2, &[9], &busy, &running, &idle, &waiting);
        assert!(det.observe(&b, 10).is_none());
        assert!(!det.active());
    }

    #[test]
    fn gives_up_after_the_snapshot_cap() {
        let mut det = Detector::default();
        det.reset_run();
        let running: [(u32, u32, u64); 0] = [];
        let idle = [0u32];
        let waiting: [u32; 0] = [];
        for i in 0..=MAX_SNAPS as u64 {
            // Every snapshot has a distinct busy shape: never matches.
            let busy = [(i, 0u32)];
            let v = view(i as f64, i, &[0], &busy, &running, &idle, &waiting);
            assert!(det.observe(&v, 1000).is_none());
        }
        assert!(!det.active());
    }

    #[test]
    fn pool_match_partitions_stable_and_shifted() {
        let mut a = PoolSnap::default();
        let mut b = PoolSnap::default();
        // Processors 2 and 0 cycle with the chain (+300 across the
        // window); processor 5 is parked at 9000 until the main phase
        // ends.
        pool_snapshot(
            &mut a,
            0,
            100.0,
            [(90.0, 2), (9000.0, 5), (110.0, 0)].into_iter(),
        );
        pool_snapshot(
            &mut b,
            3,
            400.0,
            [(410.0, 0), (390.0, 2), (9000.0, 5)].into_iter(),
        );
        let m = pool_match(&a, &b).expect("stable + uniformly shifted must match");
        assert_eq!(m.delta, 300.0);
        assert_eq!(m.max_shifted, 410.0);
        assert_eq!(m.min_stable, Some(9000.0));

        // A processor moving by anything but the boundary delta kills
        // the match.
        let mut c = PoolSnap::default();
        pool_snapshot(
            &mut c,
            3,
            400.0,
            [(410.0, 0), (395.0, 2), (9000.0, 5)].into_iter(),
        );
        assert!(pool_match(&a, &c).is_none());

        // All-stable pools carry no cycle to replay.
        let mut d = PoolSnap::default();
        pool_snapshot(
            &mut d,
            3,
            400.0,
            [(110.0, 0), (90.0, 2), (9000.0, 5)].into_iter(),
        );
        assert!(pool_match(&a, &d).is_none());
    }
}
