//! Golden-file tests for the Chrome trace export: the exporter is
//! deterministic (same campaign ⇒ byte-identical JSON — maps are
//! ordered, floats render canonically, no timestamps or randomness),
//! so the seeded R = 53, NS = 10 example is pinned to a checked-in
//! artifact. A diff here means the export *format* changed and the
//! golden file must be regenerated consciously (see the test body).

use oa_platform::presets::reference_cluster;
use oa_sched::grouping::Grouping;
use oa_sched::params::Instance;
use oa_sim::executor::{execute_traced, ExecConfig};
use oa_trace::chrome::chrome_trace_string;
use oa_trace::VecTracer;

/// The paper's Section 4.2 example under Improvement 1, truncated to
/// two months so the golden artifact stays reviewable.
fn example_trace() -> String {
    let inst = Instance::new(10, 2, 53);
    let table = reference_cluster(53).timing;
    let grouping = Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1);
    let mut sink = VecTracer::new();
    execute_traced(inst, &table, &grouping, ExecConfig::default(), &mut sink)
        .expect("valid grouping");
    chrome_trace_string(&sink.into_events())
}

/// Rewrites the golden artifact from the current exporter. Run
/// explicitly after an intentional format change, then review the
/// diff: `cargo test -p oa-sim --test chrome_golden -- --ignored`.
#[test]
#[ignore = "regenerates the golden artifact in-tree"]
fn regenerate_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_r53_improvement1.json"
    );
    std::fs::write(path, example_trace() + "\n").expect("writable golden file");
}

#[test]
fn export_is_deterministic_run_to_run() {
    assert_eq!(example_trace(), example_trace());
}

#[test]
fn export_matches_the_golden_file() {
    let golden = include_str!("golden/chrome_r53_improvement1.json");
    let fresh = example_trace();
    assert_eq!(
        fresh,
        golden.trim_end(),
        "Chrome export drifted from tests/golden/chrome_r53_improvement1.json; \
         if the format change is intentional, regenerate the golden file \
         (print `example_trace()` to it) and review the diff"
    );
}

#[test]
fn golden_file_is_valid_chrome_json() {
    let golden = include_str!("golden/chrome_r53_improvement1.json");
    let doc: serde_json::Value = serde_json::from_str(golden.trim_end()).expect("valid JSON");
    let serde_json::Value::Array(events) = doc.get("traceEvents").expect("traceEvents") else {
        panic!("traceEvents is not an array")
    };
    // Every event carries the mandatory Chrome fields.
    for ev in events {
        assert!(ev.get("ph").is_some(), "{ev:?} lacks ph");
        assert!(ev.get("pid").is_some(), "{ev:?} lacks pid");
    }
    // One complete slice per task execution: 10 scenarios × 2 months,
    // mains and posts.
    let slices = events
        .iter()
        .filter(|e| matches!(e.get("ph"), Some(serde_json::Value::Str(s)) if s == "X"))
        .count();
    assert_eq!(slices, 40);
}
