//! Admission control: what a submission must prove before it runs.
//!
//! The daemon admits nothing it has not statically checked. A
//! submission passes through, in order:
//!
//! 1. **shape** — `ns`/`nm` positive (`OA002`) and every enum label
//!    parsable (`PROTO003`);
//! 2. **placement** — the incremental Algorithm 1 must find a slot for
//!    every scenario (`OA005` when the grid is full or priced out);
//! 3. **grouping** — each target cluster groups its portion under the
//!    session's heuristic (`OA004`);
//! 4. **campaign checks** — `oa-analyze`'s `check_campaign` rules on
//!    the fault plan against each portion's grouping (`OA018`);
//! 5. **certification** — the static certifier brackets each portion;
//!    a certified lower bound past the requested deadline rejects
//!    (`CT001`), and the CT002 integer-kernel verdict is reported in
//!    the `Admitted` response.
//!
//! # Examples
//!
//! ```
//! use oa_service::admission::parse_submission;
//!
//! let sub = parse_submission(
//!     "s1", 5, 12, "knapsack", "least-advanced", "fused", "checkpoint", "1@5000", 0.0,
//! )
//! .unwrap();
//! assert_eq!(sub.plan.failures, vec![(1, 5000.0)]);
//! assert_eq!(sub.deadline, None);
//!
//! let err = parse_submission(
//!     "s2", 0, 12, "knapsack", "least-advanced", "fused", "checkpoint", "", 0.0,
//! )
//! .unwrap_err();
//! assert_eq!(err.code, "OA002");
//! ```

use oa_analyze::certify::{certify, Certificate};
use oa_analyze::diag::Severity;
use oa_analyze::scheduling::check_campaign;
use oa_platform::timing::TimingTable;
use oa_sched::grouping::Grouping;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};

use crate::wire::codes;

/// Why a submission was refused: a stable code and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refusal {
    /// Stable code from [`crate::wire::codes`].
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
}

impl Refusal {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

/// A submission with every field parsed into its domain type.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Session name.
    pub session: String,
    /// Scenarios to run.
    pub ns: u32,
    /// Months per scenario.
    pub nm: u32,
    /// Grouping heuristic for the session's own portions.
    pub heuristic: Heuristic,
    /// Engine configuration (policy, granularity, recovery).
    pub config: CampaignConfig,
    /// Fault plan, applied to every portion independently.
    pub plan: FaultPlan,
    /// Absolute virtual deadline; `None` when unconstrained.
    pub deadline: Option<f64>,
}

/// Parses the wire-level `Submit` fields into a [`Submission`],
/// classifying each failure: empty shape is `OA002`, everything else
/// malformed is `PROTO003`.
#[allow(clippy::too_many_arguments)]
pub fn parse_submission(
    session: &str,
    ns: u32,
    nm: u32,
    heuristic: &str,
    policy: &str,
    granularity: &str,
    recovery: &str,
    kills: &str,
    deadline: f64,
) -> Result<Submission, Refusal> {
    if session.is_empty() {
        return Err(Refusal::new(codes::BAD_FIELD, "empty session name"));
    }
    if ns == 0 || nm == 0 {
        return Err(Refusal::new(
            codes::EMPTY_CAMPAIGN,
            format!("empty campaign shape: ns={ns}, nm={nm}"),
        ));
    }
    let heuristic = heuristic_of(heuristic)?;
    let policy = ScenarioPolicy::parse(policy)
        .ok_or_else(|| Refusal::new(codes::BAD_FIELD, format!("unknown policy {policy:?}")))?;
    let granularity = match granularity {
        "fused" => Granularity::Fused,
        "unfused" => Granularity::Unfused,
        other => {
            return Err(Refusal::new(
                codes::BAD_FIELD,
                format!("unknown granularity {other:?}"),
            ))
        }
    };
    let recovery = match recovery {
        "checkpoint" => Recovery::MonthlyCheckpoint,
        "restart" => Recovery::RestartScenario,
        other => {
            return Err(Refusal::new(
                codes::BAD_FIELD,
                format!("unknown recovery {other:?}"),
            ))
        }
    };
    let plan = parse_kills(kills)?;
    if !deadline.is_finite() || deadline < 0.0 {
        return Err(Refusal::new(
            codes::BAD_FIELD,
            format!("deadline must be a non-negative finite number, got {deadline}"),
        ));
    }
    Ok(Submission {
        session: session.to_string(),
        ns,
        nm,
        heuristic,
        config: CampaignConfig {
            policy,
            granularity,
            recovery,
        },
        plan,
        deadline: (deadline > 0.0).then_some(deadline),
    })
}

/// Parses a heuristic label, accepting the same aliases as the CLI.
fn heuristic_of(name: &str) -> Result<Heuristic, Refusal> {
    Ok(match name {
        "basic" => Heuristic::Basic,
        "redistribute" | "gain1" => Heuristic::RedistributeIdle,
        "nopost" | "gain2" => Heuristic::NoPostReservation,
        "knapsack" | "gain3" => Heuristic::Knapsack,
        "knapsack-greedy" => Heuristic::KnapsackGreedy,
        other => {
            return Err(Refusal::new(
                codes::BAD_FIELD,
                format!("unknown heuristic {other:?}"),
            ))
        }
    })
}

/// Parses a `"G@T,G@T"` fault-plan spec (empty string = no faults).
pub fn parse_kills(spec: &str) -> Result<FaultPlan, Refusal> {
    let mut plan = FaultPlan::none();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (g, t) = part.split_once('@').ok_or_else(|| {
            Refusal::new(
                codes::BAD_FIELD,
                format!("bad kill {part:?}: expected GROUP@TIME"),
            )
        })?;
        let g: usize = g
            .parse()
            .map_err(|_| Refusal::new(codes::BAD_FIELD, format!("bad kill group {g:?}")))?;
        let t: f64 = t
            .parse()
            .map_err(|_| Refusal::new(codes::BAD_FIELD, format!("bad kill time {t:?}")))?;
        plan = plan.kill(g, t);
    }
    Ok(plan)
}

/// Statically checks one portion of an admitted-to-be session: the
/// `oa-analyze` campaign rules first (`OA018`), then the certifier.
/// The returned certificate carries the portion's makespan bracket and
/// integer-kernel verdict.
pub fn admit_portion(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
) -> Result<Certificate, Refusal> {
    let diags = check_campaign(config, plan, grouping);
    if let Some(err) = diags.iter().find(|d| d.severity == Severity::Error) {
        return Err(Refusal::new(codes::BAD_FAULT_PLAN, err.message.clone()));
    }
    Ok(certify(inst, table, grouping, config, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;

    #[test]
    fn labels_parse_into_domain_types() {
        let sub = parse_submission(
            "s",
            3,
            6,
            "gain3",
            "round-robin",
            "unfused",
            "restart",
            "0@100,1@200.5",
            9e6,
        )
        .unwrap();
        assert_eq!(sub.heuristic, Heuristic::Knapsack);
        assert_eq!(sub.config.policy, ScenarioPolicy::RoundRobin);
        assert_eq!(sub.config.granularity, Granularity::Unfused);
        assert_eq!(sub.config.recovery, Recovery::RestartScenario);
        assert_eq!(sub.plan.failures, vec![(0, 100.0), (1, 200.5)]);
        assert_eq!(sub.deadline, Some(9e6));
    }

    #[test]
    fn malformed_fields_are_proto003() {
        let cases = [
            (
                "s",
                1,
                1,
                "quantum",
                "least-advanced",
                "fused",
                "checkpoint",
                "",
                0.0,
            ),
            (
                "s",
                1,
                1,
                "basic",
                "psychic",
                "fused",
                "checkpoint",
                "",
                0.0,
            ),
            (
                "s",
                1,
                1,
                "basic",
                "least-advanced",
                "blended",
                "checkpoint",
                "",
                0.0,
            ),
            (
                "s",
                1,
                1,
                "basic",
                "least-advanced",
                "fused",
                "prayer",
                "",
                0.0,
            ),
            (
                "s",
                1,
                1,
                "basic",
                "least-advanced",
                "fused",
                "checkpoint",
                "1;2",
                0.0,
            ),
            (
                "s",
                1,
                1,
                "basic",
                "least-advanced",
                "fused",
                "checkpoint",
                "x@9",
                0.0,
            ),
            (
                "s",
                1,
                1,
                "basic",
                "least-advanced",
                "fused",
                "checkpoint",
                "",
                -1.0,
            ),
            (
                "",
                1,
                1,
                "basic",
                "least-advanced",
                "fused",
                "checkpoint",
                "",
                0.0,
            ),
        ];
        for (s, ns, nm, h, p, g, r, k, d) in cases {
            let err = parse_submission(s, ns, nm, h, p, g, r, k, d).unwrap_err();
            assert_eq!(err.code, codes::BAD_FIELD, "case {h}/{p}/{g}/{r}/{k}/{d}");
        }
    }

    #[test]
    fn bad_fault_plans_fail_oa018() {
        let table = PcrModel::reference().table(1.0).unwrap();
        let inst = Instance::new(3, 6, 53);
        let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
        let config = CampaignConfig::default();
        // Group 99 does not exist in any grouping of 3 scenarios.
        let plan = FaultPlan::none().kill(99, 1000.0);
        let err = admit_portion(inst, &table, &grouping, &config, &plan).unwrap_err();
        assert_eq!(err.code, codes::BAD_FAULT_PLAN);

        let ok = admit_portion(inst, &table, &grouping, &config, &FaultPlan::none()).unwrap();
        assert!(ok.bounds.lo > 0.0 && ok.bounds.hi.is_finite());
    }
}
