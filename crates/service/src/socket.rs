//! Unix-socket transport for the daemon.
//!
//! `oa serve --socket PATH` binds a Unix domain socket and serves
//! clients one at a time: the accept loop is sequential — no threads,
//! no wall clock — so the daemon stays deterministic and the single
//! virtual clock stays coherent across connections. A client connects,
//! plays any number of request lines, and disconnects; the next client
//! sees the state the previous one left. `Shutdown` ends the loop.
//!
//! Pipe mode ([`crate::daemon::run_pipe`]) is the mode every test and
//! CI job uses; the socket is the same loop over a different byte
//! stream.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;

use crate::daemon::Service;
use crate::wire::render_response;

/// Binds `path` and serves connections sequentially until a client
/// sends `Shutdown`. The socket file is removed on exit.
pub fn run_socket(service: &mut Service, path: &Path) -> std::io::Result<()> {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    while !service.is_shut_down() {
        let (stream, _) = listener.accept()?;
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            for resp in service.handle_line(&line) {
                writeln!(writer, "{}", render_response(&resp))?;
            }
            writer.flush()?;
            if service.is_shut_down() {
                break;
            }
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
