//! # oa-service — campaign-as-a-service
//!
//! The paper's client submits one campaign, waits, and reads one
//! report. This crate turns that batch story into a *service*: a
//! long-running daemon that accepts campaign submissions over
//! line-delimited JSON, admits them through the `oa-analyze` rules,
//! simulates each admitted session on a shared virtual clock, and
//! re-runs the paper's Algorithm 1 *incrementally* as sessions arrive
//! and complete and clusters join, leave and fail.
//!
//! * [`wire`] — the request/response enums, the stable error codes,
//!   and the line parser (`docs/PROTOCOL.md` is the reference);
//! * [`admission`] — the static pipeline every submission must pass
//!   (shape, placement, grouping, campaign checks, certification);
//! * [`daemon`] — the [`daemon::Service`] state machine and the pipe
//!   runners;
//! * [`socket`] — the Unix-socket transport (Unix only; pipe mode is
//!   the portable, test-facing transport).
//!
//! The daemon is deterministic by construction: it never reads a wall
//! clock, never spawns a thread, and never iterates an unordered map,
//! so replaying a scripted transcript yields a byte-identical session
//! log on every run and at every `--jobs` setting.
//!
//! # Examples
//!
//! A complete session over the scripted pipe (one request per line —
//! the protocol is strictly line-delimited):
//!
//! ```
//! use oa_service::prelude::*;
//!
//! let cfg = ServiceConfig { capacity: 32, ..Default::default() };
//! let mut service = Service::new(cfg, 1);
//! let log = run_script(
//!     &mut service,
//!     r#"
//! {"Hello": {"version": 1}}
//! {"ClusterJoin": {"name": "ref", "preset": "reference", "resources": 53}}
//! {"Submit": {"session": "s1", "ns": 5, "nm": 12, "heuristic": "knapsack", "policy": "least-advanced", "granularity": "fused", "recovery": "checkpoint", "kills": "", "deadline": 0.0}}
//! {"Drain": {}}
//! {"Shutdown": {}}
//! "#,
//! );
//! assert!(log.contains("\"Welcome\""));
//! assert!(log.contains("\"Admitted\""));
//! assert!(log.contains("\"Completed\""));
//! assert!(log.contains("\"Bye\""));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod daemon;
pub mod socket;
pub mod wire;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::admission::{parse_submission, Refusal, Submission};
    pub use crate::daemon::{run_pipe, run_script, Service, ServiceConfig};
    pub use crate::wire::{
        codes, parse_request, render_response, ClusterLoad, PortionInfo, Request, Response,
    };
}
