//! Line-delimited JSON wire format of the campaign service.
//!
//! One request per line in, one or more responses per line out. Every
//! line is a single-key JSON object whose key names the message kind
//! (the externally-tagged rendering of the enums below); the protocol
//! is fully documented in `docs/PROTOCOL.md`, and the error/rejection
//! codes live in [`codes`]. The execution-level payloads —
//! [`CampaignReport`] and its `ExecReport`s — are the middleware
//! protocol types carried verbatim, so a campaign completed over the
//! wire reads exactly like one completed in process.
//!
//! # Examples
//!
//! ```
//! use oa_service::wire::{parse_request, Request};
//!
//! let req = parse_request(r#"{"Advance": {"to": 3600.0}}"#).unwrap();
//! assert_eq!(req, Request::Advance { to: 3600.0 });
//!
//! let err = parse_request(r#"{"Warp": {}}"#).unwrap_err();
//! assert_eq!(err.code, "PROTO002");
//! ```

use serde::{Deserialize, Serialize};

use oa_middleware::protocol::CampaignReport;

/// Stable error and rejection codes of the service protocol.
///
/// `PROTO…` codes are transport-level (malformed or unacceptable
/// requests); admission rejections reuse the analyzer rule ids
/// (`OA…`/`CT…`) of the `oa-analyze` rule that refused the submission,
/// so an operator can look the failure up in `oa analyze --rules`.
pub mod codes {
    /// The line is not valid JSON.
    pub const BAD_JSON: &str = "PROTO001";
    /// The line is JSON but not a known request kind.
    pub const UNKNOWN_MESSAGE: &str = "PROTO002";
    /// A known request with missing, mistyped or unparsable fields.
    pub const BAD_FIELD: &str = "PROTO003";
    /// `Hello` announced an incompatible protocol version.
    pub const VERSION_MISMATCH: &str = "PROTO004";
    /// A session or cluster name is already taken.
    pub const DUPLICATE_ID: &str = "PROTO005";
    /// The named session or cluster does not exist.
    pub const UNKNOWN_ID: &str = "PROTO006";
    /// The cluster still holds planned scenarios and cannot leave.
    pub const BUSY: &str = "PROTO007";
    /// `Advance`/`ClusterFail` targets an instant before the clock.
    pub const TIME_REGRESSION: &str = "PROTO008";
    /// `SubmitWorkflow` carried a structurally malformed DAG: empty
    /// graph, cycle, dangling edge, or duplicate node name.
    pub const MALFORMED_WORKFLOW: &str = "PROTO009";
    /// `VariantSweep` carried an invalid batch spec: unknown label,
    /// empty axis, zero variant count, or an infeasible shape.
    pub const BAD_SWEEP: &str = "PROTO010";

    /// Admission: the campaign shape is empty (`ns` or `nm` is zero).
    pub const EMPTY_CAMPAIGN: &str = "OA002";
    /// Admission: a target cluster cannot group the portion.
    pub const NO_GROUPING: &str = "OA004";
    /// Admission: the grid has no capacity left for the submission.
    pub const OVER_CAPACITY: &str = "OA005";
    /// Cluster join: the cluster fails the platform sanity rule.
    pub const CLUSTER_INSANE: &str = "OA016";
    /// Admission: the fault plan violates the campaign checks.
    pub const BAD_FAULT_PLAN: &str = "OA018";
    /// Admission: the certified lower bound already misses the
    /// requested deadline.
    pub const DEADLINE_UNREACHABLE: &str = "CT001";
}

/// Everything a client can send, one JSON object per line.
///
/// All fields are mandatory — the vendored deserializer has no
/// defaults — so "no deadline" is spelled `0.0` and "no kills" is the
/// empty string. `oa submit` fills the boilerplate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake: announce the protocol revision.
    Hello {
        /// Must equal [`oa_middleware::protocol::PROTOCOL_VERSION`].
        version: u32,
    },
    /// A cluster joins the grid.
    ClusterJoin {
        /// Grid-unique cluster name.
        name: String,
        /// Timing preset: `reference` or one of the paper's five
        /// benchmark clusters (`sagittaire`, `capricorne`,
        /// `chinqchint`, `grillon`, `grelon`).
        preset: String,
        /// Processors the cluster contributes.
        resources: u32,
    },
    /// An idle cluster leaves the grid cleanly.
    ClusterLeave {
        /// Cluster to remove; refused while it holds planned work.
        name: String,
    },
    /// A cluster fails at a virtual instant; its unfinished portions
    /// are displaced and replanned onto the survivors.
    ClusterFail {
        /// Cluster that dies.
        name: String,
        /// Virtual instant of the failure, seconds.
        at: f64,
    },
    /// Submit a campaign session.
    Submit {
        /// Service-unique session name.
        session: String,
        /// Scenarios to run.
        ns: u32,
        /// Months per scenario.
        nm: u32,
        /// Grouping heuristic label (`basic`, `redistribute`,
        /// `nopost`, `knapsack`, `knapsack-greedy`).
        heuristic: String,
        /// Scenario policy label (`least-advanced`, `round-robin`,
        /// `most-advanced`).
        policy: String,
        /// `fused` or `unfused`.
        granularity: String,
        /// `checkpoint` or `restart`.
        recovery: String,
        /// Fault plan, `"G@T,G@T"` pairs; empty string for none.
        kills: String,
        /// Virtual deadline, seconds; `0.0` for none. Enforced against
        /// the certified lower bound at admission (CT001).
        deadline: f64,
    },
    /// Submit a campaign session described as a workflow-IR spec
    /// (the `oa_workflow::ir::from_value` document) instead of an
    /// `(ns, nm, granularity)` triple. Recognized ocean-atmosphere
    /// preset meshes admit exactly like the equivalent `Submit`;
    /// malformed DAGs are refused with `PROTO009`.
    SubmitWorkflow {
        /// Service-unique session name.
        session: String,
        /// The workflow spec: `{"preset": {...}}` or
        /// `{"nodes": [...], "edges": [...]}`.
        workflow: serde::Value,
        /// Grouping heuristic label, as in `Submit`.
        heuristic: String,
        /// Scenario policy label, as in `Submit`.
        policy: String,
        /// `checkpoint` or `restart`. Granularity is not a field: the
        /// workflow itself is fused or unfused.
        recovery: String,
        /// Fault plan, `"G@T,G@T"` pairs; empty string for none.
        kills: String,
        /// Virtual deadline, seconds; `0.0` for none.
        deadline: f64,
    },
    /// Execute a mass-batch variant sweep (`oa_sim::batch`) and
    /// return its deterministic aggregate. The sweep runs to
    /// completion inside the request — it does not create a session
    /// or touch the virtual clock — and prices its groupings through
    /// the daemon's planning memo, so repeated sweeps over the same
    /// timing rectangle replay their knapsack tables. Invalid specs
    /// are refused with `PROTO010`.
    VariantSweep {
        /// The batch-spec document, same schema as `oa sim --batch`
        /// (every field optional; defaults are the 10⁴-variant
        /// reference Monte Carlo sweep).
        spec: serde::Value,
    },
    /// Query one session's state at the current virtual instant.
    Status {
        /// Session to query.
        session: String,
    },
    /// Advance the virtual clock, completing every session that
    /// finishes on the way.
    Advance {
        /// Target instant, seconds; must not precede the clock.
        to: f64,
    },
    /// Advance until every admitted session has completed.
    Drain {},
    /// Render the service metrics registry.
    Metrics {},
    /// Orderly shutdown: answer `Bye` and stop reading.
    Shutdown {},
}

/// Request kind names, for unknown-message classification.
pub const REQUEST_KINDS: [&str; 12] = [
    "Hello",
    "ClusterJoin",
    "ClusterLeave",
    "ClusterFail",
    "Submit",
    "SubmitWorkflow",
    "VariantSweep",
    "Status",
    "Advance",
    "Drain",
    "Metrics",
    "Shutdown",
];

/// One cluster's share of the current plan, by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterLoad {
    /// Cluster name.
    pub name: String,
    /// Scenarios currently planned onto it.
    pub scenarios: u32,
}

/// One cluster's slice of an admitted session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortionInfo {
    /// Service-assigned cluster id.
    pub cluster: u32,
    /// Cluster name.
    pub name: String,
    /// Session-scoped scenario ids placed on this cluster.
    pub scenarios: Vec<u32>,
    /// Virtual start instant (admission time or when the cluster
    /// frees up, whichever is later).
    pub start: f64,
    /// Simulated makespan of the portion; `null` when stranded.
    pub makespan: Option<f64>,
    /// Absolute virtual finish instant; `null` when stranded.
    pub finish: Option<f64>,
    /// The grouping the portion runs under, rendered.
    pub grouping: String,
}

/// Everything the service can answer, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// The protocol revision the service speaks.
        version: u32,
        /// Service identifier.
        service: String,
    },
    /// A cluster joined; the plan shows the rebalanced loads.
    ClusterUp {
        /// Cluster name.
        name: String,
        /// Service-assigned cluster id.
        id: u32,
        /// Processors it contributes.
        resources: u32,
        /// Planned load per cluster after the join.
        plan: Vec<ClusterLoad>,
    },
    /// A cluster left cleanly.
    ClusterGone {
        /// Cluster name.
        name: String,
        /// Planned load per cluster after the leave.
        plan: Vec<ClusterLoad>,
    },
    /// A cluster failed; displaced sessions follow as `Replanned` or
    /// `Stranded` responses.
    ClusterFailed {
        /// Cluster name.
        name: String,
        /// Virtual instant of the failure.
        at: f64,
        /// Sessions that lost unfinished work, in admission order.
        displaced: Vec<String>,
        /// Planned load per surviving cluster.
        plan: Vec<ClusterLoad>,
    },
    /// A submission passed admission.
    Admitted {
        /// Session name.
        session: String,
        /// Admission instant (the virtual clock).
        at: f64,
        /// Per-cluster slices of the session.
        portions: Vec<PortionInfo>,
        /// Predicted absolute finish; `null` when a portion stranded.
        predicted_finish: Option<f64>,
        /// Certified lower bound on the absolute finish (CT001 gate).
        bound_lo: f64,
        /// Certified upper bound; `null` when the fault plan makes the
        /// finish unbounded.
        bound_hi: Option<f64>,
        /// Whether every portion qualifies for the integer-time
        /// kernel (the CT002 verdict).
        integer_kernel: bool,
        /// Planned load per cluster after the admission.
        plan: Vec<ClusterLoad>,
    },
    /// A submission was refused; the session does not exist.
    Rejected {
        /// Session name from the submission.
        session: String,
        /// Stable code from [`codes`].
        code: String,
        /// Human-readable reason.
        message: String,
    },
    /// A displaced session was re-placed onto the surviving grid.
    Replanned {
        /// Session name.
        session: String,
        /// Replan instant.
        at: f64,
        /// The replacement portions.
        portions: Vec<PortionInfo>,
        /// Months of work lost to the failure so far.
        months_lost: u32,
    },
    /// Answer to `VariantSweep`: the deterministic sweep aggregate.
    /// The `checksum` fingerprints every variant outcome bitwise, so
    /// two services given the same spec must answer byte-identically.
    SweepReport {
        /// Variants executed.
        variants: u64,
        /// Variants that completed.
        completed: u64,
        /// Variants stranded.
        stranded: u64,
        /// Grid shapes enumerated by the spec.
        shapes: u64,
        /// Shapes that qualified for a shared kernel head.
        heads: u64,
        /// Smallest completed makespan (0 when none completed).
        makespan_min: f64,
        /// Largest completed makespan (0 when none completed).
        makespan_max: f64,
        /// Mean completed makespan (0 when none completed).
        makespan_mean: f64,
        /// Total months lost across variants.
        months_lost_total: u64,
        /// Total crash losses, processor-seconds.
        lost_proc_secs_total: f64,
        /// FNV-1a fingerprint over every variant row, hex.
        checksum: String,
        /// Planning-memo makespan queries answered from cache.
        memo_hits: u64,
        /// Planning-memo makespan queries computed fresh.
        memo_misses: u64,
        /// Knapsack DP tables built for the sweep's shapes (reused
        /// across variants and later identical joins).
        memo_dp_builds: u64,
    },
    /// Answer to `Status`.
    State {
        /// Session name.
        session: String,
        /// The current virtual instant.
        at: f64,
        /// `queued`, `running`, `completed` or `stranded`.
        lifecycle: String,
        /// Completed months across all portions, when resolvable.
        months_done: Option<u32>,
        /// Predicted or actual absolute finish; `null` when stranded.
        finish: Option<f64>,
    },
    /// A session finished as the clock advanced.
    Completed {
        /// Session name.
        session: String,
        /// Absolute virtual finish instant.
        finish: f64,
        /// Months lost to failures over the session's lifetime.
        months_lost: u32,
        /// The middleware campaign report, verbatim.
        report: CampaignReport,
        /// Planned load per cluster after the slots freed.
        plan: Vec<ClusterLoad>,
    },
    /// A session can never finish: every group died or no capacity
    /// survived a failure.
    Stranded {
        /// Session name.
        session: String,
        /// Instant the stranding was established.
        at: f64,
        /// Months completed before the session went dark.
        completed_months: u64,
    },
    /// Acknowledges `Advance`.
    Advanced {
        /// The new virtual instant.
        to: f64,
        /// Sessions completed by this advance.
        completed: u32,
    },
    /// Acknowledges `Drain`.
    Drained {
        /// The virtual instant after draining.
        at: f64,
        /// Sessions completed by the drain.
        completed: u32,
    },
    /// Answer to `Metrics`: the registry rendered as text.
    MetricsReport {
        /// `render_text()` of the metrics snapshot.
        text: String,
    },
    /// Acknowledges `Shutdown`; the service stops reading.
    Bye {
        /// The final virtual instant.
        at: f64,
        /// Sessions admitted over the service lifetime.
        admitted: u64,
        /// Sessions completed over the service lifetime.
        completed: u64,
    },
    /// A request failed; nothing changed.
    Error {
        /// Stable code from [`codes`].
        code: String,
        /// Human-readable reason.
        message: String,
    },
}

/// A transport-level parse failure: which [`codes`] entry fired, and
/// why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// `PROTO001`, `PROTO002` or `PROTO003`.
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
}

/// Parses one request line, classifying failures into the three
/// transport codes: invalid JSON (`PROTO001`), an unknown message
/// kind (`PROTO002`), or bad fields inside a known kind (`PROTO003`).
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let value: serde::Value = serde_json::from_str(line).map_err(|e| ParseError {
        code: codes::BAD_JSON,
        message: format!("invalid JSON: {e}"),
    })?;
    match &value {
        serde::Value::Object(pairs) if pairs.len() == 1 => {
            let kind = pairs[0].0.as_str();
            if !REQUEST_KINDS.contains(&kind) {
                return Err(ParseError {
                    code: codes::UNKNOWN_MESSAGE,
                    message: format!("unknown request kind {kind:?}"),
                });
            }
        }
        _ => {
            return Err(ParseError {
                code: codes::UNKNOWN_MESSAGE,
                message: "a request is a single-key JSON object".to_string(),
            })
        }
    }
    Request::from_value(&value).map_err(|e| ParseError {
        code: codes::BAD_FIELD,
        message: e.to_string(),
    })
}

/// Serializes one response as a single JSON line (no trailing
/// newline).
#[must_use]
pub fn render_response(resp: &Response) -> String {
    serde_json::to_string(resp).expect("responses always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello { version: 1 },
            Request::ClusterJoin {
                name: "sagittaire".into(),
                preset: "sagittaire".into(),
                resources: 64,
            },
            Request::Submit {
                session: "s1".into(),
                ns: 5,
                nm: 12,
                heuristic: "knapsack".into(),
                policy: "least-advanced".into(),
                granularity: "fused".into(),
                recovery: "checkpoint".into(),
                kills: "".into(),
                deadline: 0.0,
            },
            Request::SubmitWorkflow {
                session: "w1".into(),
                workflow: oa_workflow::ir::preset_value(
                    oa_workflow::chain::ExperimentShape::new(3, 12),
                    true,
                ),
                heuristic: "knapsack".into(),
                policy: "least-advanced".into(),
                recovery: "checkpoint".into(),
                kills: "".into(),
                deadline: 0.0,
            },
            Request::VariantSweep {
                spec: serde_json::from_str(r#"{"r": 30, "ns": 4, "variants": 8}"#).unwrap(),
            },
            Request::Drain {},
            Request::Shutdown {},
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert_eq!(parse_request(&line).unwrap(), req, "line {line}");
        }
    }

    #[test]
    fn parse_failures_classify() {
        assert_eq!(parse_request("{nope").unwrap_err().code, "PROTO001");
        assert_eq!(parse_request("[1,2]").unwrap_err().code, "PROTO002");
        assert_eq!(
            parse_request(r#"{"Teleport": {}}"#).unwrap_err().code,
            "PROTO002"
        );
        let err = parse_request(r#"{"Advance": {}}"#).unwrap_err();
        assert_eq!(err.code, "PROTO003");
        assert!(err.message.contains("to"), "message names the field");
    }

    #[test]
    fn responses_serialize_without_nonfinite_floats() {
        let resp = Response::Admitted {
            session: "s".into(),
            at: 0.0,
            portions: vec![],
            predicted_finish: None,
            bound_lo: 1.0,
            bound_hi: None,
            integer_kernel: true,
            plan: vec![],
        };
        let line = render_response(&resp);
        assert!(line.contains("\"bound_hi\":null"));
        assert!(!line.contains("inf"));
    }
}
