//! The campaign service daemon: multi-tenant sessions on one virtual
//! clock.
//!
//! A [`Service`] owns the grid (clusters join, leave and fail at run
//! time), an [`IncrementalRepartition`] planning state, and every
//! admitted session. Requests mutate that state through
//! [`Service::handle`]; the pipe runners ([`run_pipe`],
//! [`run_script`]) feed it one JSON line at a time.
//!
//! Two invariants shape everything here:
//!
//! * **admission before execution** — no session exists unless the
//!   full admission pipeline of [`crate::admission`] accepted it;
//! * **determinism** — the daemon never reads a wall clock, spawns a
//!   thread, or iterates an unordered map, so a scripted transcript
//!   produces a byte-identical session log on every run and at every
//!   `--jobs` setting (the worker pool only builds performance
//!   vectors, which `oa-par` keeps bit-identical).
//!
//! Planning versus execution: scenario *placement* uses a
//! service-wide planning model (knapsack vectors at a fixed
//! `planning_nm`), while each admitted portion *executes* under the
//! session's own heuristic, policy, granularity, recovery and fault
//! plan. The plan decides *where* scenarios go; the session decides
//! *how* they run there.

use std::collections::BTreeMap;

use oa_middleware::protocol::{CampaignReport, ExecReport, ProtocolEvent, PROTOCOL_VERSION};
use oa_par::Pool;
use oa_platform::cluster::{Cluster, ClusterId};
use oa_platform::presets::{preset_cluster, reference_cluster, PRESET_CLUSTERS};
use oa_sched::heuristics::Heuristic;
use oa_sched::incremental::IncrementalRepartition;
use oa_sched::memo::PlanMemo;
use oa_sched::params::Instance;
use oa_sched::policy::FaultPlan;
use oa_sim::batch::{run_batch_with, BatchSpec};
use oa_sim::driver::{SessionDriver, SessionState};
use oa_trace::metrics::{self, MetricsRegistry};
use oa_workflow::ir::{recognize, IrClass, SpecError};

use crate::admission::{admit_portion, parse_submission, Refusal, Submission};
use crate::wire::{codes, parse_request, render_response, ClusterLoad, PortionInfo, Response};

/// Tunables fixed at service start.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Grid-wide concurrent-scenario capacity: the coverage of every
    /// performance vector, hence the most scenarios that can be
    /// planned at once. Each cluster join prices `capacity` scenario
    /// counts through the planning heuristic (parallelised over the
    /// worker pool), so very large capacities make joins expensive.
    pub capacity: u32,
    /// Months-per-scenario the *planning* vectors assume. Sessions
    /// execute with their own `nm`; this one only shapes placement.
    pub planning_nm: u32,
    /// Heuristic the planning vectors are priced with.
    pub planning_heuristic: Heuristic,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            planning_nm: 60,
            planning_heuristic: Heuristic::Knapsack,
        }
    }
}

/// One live cluster.
struct ClusterState {
    /// Service-assigned id, stable for the cluster's lifetime.
    id: u32,
    /// The platform cluster (name, resources, timing table).
    cluster: Cluster,
    /// Virtual instant the cluster finishes its last planned portion.
    free_at: f64,
}

/// One cluster's slice of a session.
struct Portion {
    /// Service cluster id the slice runs on.
    cluster_id: u32,
    /// Cluster name (survives the cluster's own departure).
    cluster_name: String,
    /// Session-scoped scenario ids.
    scenarios: Vec<u32>,
    /// Rendered grouping.
    grouping: String,
    /// The pinned simulation.
    driver: SessionDriver,
    /// Whether the planning slots were given back (portion finished,
    /// failed, or stranded at admission).
    released: bool,
}

impl Portion {
    fn info(&self) -> PortionInfo {
        PortionInfo {
            cluster: self.cluster_id,
            name: self.cluster_name.clone(),
            scenarios: self.scenarios.clone(),
            start: self.driver.start(),
            makespan: self.driver.makespan(),
            finish: self.driver.finish(),
            grouping: self.grouping.clone(),
        }
    }

    /// Months this portion is responsible for.
    fn months(&self, nm: u32) -> u32 {
        self.scenarios.len() as u32 * nm
    }
}

/// Terminal state of a session.
enum Lifecycle {
    /// Still queued or running.
    Active,
    /// Finished at the carried instant.
    Completed,
    /// Will never finish.
    Stranded,
}

/// One admitted session.
struct Session {
    name: String,
    /// Admission sequence number; doubles as the middleware request
    /// correlation id in the completion report.
    seq: u64,
    submission: Submission,
    portions: Vec<Portion>,
    lifecycle: Lifecycle,
    /// Months destroyed by cluster failures (replans).
    months_lost: u32,
}

impl Session {
    /// Max portion finish; `None` when any portion stranded.
    fn finish(&self) -> Option<f64> {
        let mut out = 0.0f64;
        for p in &self.portions {
            out = out.max(p.driver.finish()?);
        }
        Some(out)
    }

    /// Completed months across portions at instant `t`, when every
    /// running portion's schedule resolves month progress.
    fn months_done_at(&self, t: f64) -> Option<u32> {
        let nm = self.submission.nm;
        let mut total = 0u32;
        for p in &self.portions {
            total += match p.driver.state_at(t) {
                SessionState::Pending => 0,
                SessionState::Completed { .. } => p.months(nm),
                SessionState::Stranded { completed_months } => completed_months as u32,
                SessionState::Running { months_done } => months_done?,
            };
        }
        Some(total)
    }
}

/// The daemon. See the module docs for the model.
pub struct Service {
    cfg: ServiceConfig,
    pool: Pool,
    /// The virtual clock, seconds.
    now: f64,
    clusters: Vec<ClusterState>,
    next_cluster_id: u32,
    rep: IncrementalRepartition,
    sessions: Vec<Session>,
    /// Session name → index in `sessions`.
    index: BTreeMap<String, usize>,
    next_seq: u64,
    /// The planning memo: knapsack DP tables and makespan scans shared
    /// by `ClusterJoin` pricing and `VariantSweep` execution.
    memo: PlanMemo,
    metrics: MetricsRegistry,
    shut_down: bool,
    admitted_total: u64,
    completed_total: u64,
}

impl Service {
    /// A fresh service with no clusters and no sessions.
    #[must_use]
    pub fn new(cfg: ServiceConfig, jobs: usize) -> Self {
        Self {
            cfg,
            pool: Pool::new(jobs),
            now: 0.0,
            clusters: Vec::new(),
            next_cluster_id: 0,
            rep: IncrementalRepartition::new(Vec::new()),
            sessions: Vec::new(),
            index: BTreeMap::new(),
            next_seq: 1,
            memo: PlanMemo::new(),
            metrics: MetricsRegistry::new(),
            shut_down: false,
            admitted_total: 0,
            completed_total: 0,
        }
    }

    /// The current virtual instant.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether `Shutdown` was processed; runners stop reading.
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.shut_down
    }

    /// The service metrics registry (counters, gauges, histograms).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Records an externally measured latency into a service
    /// histogram. The daemon itself never reads a wall clock — the
    /// bench harness times `handle()` calls and feeds the
    /// `service_admit_latency_secs` / `service_decision_latency_secs`
    /// histograms through this hook. Buckets are the sub-second
    /// [`metrics::LATENCY_BUCKETS`] — scheduling decisions are
    /// microsecond-scale, far below the default virtual-time buckets.
    pub fn observe_latency(&mut self, key: &str, secs: f64) {
        self.metrics
            .observe_in(key, &metrics::LATENCY_BUCKETS, secs);
    }

    /// Parses and handles one request line.
    pub fn handle_line(&mut self, line: &str) -> Vec<Response> {
        match parse_request(line) {
            Ok(req) => self.handle(req),
            Err(e) => vec![Response::Error {
                code: e.code.to_string(),
                message: e.message,
            }],
        }
    }

    /// Handles one request, returning every response it provokes, in
    /// order.
    pub fn handle(&mut self, req: crate::wire::Request) -> Vec<Response> {
        use crate::wire::Request;
        match req {
            Request::Hello { version } => self.hello(version),
            Request::ClusterJoin {
                name,
                preset,
                resources,
            } => self.cluster_join(&name, &preset, resources),
            Request::ClusterLeave { name } => self.cluster_leave(&name),
            Request::ClusterFail { name, at } => self.cluster_fail(&name, at),
            Request::Submit {
                session,
                ns,
                nm,
                heuristic,
                policy,
                granularity,
                recovery,
                kills,
                deadline,
            } => self.submit(
                &session,
                ns,
                nm,
                &heuristic,
                &policy,
                &granularity,
                &recovery,
                &kills,
                deadline,
            ),
            Request::SubmitWorkflow {
                session,
                workflow,
                heuristic,
                policy,
                recovery,
                kills,
                deadline,
            } => self.submit_workflow(
                &session, &workflow, &heuristic, &policy, &recovery, &kills, deadline,
            ),
            Request::VariantSweep { spec } => self.variant_sweep(&spec),
            Request::Status { session } => self.status(&session),
            Request::Advance { to } => self.advance(to),
            Request::Drain {} => self.drain(),
            Request::Metrics {} => vec![Response::MetricsReport {
                text: self.metrics.snapshot().render_text(),
            }],
            Request::Shutdown {} => {
                self.shut_down = true;
                vec![Response::Bye {
                    at: self.now,
                    admitted: self.admitted_total,
                    completed: self.completed_total,
                }]
            }
        }
    }

    fn error(code: &str, message: impl Into<String>) -> Vec<Response> {
        vec![Response::Error {
            code: code.to_string(),
            message: message.into(),
        }]
    }

    fn hello(&self, version: u32) -> Vec<Response> {
        if version != PROTOCOL_VERSION {
            return Self::error(
                codes::VERSION_MISMATCH,
                format!("service speaks protocol {PROTOCOL_VERSION}, client sent {version}"),
            );
        }
        vec![Response::Welcome {
            version: PROTOCOL_VERSION,
            service: "oa-service".to_string(),
        }]
    }

    /// Planned load per cluster, in join order.
    fn plan_loads(&self) -> Vec<ClusterLoad> {
        self.clusters
            .iter()
            .zip(self.rep.counts())
            .map(|(c, &k)| ClusterLoad {
                name: c.cluster.name.clone(),
                scenarios: k,
            })
            .collect()
    }

    fn cluster_pos(&self, name: &str) -> Option<usize> {
        self.clusters.iter().position(|c| c.cluster.name == name)
    }

    fn cluster_join(&mut self, name: &str, preset: &str, resources: u32) -> Vec<Response> {
        if self.cluster_pos(name).is_some() {
            return Self::error(
                codes::DUPLICATE_ID,
                format!("cluster {name:?} already joined"),
            );
        }
        if resources < 4 {
            return Self::error(
                codes::CLUSTER_INSANE,
                format!("cluster {name:?} has {resources} processors; the smallest group needs 4"),
            );
        }
        let known = PRESET_CLUSTERS.iter().any(|(n, ..)| *n == preset);
        let template = if preset == "reference" {
            reference_cluster(resources)
        } else if known {
            preset_cluster(preset, resources)
        } else {
            return Self::error(codes::BAD_FIELD, format!("unknown preset {preset:?}"));
        };
        let cluster = Cluster::new(name, resources, template.timing);
        let id = self.next_cluster_id;
        self.next_cluster_id += 1;
        let vector = self.memo.performance_vector(
            ClusterId(id),
            resources,
            &cluster.timing,
            self.cfg.planning_heuristic,
            self.cfg.capacity,
            self.cfg.planning_nm,
            &self.pool,
        );
        self.rep.join(vector);
        self.clusters.push(ClusterState {
            id,
            cluster,
            free_at: self.now,
        });
        self.metrics
            .set(metrics::keys::CLUSTERS_LIVE, self.clusters.len() as f64);
        vec![Response::ClusterUp {
            name: name.to_string(),
            id,
            resources,
            plan: self.plan_loads(),
        }]
    }

    fn cluster_leave(&mut self, name: &str) -> Vec<Response> {
        let Some(pos) = self.cluster_pos(name) else {
            return Self::error(codes::UNKNOWN_ID, format!("unknown cluster {name:?}"));
        };
        let id = self.clusters[pos].id;
        if self.rep.count_of(ClusterId(id)) > 0 {
            return Self::error(
                codes::BUSY,
                format!("cluster {name:?} still holds planned scenarios; drain or fail it"),
            );
        }
        self.rep.leave(ClusterId(id));
        self.clusters.remove(pos);
        self.metrics
            .set(metrics::keys::CLUSTERS_LIVE, self.clusters.len() as f64);
        vec![Response::ClusterGone {
            name: name.to_string(),
            plan: self.plan_loads(),
        }]
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &mut self,
        session: &str,
        ns: u32,
        nm: u32,
        heuristic: &str,
        policy: &str,
        granularity: &str,
        recovery: &str,
        kills: &str,
        deadline: f64,
    ) -> Vec<Response> {
        let reject = |code: &str, message: String| {
            vec![Response::Rejected {
                session: session.to_string(),
                code: code.to_string(),
                message,
            }]
        };
        if self.index.contains_key(session) {
            self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
            return reject(
                codes::DUPLICATE_ID,
                format!("session {session:?} already exists"),
            );
        }
        let sub = match parse_submission(
            session,
            ns,
            nm,
            heuristic,
            policy,
            granularity,
            recovery,
            kills,
            deadline,
        ) {
            Ok(sub) => sub,
            Err(Refusal { code, message }) => {
                self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
                return reject(code, message);
            }
        };
        if ns > self.cfg.capacity {
            self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
            return reject(
                codes::OVER_CAPACITY,
                format!("ns={ns} exceeds the service capacity {}", self.cfg.capacity),
            );
        }

        // Placement: one greedy step per scenario, rolled back in full
        // on any later refusal — admission is atomic.
        let mut choices: Vec<ClusterId> = Vec::with_capacity(ns as usize);
        for _ in 0..ns {
            match self.rep.push() {
                Some(c) => choices.push(c),
                None => {
                    self.rollback(choices.len());
                    self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
                    return reject(
                        codes::OVER_CAPACITY,
                        format!("no cluster can take scenario {} of {ns}", choices.len() + 1),
                    );
                }
            }
        }

        match self.build_portions(&sub, &choices, self.now, &sub.plan) {
            Ok((portions, bound_lo, bound_hi, integer_kernel)) => {
                if let Some(deadline) = sub.deadline {
                    if bound_lo > deadline {
                        self.rollback(choices.len());
                        self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
                        return reject(
                            codes::DEADLINE_UNREACHABLE,
                            format!(
                                "certified lower bound {bound_lo:.1}s misses the deadline \
                                 {deadline:.1}s"
                            ),
                        );
                    }
                }
                self.commit(sub, portions, bound_lo, bound_hi, integer_kernel)
            }
            Err(Refusal { code, message }) => {
                self.rollback(choices.len());
                self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
                reject(code, message)
            }
        }
    }

    /// Admits a workflow-spec submission. Recognized ocean-atmosphere
    /// preset meshes route through exactly the legacy [`Self::submit`]
    /// path — same placement, same admission pipeline, byte-identical
    /// responses — with the granularity read off the mesh class.
    /// Structurally malformed DAGs are `PROTO009`; well-formed general
    /// DAGs are outside the service's admission scope and answer
    /// `PROTO003`.
    #[allow(clippy::too_many_arguments)]
    fn submit_workflow(
        &mut self,
        session: &str,
        workflow: &serde::Value,
        heuristic: &str,
        policy: &str,
        recovery: &str,
        kills: &str,
        deadline: f64,
    ) -> Vec<Response> {
        let reject = |code: &str, message: String| {
            vec![Response::Rejected {
                session: session.to_string(),
                code: code.to_string(),
                message,
            }]
        };
        let ir = match oa_workflow::ir::from_value(workflow) {
            Ok(ir) => ir,
            Err(e) => {
                self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
                let code = match &e {
                    SpecError::Malformed(_) => codes::MALFORMED_WORKFLOW,
                    SpecError::BadField(_) => codes::BAD_FIELD,
                };
                return reject(code, e.to_string());
            }
        };
        let (shape, granularity) = match recognize(&ir) {
            IrClass::FusedMesh(shape) => (shape, "fused"),
            IrClass::UnfusedMesh(shape) => (shape, "unfused"),
            IrClass::General => {
                self.metrics.inc(metrics::keys::SESSIONS_REJECTED, 1);
                return reject(
                    codes::BAD_FIELD,
                    "the service admits only the ocean-atmosphere preset meshes; \
                     run general workflows through `oa sim --workflow`"
                        .to_string(),
                );
            }
        };
        self.submit(
            session,
            shape.scenarios,
            shape.months,
            heuristic,
            policy,
            granularity,
            recovery,
            kills,
            deadline,
        )
    }

    fn rollback(&mut self, pushed: usize) {
        for _ in 0..pushed {
            self.rep.pop();
        }
    }

    /// Groups placement choices into per-cluster portions and runs the
    /// static admission pipeline on each. Returns the portions plus
    /// the session-level certified bracket and CT002 verdict.
    fn build_portions(
        &self,
        sub: &Submission,
        choices: &[ClusterId],
        at: f64,
        plan: &FaultPlan,
    ) -> Result<(Vec<Portion>, f64, Option<f64>, bool), Refusal> {
        let mut portions = Vec::new();
        let mut bound_lo = 0.0f64;
        let mut bound_hi = Some(0.0f64);
        let mut integer_kernel = true;
        for cs in &self.clusters {
            let scenarios: Vec<u32> = choices
                .iter()
                .enumerate()
                .filter(|(_, c)| c.0 == cs.id)
                .map(|(i, _)| i as u32)
                .collect();
            if scenarios.is_empty() {
                continue;
            }
            let inst = Instance::new(scenarios.len() as u32, sub.nm, cs.cluster.resources);
            let grouping = sub
                .heuristic
                .grouping(inst, &cs.cluster.timing)
                .map_err(|e| Refusal {
                    code: codes::NO_GROUPING,
                    message: format!("cluster {:?}: {e}", cs.cluster.name),
                })?;
            let cert = admit_portion(inst, &cs.cluster.timing, &grouping, &sub.config, plan)?;
            let start = self.now.max(cs.free_at).max(at);
            let driver = SessionDriver::new(
                start,
                inst,
                &cs.cluster.timing,
                &grouping,
                &sub.config,
                plan,
            )
            .map_err(|e| Refusal {
                code: codes::NO_GROUPING,
                message: format!("cluster {:?}: {e}", cs.cluster.name),
            })?;
            bound_lo = bound_lo.max(start + cert.bounds.lo);
            bound_hi = match bound_hi {
                Some(hi) if cert.bounds.hi.is_finite() => Some(hi.max(start + cert.bounds.hi)),
                _ => None,
            };
            integer_kernel &= cert.integer_kernel;
            portions.push(Portion {
                cluster_id: cs.id,
                cluster_name: cs.cluster.name.clone(),
                scenarios,
                grouping: grouping.to_string(),
                driver,
                released: false,
            });
        }
        Ok((portions, bound_lo, bound_hi, integer_kernel))
    }

    fn commit(
        &mut self,
        sub: Submission,
        portions: Vec<Portion>,
        bound_lo: f64,
        bound_hi: Option<f64>,
        integer_kernel: bool,
    ) -> Vec<Response> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let name = sub.session.clone();
        let stranded = portions.iter().any(|p| p.driver.finish().is_none());

        for p in &portions {
            self.metrics
                .observe(metrics::keys::QUEUE_WAIT_SECS, p.driver.start() - self.now);
            // A finishing portion blocks its cluster until it drains.
            if let Some(finish) = p.driver.finish() {
                let pos = self
                    .clusters
                    .iter()
                    .position(|c| c.id == p.cluster_id)
                    .expect("portion cluster is live at admission");
                self.clusters[pos].free_at = self.clusters[pos].free_at.max(finish);
            }
        }

        let info: Vec<PortionInfo> = portions.iter().map(Portion::info).collect();
        let predicted_finish = portions
            .iter()
            .map(|p| p.driver.finish())
            .try_fold(0.0f64, |acc, f| f.map(|f| acc.max(f)));
        let mut session = Session {
            name: name.clone(),
            seq,
            submission: sub,
            portions,
            lifecycle: Lifecycle::Active,
            months_lost: 0,
        };

        self.admitted_total += 1;
        self.metrics.inc(metrics::keys::SESSIONS_ADMITTED, 1);
        let mut out = vec![Response::Admitted {
            session: name.clone(),
            at: self.now,
            portions: info,
            predicted_finish,
            bound_lo,
            bound_hi,
            integer_kernel,
            plan: self.plan_loads(),
        }];

        if stranded {
            // Dead on arrival: every group of some portion dies under
            // the fault plan. Give the slots back immediately and
            // report the stranding.
            let completed_months = session.months_done_at(f64::INFINITY).map_or(0, u64::from);
            for i in 0..session.portions.len() {
                Self::release_portion(&mut self.rep, &mut session.portions[i]);
            }
            session.lifecycle = Lifecycle::Stranded;
            self.metrics.inc(metrics::keys::SESSIONS_STRANDED, 1);
            out.push(Response::Stranded {
                session: name.clone(),
                at: self.now,
                completed_months,
            });
        } else {
            self.metrics.add(metrics::keys::SESSIONS_ACTIVE, 1.0);
        }

        let idx = self.sessions.len();
        self.sessions.push(session);
        self.index.insert(name, idx);
        out
    }

    /// Gives a portion's planning slots back (idempotent). The greedy
    /// counts at population `n - k` need not place anything on this
    /// portion's physical cluster; when the plan holds no slot there,
    /// the departure is a plain pop — the planning model only needs
    /// the population to shrink, and `pop` keeps the counts equal to
    /// the batch greedy of the remaining population.
    fn release_portion(rep: &mut IncrementalRepartition, portion: &mut Portion) {
        if portion.released {
            return;
        }
        portion.released = true;
        for _ in 0..portion.scenarios.len() {
            if rep.remove_from(ClusterId(portion.cluster_id)).is_none() {
                rep.pop();
            }
        }
    }

    /// Runs a mass-batch variant sweep through the daemon's planning
    /// memo and worker pool. The sweep is clock-free — it neither
    /// creates a session nor advances virtual time — and its answer
    /// is bitwise-deterministic at every `--jobs` setting, so sweep
    /// lines in a scripted transcript replay byte-identically.
    fn variant_sweep(&mut self, spec: &serde::Value) -> Vec<Response> {
        let spec = match BatchSpec::from_json(spec) {
            Ok(spec) => spec,
            Err(e) => return Self::error(codes::BAD_SWEEP, e.to_string()),
        };
        let report = match run_batch_with(&spec, &self.pool, &mut self.memo) {
            Ok(report) => report,
            Err(e) => return Self::error(codes::BAD_SWEEP, e.to_string()),
        };
        let s = report.summary();
        self.metrics
            .add(metrics::keys::SWEEP_VARIANTS_TOTAL, s.variants as f64);
        vec![Response::SweepReport {
            variants: s.variants,
            completed: s.completed,
            stranded: s.stranded,
            shapes: report.shapes as u64,
            heads: report.heads as u64,
            makespan_min: s.makespan_min,
            makespan_max: s.makespan_max,
            makespan_mean: s.makespan_mean,
            months_lost_total: s.months_lost_total,
            lost_proc_secs_total: s.lost_proc_secs_total,
            checksum: s.checksum,
            memo_hits: report.memo.hits,
            memo_misses: report.memo.misses,
            memo_dp_builds: report.memo.dp_builds,
        }]
    }

    fn status(&self, session: &str) -> Vec<Response> {
        let Some(&idx) = self.index.get(session) else {
            return Self::error(codes::UNKNOWN_ID, format!("unknown session {session:?}"));
        };
        let s = &self.sessions[idx];
        let lifecycle = match s.lifecycle {
            Lifecycle::Completed => "completed",
            Lifecycle::Stranded => "stranded",
            Lifecycle::Active => {
                if s.portions.iter().all(|p| p.driver.start() > self.now) {
                    "queued"
                } else {
                    "running"
                }
            }
        };
        vec![Response::State {
            session: session.to_string(),
            at: self.now,
            lifecycle: lifecycle.to_string(),
            months_done: s.months_done_at(self.now),
            finish: s.finish(),
        }]
    }

    fn advance(&mut self, to: f64) -> Vec<Response> {
        if !to.is_finite() || to < self.now {
            return Self::error(
                codes::TIME_REGRESSION,
                format!("cannot advance to {to}: the clock is at {}", self.now),
            );
        }
        let mut out = self.advance_to(to);
        let completed = out
            .iter()
            .filter(|r| matches!(r, Response::Completed { .. }))
            .count() as u32;
        self.now = to;
        out.push(Response::Advanced { to, completed });
        out
    }

    fn drain(&mut self) -> Vec<Response> {
        let target = self
            .sessions
            .iter()
            .filter(|s| matches!(s.lifecycle, Lifecycle::Active))
            .filter_map(Session::finish)
            .fold(self.now, f64::max);
        let mut out = self.advance_to(target);
        let completed = out
            .iter()
            .filter(|r| matches!(r, Response::Completed { .. }))
            .count() as u32;
        self.now = target;
        out.push(Response::Drained {
            at: target,
            completed,
        });
        out
    }

    /// Releases every portion finishing by `t` and completes every
    /// session finishing by `t`, in chronological order (ties broken
    /// by admission order). Does not move the clock.
    fn advance_to(&mut self, t: f64) -> Vec<Response> {
        // Portion releases first: slots free the instant the cluster
        // finishes the work, independent of sibling portions.
        let mut releases: Vec<(f64, u64, usize, usize)> = Vec::new();
        for (i, s) in self.sessions.iter().enumerate() {
            if !matches!(s.lifecycle, Lifecycle::Active) {
                continue;
            }
            for (j, p) in s.portions.iter().enumerate() {
                if p.released {
                    continue;
                }
                if let Some(f) = p.driver.finish() {
                    if f <= t {
                        releases.push((f, s.seq, i, j));
                    }
                }
            }
        }
        releases.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.3.cmp(&b.3)));
        for &(_, _, i, j) in &releases {
            Self::release_portion(&mut self.rep, &mut self.sessions[i].portions[j]);
        }

        let mut done: Vec<(f64, u64, usize)> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.lifecycle, Lifecycle::Active))
            .filter_map(|(i, s)| s.finish().map(|f| (f, s.seq, i)))
            .filter(|&(f, _, _)| f <= t)
            .collect();
        done.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut out = Vec::new();
        for (finish, _, i) in done {
            self.sessions[i].lifecycle = Lifecycle::Completed;
            self.completed_total += 1;
            self.metrics.inc(metrics::keys::SESSIONS_COMPLETED, 1);
            self.metrics.add(metrics::keys::SESSIONS_ACTIVE, -1.0);
            let report = Self::completion_report(&self.sessions[i]);
            let months_lost = self.sessions[i].months_lost
                + self.sessions[i]
                    .portions
                    .iter()
                    .filter_map(|p| p.driver.run())
                    .map(|r| r.months_lost)
                    .sum::<u32>();
            out.push(Response::Completed {
                session: self.sessions[i].name.clone(),
                finish,
                months_lost,
                report,
                plan: self.plan_loads(),
            });
        }
        out
    }

    /// Renders a finished session as the middleware's campaign report:
    /// same types, same aggregation, so a service completion reads
    /// exactly like an in-process protocol walk.
    fn completion_report(s: &Session) -> CampaignReport {
        let mut trace = vec![ProtocolEvent::RequestReceived {
            request: s.seq,
            ns: s.submission.ns,
            nm: s.submission.nm,
        }];
        trace.push(ProtocolEvent::RepartitionComputed {
            nb_dags: s
                .portions
                .iter()
                .map(|p| p.scenarios.len() as u32)
                .collect(),
        });
        let mut reports = Vec::with_capacity(s.portions.len());
        for p in &s.portions {
            trace.push(ProtocolEvent::ExecSent {
                cluster: ClusterId(p.cluster_id),
                scenarios: p.scenarios.len() as u32,
            });
            let makespan = p.driver.makespan().unwrap_or(f64::INFINITY);
            trace.push(ProtocolEvent::ReportReceived {
                cluster: ClusterId(p.cluster_id),
                makespan,
            });
            reports.push(ExecReport {
                request: s.seq,
                cluster: ClusterId(p.cluster_id),
                scenarios: p.scenarios.clone(),
                makespan,
                grouping: p.grouping.clone(),
            });
        }
        CampaignReport::from_reports(s.seq, reports, trace)
    }

    fn cluster_fail(&mut self, name: &str, at: f64) -> Vec<Response> {
        let Some(pos) = self.cluster_pos(name) else {
            return Self::error(codes::UNKNOWN_ID, format!("unknown cluster {name:?}"));
        };
        if !at.is_finite() || at < self.now {
            return Self::error(
                codes::TIME_REGRESSION,
                format!("cannot fail at {at}: the clock is at {}", self.now),
            );
        }
        let dead_id = self.clusters[pos].id;

        // Everything finishing before the failure really finished.
        let mut out = self.advance_to(at);
        self.now = at;

        // Displace: every active session with unfinished work on the
        // dead cluster loses that work outright — the restart files
        // die with the cluster.
        let mut victims: Vec<usize> = Vec::new();
        for (i, s) in self.sessions.iter_mut().enumerate() {
            if !matches!(s.lifecycle, Lifecycle::Active) {
                continue;
            }
            let mut hit = false;
            for p in &mut s.portions {
                if p.cluster_id == dead_id && !p.released {
                    Self::release_portion(&mut self.rep, p);
                    s.months_lost += p.months(s.submission.nm);
                    hit = true;
                }
            }
            if hit {
                victims.push(i);
            }
        }
        // Drop the failed portions so the session is exactly its
        // surviving work plus whatever the replan adds.
        for &i in &victims {
            self.sessions[i].portions.retain(|p| {
                !(p.cluster_id == dead_id && p.released && p.driver.finish().is_none_or(|f| f > at))
            });
        }

        let pos = self.cluster_pos(name).expect("no mutation removed it yet");
        self.rep.leave(ClusterId(dead_id));
        self.clusters.remove(pos);
        self.metrics
            .set(metrics::keys::CLUSTERS_LIVE, self.clusters.len() as f64);
        out.push(Response::ClusterFailed {
            name: name.to_string(),
            at,
            displaced: victims
                .iter()
                .map(|&i| self.sessions[i].name.clone())
                .collect(),
            plan: self.plan_loads(),
        });

        // Replan each victim's lost scenarios onto the survivors, in
        // admission order. The session's fault plan already fired on
        // the original placement; replanned portions run fault-free.
        for i in victims {
            let lost = self.sessions[i].submission.ns as usize
                - self.sessions[i]
                    .portions
                    .iter()
                    .map(|p| p.scenarios.len())
                    .sum::<usize>();
            let mut choices = Vec::with_capacity(lost);
            let mut ok = true;
            for _ in 0..lost {
                match self.rep.push() {
                    Some(c) => choices.push(c),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let sub = self.sessions[i].submission.clone();
                match self.build_portions(&sub, &choices, at, &FaultPlan::none()) {
                    Ok((mut portions, ..)) => {
                        // Replanned scenarios keep their original ids:
                        // the lost ones, in ascending order.
                        let kept: Vec<u32> = self.sessions[i]
                            .portions
                            .iter()
                            .flat_map(|p| p.scenarios.iter().copied())
                            .collect();
                        let mut missing: Vec<u32> =
                            (0..sub.ns).filter(|s| !kept.contains(s)).collect();
                        for p in &mut portions {
                            let take: Vec<u32> = missing.drain(..p.scenarios.len()).collect();
                            p.scenarios = take;
                        }
                        for p in &portions {
                            if let Some(finish) = p.driver.finish() {
                                let cpos = self
                                    .clusters
                                    .iter()
                                    .position(|c| c.id == p.cluster_id)
                                    .expect("replan targets live clusters");
                                self.clusters[cpos].free_at =
                                    self.clusters[cpos].free_at.max(finish);
                            }
                        }
                        let info: Vec<PortionInfo> = portions.iter().map(Portion::info).collect();
                        self.sessions[i].portions.extend(portions);
                        out.push(Response::Replanned {
                            session: self.sessions[i].name.clone(),
                            at,
                            portions: info,
                            months_lost: self.sessions[i].months_lost,
                        });
                        continue;
                    }
                    Err(_) => {
                        self.rollback(choices.len());
                    }
                }
            } else {
                self.rollback(choices.len());
            }
            // No capacity survives for this session: stranded.
            let s = &mut self.sessions[i];
            for p in &mut s.portions {
                Self::release_portion(&mut self.rep, p);
            }
            s.lifecycle = Lifecycle::Stranded;
            let completed_months = s.months_done_at(at).map_or(0, u64::from);
            self.metrics.inc(metrics::keys::SESSIONS_STRANDED, 1);
            self.metrics.add(metrics::keys::SESSIONS_ACTIVE, -1.0);
            out.push(Response::Stranded {
                session: s.name.clone(),
                at,
                completed_months,
            });
        }
        out
    }
}

/// Runs the service over buffered line I/O until EOF or `Shutdown`.
/// Every response is written as one JSON line, flushed per request so
/// a piped client can play request/response lockstep.
pub fn run_pipe<R: std::io::BufRead, W: std::io::Write>(
    service: &mut Service,
    input: R,
    out: &mut W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        for resp in service.handle_line(&line) {
            writeln!(out, "{}", render_response(&resp))?;
        }
        out.flush()?;
        if service.is_shut_down() {
            break;
        }
    }
    Ok(())
}

/// Feeds a scripted transcript (one request per line; blank lines
/// ignored) and returns the full response log as one string — the
/// deterministic-replay entry point the tests and `oa serve --script`
/// use.
#[must_use]
pub fn run_script(service: &mut Service, script: &str) -> String {
    let mut out = String::new();
    for line in script.lines() {
        if line.trim().is_empty() {
            continue;
        }
        for resp in service.handle_line(line) {
            out.push_str(&render_response(&resp));
            out.push('\n');
        }
        if service.is_shut_down() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Service {
        let cfg = ServiceConfig {
            capacity: 16,
            planning_nm: 12,
            ..Default::default()
        };
        Service::new(cfg, 1)
    }

    /// `VariantSweep` answers a deterministic `SweepReport`, leaves
    /// the virtual clock untouched, and replays byte-identically at
    /// any worker count; invalid specs are refused with `PROTO010`.
    #[test]
    fn variant_sweep_is_deterministic_and_clock_free() {
        let script = "{\"Hello\": {\"version\": 1}}\n\
            {\"VariantSweep\": {\"spec\": {\"r\": 30, \"ns\": 4, \"nm\": 40, \
             \"variants\": 32, \"max_faults\": 2, \"seed\": 9}}}\n\
            {\"VariantSweep\": {\"spec\": {\"variants\": 0}}}\n";
        let log1 = run_script(&mut small(), script);
        let mut wide = Service::new(
            ServiceConfig {
                capacity: 16,
                planning_nm: 12,
                ..Default::default()
            },
            4,
        );
        let log4 = run_script(&mut wide, script);
        assert_eq!(log1, log4, "sweep log varies with --jobs");
        assert!(log1.contains("\"SweepReport\""), "log:\n{log1}");
        assert!(log1.contains("\"variants\":32"));
        assert!(log1.contains("\"checksum\""));
        assert!(log1.contains("\"PROTO010\""));
        // Clock-free: the sweep admitted nothing and moved nothing.
        let mut s = small();
        let _ = run_script(&mut s, script);
        assert_eq!(s.now(), 0.0);
    }

    /// `ClusterJoin` pricing flows through the planning memo: joining
    /// identical clusters replays cached vectors, and the plan is the
    /// same as the uncached service's.
    #[test]
    fn cluster_join_pricing_replays_from_the_memo() {
        let script = "{\"Hello\": {\"version\": 1}}\n\
            {\"ClusterJoin\": {\"name\": \"a\", \"preset\": \"reference\", \"resources\": 53}}\n\
            {\"ClusterJoin\": {\"name\": \"b\", \"preset\": \"reference\", \"resources\": 53}}\n\
            {\"ClusterJoin\": {\"name\": \"c\", \"preset\": \"grillon\", \"resources\": 47}}\n";
        let log = run_script(&mut small(), script);
        assert_eq!(log.matches("\"ClusterUp\"").count(), 3, "log:\n{log}");
        // Replaying the same joins yields a byte-identical plan: the
        // memoized vectors are bitwise the uncached ones.
        let replay = run_script(&mut small(), script);
        assert_eq!(log, replay);
    }

    #[test]
    fn full_session_lifecycle() {
        let mut s = small();
        let log = run_script(
            &mut s,
            r#"
{"Hello": {"version": 1}}
{"ClusterJoin": {"name": "ref", "preset": "reference", "resources": 53}}
{"Submit": {"session": "s1", "ns": 5, "nm": 12, "heuristic": "knapsack", "policy": "least-advanced", "granularity": "fused", "recovery": "checkpoint", "kills": "", "deadline": 0.0}}
{"Drain": {}}
{"Shutdown": {}}
"#,
        );
        for kind in [
            "Welcome",
            "ClusterUp",
            "Admitted",
            "Completed",
            "Drained",
            "Bye",
        ] {
            assert!(
                log.contains(&format!("\"{kind}\"")),
                "missing {kind} in log"
            );
        }
        // The completion carries a middleware-shaped campaign report.
        assert!(log.contains("\"RequestReceived\""));
        assert!(log.contains("\"RepartitionComputed\""));
    }

    /// Regression: planning counts at a shrunken population may place
    /// nothing on a portion's physical cluster; releasing that portion
    /// must still shrink the plan (pop fallback), or slots leak and
    /// idle clusters can never leave.
    #[test]
    fn completed_sessions_release_every_planning_slot() {
        let mut s = small();
        let mut script = String::from(
            "{\"Hello\": {\"version\": 1}}\n\
             {\"ClusterJoin\": {\"name\": \"big\", \"preset\": \"sagittaire\", \"resources\": 64}}\n\
             {\"ClusterJoin\": {\"name\": \"small\", \"preset\": \"grillon\", \"resources\": 8}}\n",
        );
        for i in 0..4 {
            script.push_str(&submit_line(&format!("s{i}"), 3));
            script.push('\n');
        }
        script.push_str("{\"Drain\": {}}\n");
        // Every session is complete, so both clusters are idle and
        // both leaves must succeed — any PROTO007 here is a leak.
        script.push_str("{\"ClusterLeave\": {\"name\": \"small\"}}\n");
        script.push_str("{\"ClusterLeave\": {\"name\": \"big\"}}\n");
        let log = run_script(&mut s, &script);
        assert_eq!(
            log.matches("\"ClusterGone\"").count(),
            2,
            "leaked slots:\n{log}"
        );
        assert!(!log.contains("PROTO007"), "leaked slots:\n{log}");
    }

    fn submit_line(session: &str, ns: u32) -> String {
        format!(
            r#"{{"Submit": {{"session": "{session}", "ns": {ns}, "nm": 12, "heuristic": "knapsack", "policy": "least-advanced", "granularity": "fused", "recovery": "checkpoint", "kills": "", "deadline": 0.0}}}}"#
        )
    }

    /// The workflow front-end invariant: a recognized preset mesh
    /// admitted through `SubmitWorkflow` produces byte-for-byte the
    /// transcript of the equivalent `Submit`.
    #[test]
    fn workflow_preset_submissions_match_submit_byte_for_byte() {
        let setup = "{\"Hello\": {\"version\": 1}}\n\
             {\"ClusterJoin\": {\"name\": \"ref\", \"preset\": \"reference\", \"resources\": 53}}\n";
        let tail = "{\"Drain\": {}}\n{\"Shutdown\": {}}";
        for granularity in ["fused", "unfused"] {
            let mut a = small();
            let submit = format!(
                r#"{{"Submit": {{"session": "s1", "ns": 5, "nm": 12, "heuristic": "knapsack", "policy": "least-advanced", "granularity": "{granularity}", "recovery": "checkpoint", "kills": "", "deadline": 0.0}}}}"#
            );
            let legacy = run_script(&mut a, &format!("{setup}{submit}\n{tail}"));
            assert!(legacy.contains("\"Completed\""), "log: {legacy}");
            let mut b = small();
            let wf = format!(
                r#"{{"SubmitWorkflow": {{"session": "s1", "workflow": {{"preset": {{"ns": 5, "nm": 12, "granularity": "{granularity}"}}}}, "heuristic": "knapsack", "policy": "least-advanced", "recovery": "checkpoint", "kills": "", "deadline": 0.0}}}}"#
            );
            let log = run_script(&mut b, &format!("{setup}{wf}\n{tail}"));
            assert_eq!(log, legacy, "{granularity} preset drifted from Submit");
        }
    }

    #[test]
    fn version_mismatch_is_refused() {
        let mut s = small();
        let log = run_script(&mut s, r#"{"Hello": {"version": 99}}"#);
        assert!(log.contains(codes::VERSION_MISMATCH), "log: {log}");
    }

    #[test]
    fn busy_cluster_cannot_leave_idle_cluster_can() {
        let mut s = small();
        let mut log = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}",
                r#"{"ClusterJoin": {"name": "a", "preset": "reference", "resources": 53}}"#,
                submit_line("s1", 3),
                r#"{"ClusterLeave": {"name": "a"}}"#,
            ),
        );
        assert!(log.contains(codes::BUSY), "log: {log}");
        log = run_script(
            &mut s,
            &format!(
                "{}\n{}",
                r#"{"Drain": {}}"#, r#"{"ClusterLeave": {"name": "a"}}"#
            ),
        );
        assert!(log.contains("\"ClusterGone\""), "log: {log}");
    }

    #[test]
    fn sessions_queue_behind_each_other_and_complete_in_order() {
        let mut s = small();
        let log = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}\n{}\n{}",
                r#"{"ClusterJoin": {"name": "a", "preset": "reference", "resources": 53}}"#,
                submit_line("s1", 3),
                submit_line("s2", 3),
                r#"{"Status": {"session": "s2"}}"#,
                r#"{"Drain": {}}"#,
            ),
        );
        // The second session waits for the first cluster slot.
        assert!(log.contains("\"lifecycle\":\"queued\""), "log: {log}");
        let c1 = log
            .find("\"Completed\":{\"session\":\"s1\"")
            .expect("s1 completes");
        let c2 = log
            .find("\"Completed\":{\"session\":\"s2\"")
            .expect("s2 completes");
        assert!(c1 < c2, "completions out of order");
    }

    #[test]
    fn cluster_failure_displaces_and_replans() {
        let mut s = small();
        let log = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}\n{}\n{}",
                r#"{"ClusterJoin": {"name": "a", "preset": "reference", "resources": 53}}"#,
                r#"{"ClusterJoin": {"name": "b", "preset": "reference", "resources": 53}}"#,
                submit_line("s1", 4),
                r#"{"ClusterFail": {"name": "a", "at": 100.0}}"#,
                r#"{"Drain": {}}"#,
            ),
        );
        assert!(log.contains("\"ClusterFailed\""), "log: {log}");
        assert!(log.contains("\"Replanned\""), "log: {log}");
        // The session still completes, later than first predicted,
        // with the lost months accounted.
        assert!(
            log.contains("\"Completed\":{\"session\":\"s1\""),
            "log: {log}"
        );
        let after = &log[log.find("\"Completed\"").unwrap()..];
        assert!(
            !after.contains("\"months_lost\":0,"),
            "lost months recorded: {log}"
        );
    }

    #[test]
    fn failure_of_the_only_cluster_strands_the_session() {
        let mut s = small();
        let log = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}",
                r#"{"ClusterJoin": {"name": "a", "preset": "reference", "resources": 53}}"#,
                submit_line("s1", 3),
                r#"{"ClusterFail": {"name": "a", "at": 100.0}}"#,
            ),
        );
        assert!(log.contains("\"Stranded\""), "log: {log}");
        let tail = run_script(&mut s, r#"{"Status": {"session": "s1"}}"#);
        assert!(tail.contains("\"lifecycle\":\"stranded\""), "tail: {tail}");
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut s = small();
        let log = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}",
                r#"{"ClusterJoin": {"name": "a", "preset": "reference", "resources": 53}}"#,
                r#"{"Advance": {"to": 500.0}}"#,
                r#"{"Advance": {"to": 100.0}}"#,
            ),
        );
        assert!(log.contains(codes::TIME_REGRESSION), "log: {log}");
        assert!((s.now() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_names_are_proto006() {
        let mut s = small();
        let log = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}",
                r#"{"Status": {"session": "ghost"}}"#,
                r#"{"ClusterLeave": {"name": "ghost"}}"#,
                r#"{"ClusterFail": {"name": "ghost", "at": 1.0}}"#,
            ),
        );
        assert_eq!(log.matches(codes::UNKNOWN_ID).count(), 3, "log: {log}");
    }

    #[test]
    fn metrics_track_the_session_ledger() {
        let mut s = small();
        let _ = run_script(
            &mut s,
            &format!(
                "{}\n{}\n{}\n{}",
                r#"{"ClusterJoin": {"name": "a", "preset": "reference", "resources": 53}}"#,
                submit_line("s1", 3),
                submit_line("s1", 3),
                r#"{"Drain": {}}"#,
            ),
        );
        let m = s.metrics();
        assert_eq!(m.counter(metrics::keys::SESSIONS_ADMITTED), Some(1));
        assert_eq!(m.counter(metrics::keys::SESSIONS_REJECTED), Some(1));
        assert_eq!(m.counter(metrics::keys::SESSIONS_COMPLETED), Some(1));
        assert_eq!(m.gauge(metrics::keys::SESSIONS_ACTIVE), Some(0.0));
        let log = run_script(&mut s, r#"{"Metrics": {}}"#);
        assert!(log.contains("service_sessions_admitted"), "log: {log}");
    }
}
