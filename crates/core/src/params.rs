//! Scheduling-instance parameters and shared notation.
//!
//! Mirrors the notation of Section 4.1 of the paper:
//!
//! * `NS` — number of independent simulations (scenarios);
//! * `NM` — months per simulation;
//! * `R`  — total processors of the (homogeneous) cluster;
//! * `nbtasks = NS × NM` — main tasks (equivalently post tasks);
//! * `nbmax = min(NS, ⌊R/G⌋)` — concurrent multiprocessor tasks for a
//!   group size `G`;
//! * `nbused = nbtasks mod nbmax` — tasks in the last, incomplete set.

use serde::{Deserialize, Serialize};

use oa_workflow::chain::ExperimentShape;

/// One homogeneous scheduling instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instance {
    /// `NS`: number of independent scenarios.
    pub ns: u32,
    /// `NM`: months per scenario.
    pub nm: u32,
    /// `R`: processors available on the cluster.
    pub r: u32,
}

impl Instance {
    /// Builds an instance; all parameters must be positive.
    pub fn new(ns: u32, nm: u32, r: u32) -> Self {
        assert!(ns > 0 && nm > 0, "NS and NM must be positive");
        assert!(r > 0, "R must be positive");
        Self { ns, nm, r }
    }

    /// The paper's canonical experiment on `r` processors.
    pub fn canonical(r: u32) -> Self {
        let shape = ExperimentShape::canonical();
        Self::new(shape.scenarios, shape.months, r)
    }

    /// An instance for an explicit experiment shape.
    pub fn for_shape(shape: ExperimentShape, r: u32) -> Self {
        Self::new(shape.scenarios, shape.months, r)
    }

    /// The experiment shape of this instance.
    pub fn shape(&self) -> ExperimentShape {
        ExperimentShape::new(self.ns, self.nm)
    }

    /// `nbtasks = NS × NM`.
    pub fn nbtasks(&self) -> u64 {
        self.ns as u64 * self.nm as u64
    }

    /// `nbmax = min(NS, ⌊R/G⌋)` for group size `g`; zero when not even
    /// one group fits.
    pub fn nbmax(&self, g: u32) -> u32 {
        debug_assert!(g > 0);
        (self.r / g).min(self.ns)
    }

    /// Same instance with a different processor count.
    pub fn with_resources(&self, r: u32) -> Self {
        Self::new(self.ns, self.nm, r)
    }

    /// Same instance with a different scenario count.
    pub fn with_scenarios(&self, ns: u32) -> Self {
        Self::new(ns, self.nm, self.r)
    }
}

/// Ceiling division for task counts.
#[inline]
pub fn div_ceil_u64(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nbmax_binds_on_scenarios_then_resources() {
        let i = Instance::new(10, 12, 53);
        assert_eq!(i.nbmax(7), 7); // ⌊53/7⌋ = 7 < 10
        assert_eq!(i.nbmax(4), 10); // ⌊53/4⌋ = 13, clamped to NS
        assert_eq!(i.nbmax(11), 4);
        assert_eq!(i.nbtasks(), 120);
    }

    #[test]
    fn nbmax_zero_when_nothing_fits() {
        let i = Instance::new(10, 12, 3);
        assert_eq!(i.nbmax(4), 0);
    }

    #[test]
    fn canonical_matches_paper() {
        let i = Instance::canonical(120);
        assert_eq!((i.ns, i.nm, i.r), (10, 1800, 120));
        assert_eq!(i.shape(), ExperimentShape::canonical());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resources_rejected() {
        Instance::new(1, 1, 0);
    }

    #[test]
    fn with_modifiers() {
        let i = Instance::new(10, 12, 53);
        assert_eq!(i.with_resources(60).r, 60);
        assert_eq!(i.with_scenarios(3).ns, 3);
    }

    #[test]
    fn ceil_div() {
        assert_eq!(div_ceil_u64(10, 3), 4);
        assert_eq!(div_ceil_u64(9, 3), 3);
        assert_eq!(div_ceil_u64(0, 3), 0);
    }
}
