//! Cross-variant planning memo: knapsack solutions and G-selection
//! scans cached across `(cluster table, R, capacity)` keys.
//!
//! Mass-batch studies (and the service's `ClusterJoin` pricing) solve
//! the *same* planning instances over and over: a performance vector
//! prices `1..=capacity` scenario counts against one timing table, a
//! parameter grid re-asks neighbouring `(R, NS)` cells, and every new
//! cluster with the same hardware profile repeats all of it. Two layers
//! of sharing remove the redundancy without changing a single bit:
//!
//! 1. **A retained knapsack table per timing fingerprint** —
//!    [`oa_knapsack::DpTable`] runs the exact bounded-cardinality DP
//!    once over the full `(R, saturated-NS)` rectangle; every
//!    sub-instance (±1-delta neighbours included) is then answered by
//!    O(kinds) reconstruction. The table's equality contract makes the
//!    reconstructed selection bitwise-identical to the per-instance
//!    `solve_dp` the heuristic would have run.
//! 2. **A makespan cache keyed `(fingerprint, heuristic, R, NS, NM)`**
//!    — each entry is a pure function of its key, so cache hits are
//!    bitwise replays regardless of query history or job count.
//!
//! Determinism: both maps are `BTreeMap`s, population order never
//! affects values (pure keys), and [`PlanMemo::performance_vector`]
//! stitches results back in scenario-count order exactly like
//! [`crate::hetero::performance_vector_with`].

use std::collections::BTreeMap;

use oa_knapsack::{DpTable, Item};
use oa_par::Pool;
use oa_platform::cluster::ClusterId;
use oa_platform::timing::TimingTable;
use oa_workflow::moldable::MoldableSpec;

use crate::estimate::estimate;
use crate::grouping::Grouping;
use crate::hetero::PerformanceVector;
use crate::heuristics::{Heuristic, HeuristicError};
use crate::params::Instance;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A collision-free-in-practice identity for a timing table: FNV-1a
/// over the bit patterns of the eight main durations and the post
/// duration. Tables that hash alike plan alike — every planning
/// decision reads the table only through these nine numbers.
#[must_use]
pub fn table_fingerprint(table: &TimingTable) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |v: f64| {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for &m in table.main_array() {
        eat(m);
    }
    eat(table.post_secs());
    h
}

/// Hit/miss counters of a [`PlanMemo`]; observability only — they
/// never feed back into any planning decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct MemoStats {
    /// Makespan queries answered from the cache.
    pub hits: u64,
    /// Makespan queries that had to be computed.
    pub misses: u64,
    /// Retained DP tables built (one per fingerprint × capacity bump).
    pub dp_builds: u64,
}

/// Cache key: `(table fingerprint, heuristic, R, NS, NM)`.
type MakespanKey = (u64, u8, u32, u32, u32);

fn heuristic_tag(h: Heuristic) -> u8 {
    match h {
        Heuristic::Basic => 0,
        Heuristic::RedistributeIdle => 1,
        Heuristic::NoPostReservation => 2,
        Heuristic::Knapsack => 3,
        Heuristic::KnapsackGreedy => 4,
        Heuristic::Balanced => 5,
    }
}

/// The planning memo. One instance is typically owned by a service
/// daemon or a batch executor and shared across every variant/cluster
/// it plans for.
#[derive(Debug, Default)]
pub struct PlanMemo {
    /// Retained knapsack DP tables, keyed by timing fingerprint.
    dp: BTreeMap<u64, DpTable>,
    /// Makespan cache; values are `f64` bit patterns (`+∞` encodes
    /// "priced out": the cluster cannot run that many scenarios).
    makespans: BTreeMap<MakespanKey, u64>,
    stats: MemoStats,
}

impl PlanMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters since construction (or the last [`PlanMemo::reset_stats`]).
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Zeroes the hit/miss counters without dropping any cached work.
    pub fn reset_stats(&mut self) {
        self.stats = MemoStats::default();
    }

    /// Ensures the retained DP table for `table` covers at least
    /// `resources` capacity, (re)building it if not. The cardinality
    /// axis is built at its saturation point `capacity / min_cost`, so
    /// any `NS` can be answered via the clamp.
    fn ensure_dp(&mut self, fp: u64, table: &TimingTable, resources: u32) {
        let needs_build = match self.dp.get(&fp) {
            Some(t) => t.capacity() < resources,
            None => true,
        };
        if needs_build {
            let cap = resources.max(self.dp.get(&fp).map_or(0, DpTable::capacity));
            let spec = MoldableSpec::pcr();
            let min_cost = spec.allocations().min().expect("spec is non-empty");
            let card = cap / min_cost;
            let items: Vec<Item> = spec
                .allocations()
                .map(|g| Item::new(g, 1.0 / table.main_secs(g), card.max(1)))
                .collect();
            self.dp.insert(fp, DpTable::build(items, cap, card));
            self.stats.dp_builds += 1;
        }
    }

    /// The knapsack heuristic's grouping for `inst`, answered from the
    /// retained DP table — bitwise-identical to
    /// `Heuristic::Knapsack.grouping(inst, table)`.
    pub fn knapsack_grouping(
        &mut self,
        inst: Instance,
        table: &TimingTable,
    ) -> Result<Grouping, HeuristicError> {
        let fp = table_fingerprint(table);
        self.ensure_dp(fp, table, inst.r);
        let dp = self.dp.get(&fp).expect("ensured above");
        knapsack_grouping_from(dp, inst)
    }

    /// The heuristic's makespan for `inst` (`+∞` when the cluster is
    /// priced out), through the cache. Hits replay the stored bits;
    /// misses compute exactly what
    /// [`Heuristic::makespan`] would and remember it.
    pub fn makespan(&mut self, heuristic: Heuristic, inst: Instance, table: &TimingTable) -> f64 {
        let fp = table_fingerprint(table);
        let key = (fp, heuristic_tag(heuristic), inst.r, inst.ns, inst.nm);
        if let Some(&bits) = self.makespans.get(&key) {
            self.stats.hits += 1;
            return f64::from_bits(bits);
        }
        self.stats.misses += 1;
        let ms = if heuristic == Heuristic::Knapsack {
            self.ensure_dp(fp, table, inst.r);
            let dp = self.dp.get(&fp).expect("ensured above");
            knapsack_makespan_from(dp, inst, table)
        } else {
            heuristic.makespan(inst, table).unwrap_or(f64::INFINITY)
        };
        self.makespans.insert(key, ms.to_bits());
        ms
    }

    /// The cluster's performance vector through the memo: cached
    /// scenario counts replay their bits, the missing counts fan out on
    /// `pool` and are stitched back in count order. Bitwise-identical
    /// to [`crate::hetero::performance_vector_with`] for any query
    /// history and any job count.
    #[allow(clippy::too_many_arguments)]
    pub fn performance_vector(
        &mut self,
        cluster: ClusterId,
        resources: u32,
        table: &TimingTable,
        heuristic: Heuristic,
        ns: u32,
        nm: u32,
        pool: &Pool,
    ) -> PerformanceVector {
        let fp = table_fingerprint(table);
        let tag = heuristic_tag(heuristic);
        let misses: Vec<u32> = (1..=ns)
            .filter(|&k| !self.makespans.contains_key(&(fp, tag, resources, k, nm)))
            .collect();
        self.stats.hits += u64::from(ns) - misses.len() as u64;
        self.stats.misses += misses.len() as u64;
        if !misses.is_empty() {
            if heuristic == Heuristic::Knapsack {
                self.ensure_dp(fp, table, resources);
            }
            let dp = (heuristic == Heuristic::Knapsack).then(|| &self.dp[&fp]);
            let computed = pool.par_map(&misses, |&k| {
                let inst = Instance::new(k, nm, resources);
                match dp {
                    Some(dp) => knapsack_makespan_from(dp, inst, table),
                    None => heuristic.makespan(inst, table).unwrap_or(f64::INFINITY),
                }
            });
            for (&k, &ms) in misses.iter().zip(&computed) {
                self.makespans
                    .insert((fp, tag, resources, k, nm), ms.to_bits());
            }
        }
        let makespans = (1..=ns)
            .map(|k| f64::from_bits(self.makespans[&(fp, tag, resources, k, nm)]))
            .collect();
        PerformanceVector { cluster, makespans }
    }
}

/// Grouping reconstruction from a retained DP table — the memoized
/// mirror of the private `knapsack` heuristic in
/// [`crate::heuristics`], kept in lockstep with it.
fn knapsack_grouping_from(dp: &DpTable, inst: Instance) -> Result<Grouping, HeuristicError> {
    let spec = MoldableSpec::pcr();
    let sol = dp.solve_clamped(inst.r, inst.ns);
    let mut groups = Vec::with_capacity(sol.copies as usize);
    for (i, &n) in sol.counts.iter().enumerate() {
        let g = spec.allocation_at(i).expect("items follow the spec");
        groups.extend(std::iter::repeat_n(g, n as usize));
    }
    if groups.is_empty() {
        return Err(HeuristicError::ClusterTooSmall { resources: inst.r });
    }
    let post = inst.r - sol.cost;
    Ok(Grouping::new(groups, post))
}

/// `Heuristic::Knapsack.makespan` via the retained table (`+∞` when
/// the cluster is priced out).
fn knapsack_makespan_from(dp: &DpTable, inst: Instance, table: &TimingTable) -> f64 {
    match knapsack_grouping_from(dp, inst) {
        Ok(g) => {
            estimate(inst, table, &g)
                .expect("heuristics construct valid groupings")
                .makespan
        }
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::performance_vector_with;
    use oa_platform::speedup::PcrModel;

    fn table() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn fingerprint_distinguishes_tables() {
        let a = table();
        let b = PcrModel::reference().table(2.0).unwrap();
        assert_ne!(table_fingerprint(&a), table_fingerprint(&b));
        assert_eq!(table_fingerprint(&a), table_fingerprint(&table()));
    }

    #[test]
    fn memo_grouping_matches_heuristic() {
        let t = table();
        let mut memo = PlanMemo::new();
        for r in [4u32, 11, 23, 53, 100, 256] {
            for ns in [1u32, 3, 10, 17] {
                let inst = Instance::new(ns, 1800, r);
                assert_eq!(
                    memo.knapsack_grouping(inst, &t),
                    Heuristic::Knapsack.grouping(inst, &t),
                    "r={r} ns={ns}"
                );
            }
        }
    }

    #[test]
    fn memo_vector_matches_plain_bitwise() {
        let t = table();
        let pool = Pool::serial();
        let mut memo = PlanMemo::new();
        for h in [Heuristic::Knapsack, Heuristic::Basic, Heuristic::Balanced] {
            for r in [16u32, 53, 128] {
                let want = performance_vector_with(ClusterId(7), r, &t, h, 24, 60, &pool);
                let got = memo.performance_vector(ClusterId(7), r, &t, h, 24, 60, &pool);
                assert_eq!(got.cluster, want.cluster);
                let wb: Vec<u64> = want.makespans.iter().map(|m| m.to_bits()).collect();
                let gb: Vec<u64> = got.makespans.iter().map(|m| m.to_bits()).collect();
                assert_eq!(gb, wb, "{h:?} r={r}");
            }
        }
    }

    #[test]
    fn hits_replay_and_capacity_grows() {
        let t = table();
        let pool = Pool::serial();
        let mut memo = PlanMemo::new();
        let first =
            memo.performance_vector(ClusterId(1), 53, &t, Heuristic::Knapsack, 10, 60, &pool);
        let s0 = memo.stats();
        assert_eq!(s0.misses, 10);
        assert_eq!(s0.dp_builds, 1);
        // Same query: pure hits, identical bits.
        let again =
            memo.performance_vector(ClusterId(1), 53, &t, Heuristic::Knapsack, 10, 60, &pool);
        assert_eq!(memo.stats().hits, s0.hits + 10);
        assert_eq!(again, first);
        // ±1-delta capacity reuse: R = 52 and 54; 54 forces a rebuild,
        // 52 rides the table — both still match the plain path bitwise.
        for r in [52u32, 54, 53] {
            let want =
                performance_vector_with(ClusterId(1), r, &t, Heuristic::Knapsack, 10, 60, &pool);
            let got =
                memo.performance_vector(ClusterId(1), r, &t, Heuristic::Knapsack, 10, 60, &pool);
            assert_eq!(got, want, "r={r}");
        }
        assert_eq!(memo.stats().dp_builds, 2);
    }

    #[test]
    fn too_small_cluster_prices_out() {
        let t = table();
        let mut memo = PlanMemo::new();
        let inst = Instance::new(2, 12, 3);
        assert_eq!(
            memo.knapsack_grouping(inst, &t),
            Err(HeuristicError::ClusterTooSmall { resources: 3 })
        );
        assert_eq!(memo.makespan(Heuristic::Knapsack, inst, &t), f64::INFINITY);
    }
}
