//! The analytic makespan model of Section 4.1 (Equations 1–5).
//!
//! For a *uniform* grouping — `nbmax = min(NS, ⌊R/G⌋)` groups of `G`
//! processors, the remaining `R2 = R − nbmax·G` processors dedicated to
//! post-processing — the paper derives the campaign makespan in closed
//! form, split over four cases: `R2 = 0` vs `R2 ≠ 0`, crossed with
//! `nbused = 0` vs `nbused ≠ 0` (`nbused = nbtasks mod nbmax`, the
//! size of the final, incomplete set of simultaneous main tasks).
//!
//! The model's key quantity is `⌊TG/TP⌋`: how many post tasks one
//! processor retires while a group runs one main task. When the `R2`
//! processors cannot keep up (`Npossible = ⌊TG/TP⌋·R2 < nbmax`), posts
//! *overpass* into the tail and are finished on all `R` processors
//! after the mains (Figures 4–6).

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;

use crate::params::{div_ceil_u64, Instance};

/// Everything Equations 1–5 compute for one `(instance, G)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Group size `G` this breakdown describes.
    pub g: u32,
    /// `nbmax`: simultaneous main tasks.
    pub nbmax: u32,
    /// `R2`: processors dedicated to post-processing.
    pub r2: u32,
    /// `nbused`: main tasks in the final, incomplete set (0 = exact fit).
    pub nbused: u64,
    /// Number of sets of simultaneous main tasks, `n = ⌈nbtasks/nbmax⌉`.
    pub sets: u64,
    /// Makespan of the main tasks alone (Equation 1), seconds.
    pub ms_multi: f64,
    /// Post-processing tasks that outlive the main phase and finish on
    /// the whole cluster.
    pub trailing_posts: u64,
    /// Total makespan, seconds.
    pub makespan: f64,
}

/// Evaluates Equations 1–5 for group size `g`. Returns `None` when not
/// even one group of `g` fits on the cluster (`nbmax = 0`).
///
/// ```
/// use oa_platform::speedup::PcrModel;
/// use oa_sched::{analytic, params::Instance};
///
/// let table = PcrModel::reference().table(1.0).unwrap();
/// let b = analytic::makespan(Instance::new(10, 1800, 53), &table, 7).unwrap();
/// assert_eq!((b.nbmax, b.r2), (7, 4)); // the paper's §4.2 example
/// ```
pub fn makespan(inst: Instance, table: &TimingTable, g: u32) -> Option<Breakdown> {
    let nbmax = inst.nbmax(g);
    if nbmax == 0 {
        return None;
    }
    let nbtasks = inst.nbtasks();
    let tg = table.main_secs(g);
    let tp = table.post_secs();
    let r = inst.r as u64;
    let r2 = inst.r - nbmax * g;
    let sets = div_ceil_u64(nbtasks, nbmax as u64);
    let nbused = nbtasks % nbmax as u64;
    // ⌊TG/TP⌋: posts one processor absorbs per main-task slot.
    let ratio = (tg / tp) as u64;
    let ms_multi = sets as f64 * tg;

    let trailing_posts: u64 = if r2 == 0 {
        if nbused == 0 {
            // Equation 2: every post waits for the end of the mains.
            nbtasks
        } else {
            // Equation 3: the final incomplete set leaves
            // Rleft = R − nbused·G processors free for one TG slot.
            let rleft = r - nbused * g as u64;
            nbused + (nbtasks - nbused).saturating_sub(ratio * rleft)
        }
    } else {
        // Npossible: posts the dedicated R2 processors retire per set.
        let npossible = ratio * r2 as u64;
        let excess_per_set = (nbmax as u64).saturating_sub(npossible);
        if nbused == 0 {
            // Equation 4: the first n−1 sets each push their excess to
            // the tail; the last set's posts all trail by definition.
            (sets - 1) * excess_per_set + nbmax as u64
        } else {
            // Equation 5: the first n−2 *complete* sets overpass; the
            // last complete set's nbmax posts plus the overpass land on
            // Rleft during the incomplete set's TG slot.
            let noverpass = sets.saturating_sub(2) * excess_per_set;
            let novertot = noverpass + nbmax as u64;
            let rleft = r - g as u64 * nbused;
            nbused + novertot.saturating_sub(ratio * rleft)
        }
    };

    let tail = div_ceil_u64(trailing_posts, r) as f64 * tp;
    Some(Breakdown {
        g,
        nbmax,
        r2,
        nbused,
        sets,
        ms_multi,
        trailing_posts,
        makespan: ms_multi + tail,
    })
}

/// Evaluates every legal `G` and returns the breakdown with the least
/// makespan — the selection rule of the basic heuristic. Ties prefer
/// the smaller `G` (fewer processors per group ⇒ more left for posts).
/// `None` when the cluster cannot fit even a group of 4.
///
/// ```
/// use oa_platform::speedup::PcrModel;
/// use oa_sched::{analytic, params::Instance};
///
/// let table = PcrModel::reference().table(1.0).unwrap();
/// let best = analytic::best_group(Instance::new(10, 1800, 53), &table).unwrap();
/// assert_eq!(best.g, 7); // "the optimal grouping is G = 7"
/// ```
pub fn best_group(inst: Instance, table: &TimingTable) -> Option<Breakdown> {
    oa_workflow::moldable::MoldableSpec::pcr()
        .allocations()
        .filter_map(|g| makespan(inst, table, g))
        .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
}

/// [`best_group`] with the `G ∈ {4..11}` evaluations fanned out on
/// `pool`. The reduction runs on the caller's side in candidate order
/// (same `min_by`, same tie-breaking toward smaller `G`), so the
/// result is identical to the serial path for any job count; a
/// single-job pool short-circuits to [`best_group`] itself.
pub fn best_group_with(
    inst: Instance,
    table: &TimingTable,
    pool: &oa_par::Pool,
) -> Option<Breakdown> {
    if pool.jobs() == 1 {
        return best_group(inst, table);
    }
    let gs: Vec<u32> = oa_workflow::moldable::MoldableSpec::pcr()
        .allocations()
        .collect();
    pool.par_map(&gs, |&g| makespan(inst, table, g))
        .into_iter()
        .flatten()
        .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;

    fn table() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    /// A flat synthetic table for hand-computable cases.
    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn infeasible_group_returns_none() {
        let i = Instance::new(10, 12, 10);
        assert!(makespan(i, &table(), 11).is_none());
        assert!(makespan(i, &table(), 10).is_some());
    }

    #[test]
    fn equation_2_exact_fit_no_post_procs() {
        // R = 20, G = 4, NS = 5 → nbmax = 5, R2 = 0. NM = 4 → 20 tasks,
        // 4 full sets. TG = 100, TP = 10.
        let i = Instance::new(5, 4, 20);
        let t = flat(100.0, 10.0);
        let b = makespan(i, &t, 4).unwrap();
        assert_eq!(b.r2, 0);
        assert_eq!(b.nbused, 0);
        assert_eq!(b.sets, 4);
        assert_eq!(b.ms_multi, 400.0);
        // All 20 posts trail on 20 procs: one TP wave.
        assert_eq!(b.trailing_posts, 20);
        assert_eq!(b.makespan, 410.0);
    }

    #[test]
    fn equation_3_incomplete_last_set() {
        // R = 20, G = 4, NS = 5, NM = 5 → 25 tasks: 5 sets, nbused = 0…
        // use NM chosen so nbused ≠ 0: NS = 5, NM = 5 → nbtasks = 25,
        // nbmax = 5 → nbused = 0. Take NS = 5, R = 20, NM = 21 /
        // simpler: nbtasks must not divide nbmax. NS=5, NM=5, R=17,
        // G=4 → nbmax = 4, nbtasks = 25, sets = 7, nbused = 1, R2 = 1.
        // That's case R2 ≠ 0. For R2 = 0 take R = 16: nbmax = 4, R2 = 0.
        let i = Instance::new(5, 5, 16);
        let t = flat(100.0, 10.0);
        let b = makespan(i, &t, 4).unwrap();
        assert_eq!((b.r2, b.nbused, b.sets), (0, 1, 7));
        // Rleft = 16 − 4 = 12 procs for ⌊100/10⌋ = 10 posts each: 120
        // absorbable ≥ 24 accumulated − handled, so trail = nbused = 1.
        assert_eq!(b.trailing_posts, 1);
        assert_eq!(b.makespan, 700.0 + 10.0);
    }

    #[test]
    fn equation_4_dedicated_posts_keep_up() {
        // R = 22, G = 4, NS = 5 → nbmax = 5, R2 = 2. TG/TP = 10 →
        // Npossible = 20 ≥ nbmax: no overpass. NM = 4 → 20 tasks, 4 sets.
        let i = Instance::new(5, 4, 22);
        let t = flat(100.0, 10.0);
        let b = makespan(i, &t, 4).unwrap();
        assert_eq!((b.r2, b.nbused), (2, 0));
        // Only the last set's nbmax = 5 posts trail; one wave on 22.
        assert_eq!(b.trailing_posts, 5);
        assert_eq!(b.makespan, 400.0 + 10.0);
    }

    #[test]
    fn equation_4_overpassing() {
        // Make posts slow: TG = 100, TP = 60 → ratio = 1, Npossible = R2.
        // R = 22, G = 4, NS = 5: nbmax = 5, R2 = 2 → excess 3/set.
        // NM = 4: 4 sets → trailing = 3·3 + 5 = 14 ⇒ ⌈14/22⌉ = 1 wave.
        let i = Instance::new(5, 4, 22);
        let t = flat(100.0, 60.0);
        let b = makespan(i, &t, 4).unwrap();
        assert_eq!(b.trailing_posts, 14);
        assert_eq!(b.makespan, 400.0 + 60.0);
    }

    #[test]
    fn equation_5_incomplete_set_with_dedicated_posts() {
        // R = 17, G = 4, NS = 4 → nbmax = 4, R2 = 1. NM = 5 → 20 tasks…
        // 20 % 4 = 0; use NS = 4, NM = 5, nbtasks = 20 — need nbused ≠ 0
        // so pick NS = 3, NM = 7 → 21 tasks, nbmax = 3 (NS binds),
        // R2 = 17 − 12 = 5, sets = 7, nbused = 0. Hmm — pick NS = 4,
        // NM = 5, R = 17, G = 4: nbmax = 4, nbtasks = 20, nbused = 0.
        // Choose NM = 6, NS = 4, R = 17: nbtasks 24, nbused 0. NM = 5,
        // NS = 5, R = 17: nbmax = 4, nbtasks = 25, nbused = 1, R2 = 1. ✓
        let i = Instance::new(5, 5, 17);
        let t = flat(100.0, 60.0); // ratio 1 → Npossible = 1, excess 3.
        let b = makespan(i, &t, 4).unwrap();
        assert_eq!((b.r2, b.nbused, b.sets), (1, 1, 7));
        // noverpass = (7−2)·3 = 15, novertot = 19, Rleft = 17−4 = 13
        // absorbs 13 → trailing = 1 + 6 = 7 ⇒ 1 wave of 60 s.
        assert_eq!(b.trailing_posts, 7);
        assert_eq!(b.makespan, 760.0);
    }

    #[test]
    fn single_set_case_has_no_negative_overpass() {
        // sets = 1 with nbused ≠ 0 exercises the (n−2) guard.
        let i = Instance::new(10, 1, 30); // 10 tasks, G = 4 → nbmax = 7
        let t = flat(100.0, 60.0);
        let b = makespan(i, &t, 4).unwrap();
        assert_eq!(b.sets, 2); // 10 tasks / 7 = 2 sets, nbused = 3
                               // noverpass = 0·excess, novertot = 7, Rleft = 30 − 12 = 18 ≥ 7.
        assert_eq!(b.trailing_posts, 3);
    }

    #[test]
    fn best_group_for_paper_example() {
        // Paper §4.2: R = 53, 10 scenarios → optimal grouping G = 7.
        let i = Instance::new(10, 1800, 53);
        let b = best_group(i, &table()).unwrap();
        assert_eq!(b.g, 7);
        assert_eq!(b.nbmax, 7);
        assert_eq!(b.r2, 4);
    }

    #[test]
    fn best_group_uses_groups_of_11_with_plentiful_resources() {
        // R ≥ 11·NS: every scenario gets its own group of 11.
        let i = Instance::new(10, 1800, 115);
        let b = best_group(i, &table()).unwrap();
        assert_eq!(b.g, 11);
        assert_eq!(b.nbmax, 10);
    }

    #[test]
    fn best_group_none_when_cluster_too_small() {
        // Instance::new requires r ≥ 1; 3 processors fit no group.
        let i = Instance::new(2, 2, 3);
        assert!(best_group(i, &table()).is_none());
    }

    #[test]
    fn makespan_monotone_in_nm() {
        let t = table();
        let base = makespan(Instance::new(10, 100, 53), &t, 7)
            .unwrap()
            .makespan;
        let more = makespan(Instance::new(10, 200, 53), &t, 7)
            .unwrap()
            .makespan;
        assert!(more > base);
    }
}
