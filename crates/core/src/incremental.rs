//! Incremental scenario repartition — Algorithm 1 as an online
//! scheduler.
//!
//! The batch greedy of [`crate::hetero::repartition`] assigns `NS`
//! scenarios in one pass. Its state after `n` steps — the per-cluster
//! counts — is a pure function of `n` alone: step `n+1` looks only at
//! the counts, so the greedy is *prefix-nested* (the counts after `n`
//! arrivals extend the counts after `n − 1`). That property makes the
//! algorithm incremental for free:
//!
//! * **arrival** — one more greedy step ([`IncrementalRepartition::push`]);
//! * **departure** — pop the last greedy choice; when the departing
//!   scenario sits on a different cluster, a single migration restores
//!   the greedy counts ([`IncrementalRepartition::remove_from`]);
//! * **cluster join/leave** — replay the greedy over the *cached*
//!   performance vectors ([`IncrementalRepartition::join`] /
//!   [`IncrementalRepartition::leave`]). The replay is a pure scan
//!   (`O(clusters × n)`); the expensive part — the per-`(cluster, k)`
//!   heuristic evaluations behind the vectors — is never repeated.
//!
//! The hard invariant, pinned by `tests/incremental_repartition.rs`:
//! after any operation sequence, the counts equal a from-scratch
//! [`crate::hetero::repartition_n`] over the current vectors, bitwise.

use crate::hetero::{repartition_n, PerformanceVector};
use oa_platform::cluster::ClusterId;

/// What [`IncrementalRepartition::remove_from`] had to do to restore
/// the greedy counts after a departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// The cluster the departing scenario vacated.
    pub vacated: ClusterId,
    /// The greedy choice that was popped (last arrival's cluster).
    pub popped: ClusterId,
    /// `Some((from, to))` when one scenario must migrate to restore
    /// the greedy counts; `None` when the departure popped cleanly.
    pub migration: Option<(ClusterId, ClusterId)>,
}

/// Migrations a cluster join/leave forces: `(from, to, scenarios)`
/// triples, in ascending `(from, to)` order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rebalance {
    /// Scenario moves needed to match the fresh greedy counts.
    pub moves: Vec<(ClusterId, ClusterId, u32)>,
}

/// Online Algorithm 1 over cached performance vectors.
///
/// # Examples
///
/// ```
/// use oa_platform::cluster::ClusterId;
/// use oa_sched::hetero::PerformanceVector;
/// use oa_sched::incremental::IncrementalRepartition;
///
/// let fast = PerformanceVector { cluster: ClusterId(0), makespans: vec![10.0, 20.0, 30.0] };
/// let slow = PerformanceVector { cluster: ClusterId(1), makespans: vec![25.0, 50.0, 75.0] };
/// let mut rep = IncrementalRepartition::new(vec![fast, slow]);
///
/// // Three arrivals reproduce the batch repartition [2, 1]...
/// assert_eq!(rep.push(), Some(ClusterId(0)));
/// assert_eq!(rep.push(), Some(ClusterId(0)));
/// assert_eq!(rep.push(), Some(ClusterId(1)));
/// assert_eq!(rep.counts(), &[2, 1]);
///
/// // ...and a departure from cluster 0 pops back to the 2-arrival state.
/// let dep = rep.remove_from(ClusterId(0)).unwrap();
/// assert_eq!(dep.migration, Some((ClusterId(1), ClusterId(0))));
/// assert_eq!(rep.counts(), &[2, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalRepartition {
    vectors: Vec<PerformanceVector>,
    counts: Vec<u32>,
    choices: Vec<ClusterId>,
}

impl IncrementalRepartition {
    /// Starts with `vectors` (possibly empty — clusters may join later)
    /// and no scenarios. Panics when the vectors disagree on coverage.
    #[must_use]
    pub fn new(vectors: Vec<PerformanceVector>) -> Self {
        if let Some(first) = vectors.first() {
            assert!(
                vectors.iter().all(|v| v.len() == first.len()),
                "performance vectors disagree on NS"
            );
        }
        let counts = vec![0; vectors.len()];
        Self {
            vectors,
            counts,
            choices: Vec::new(),
        }
    }

    /// Scenarios currently placed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when no scenario is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Largest scenario population the cached vectors cover.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.vectors.first().map_or(0, PerformanceVector::len)
    }

    /// Per-cluster scenario counts, position-aligned with the vectors.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The cached performance vectors.
    #[must_use]
    pub fn vectors(&self) -> &[PerformanceVector] {
        &self.vectors
    }

    /// Scenarios currently planned on `cluster` (0 for unknown ids).
    #[must_use]
    pub fn count_of(&self, cluster: ClusterId) -> u32 {
        self.position(cluster).map_or(0, |i| self.counts[i])
    }

    /// Predicted grid makespan of the current counts: the slowest
    /// cluster's predicted makespan for its load (0 when idle).
    #[must_use]
    pub fn predicted_makespan(&self) -> f64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &k)| k > 0)
            .map(|(i, &k)| self.vectors[i].of(k))
            .fold(0.0, f64::max)
    }

    fn position(&self, cluster: ClusterId) -> Option<usize> {
        self.vectors.iter().position(|v| v.cluster == cluster)
    }

    /// One arrival: the next greedy step of Algorithm 1 (strict `<`
    /// scan, ties to the first position — the same comparison as the
    /// batch loop). Returns the chosen cluster, or `None` when the
    /// grid is at capacity or no cluster can take one more scenario
    /// (a fully priced-out grid refuses the arrival instead of
    /// defaulting to the first cluster as the batch loop would — an
    /// online scheduler must reject what it cannot place).
    pub fn push(&mut self) -> Option<ClusterId> {
        if self.choices.len() >= self.capacity() {
            return None;
        }
        let mut ms_min = f64::INFINITY;
        let mut cluster_min = usize::MAX;
        for (i, v) in self.vectors.iter().enumerate() {
            let temp = v.of(self.counts[i] + 1);
            if temp < ms_min {
                ms_min = temp;
                cluster_min = i;
            }
        }
        if cluster_min == usize::MAX {
            return None; // every cluster is priced out (all +∞)
        }
        self.counts[cluster_min] += 1;
        let chosen = self.vectors[cluster_min].cluster;
        self.choices.push(chosen);
        Some(chosen)
    }

    /// Undoes the most recent arrival, returning the cluster it had
    /// been placed on.
    pub fn pop(&mut self) -> Option<ClusterId> {
        let last = self.choices.pop()?;
        let i = self.position(last).expect("choice cluster is live");
        self.counts[i] -= 1;
        Some(last)
    }

    /// One departure from `cluster`: restores the `n − 1`-arrival
    /// greedy counts by popping the last choice and, when the departed
    /// scenario lived elsewhere, migrating a single scenario from the
    /// popped cluster onto the vacated slot. Returns `None` when
    /// `cluster` is unknown or idle.
    pub fn remove_from(&mut self, cluster: ClusterId) -> Option<Departure> {
        let i = self.position(cluster)?;
        if self.counts[i] == 0 {
            return None;
        }
        let popped = self.choices.pop().expect("counts nonzero implies choices");
        let p = self.position(popped).expect("choice cluster is live");
        // Popping the stack decrements `popped` — that *is* the greedy
        // `n − 1` state. When the scenario actually left a different
        // cluster, the physical fix-up is one migration: a scenario of
        // `popped` relabels onto the vacated slot so the decrement
        // lands on `popped` there too. The counts need no further
        // adjustment either way.
        self.counts[p] -= 1;
        let migration = if popped == cluster {
            None
        } else {
            Some((popped, cluster))
        };
        Some(Departure {
            vacated: cluster,
            popped,
            migration,
        })
    }

    /// A cluster joins: caches its vector and replays the greedy over
    /// the enlarged grid (pure scans — no heuristic re-evaluation).
    /// Panics on coverage mismatch or a duplicate cluster id.
    pub fn join(&mut self, vector: PerformanceVector) -> Rebalance {
        assert!(
            self.vectors.is_empty() || vector.len() == self.capacity(),
            "joining vector disagrees on NS"
        );
        assert!(
            self.position(vector.cluster).is_none(),
            "cluster {} already joined",
            vector.cluster
        );
        let old = self.snapshot();
        self.vectors.push(vector);
        self.replay(&old)
    }

    /// A cluster leaves: drops its cached vector and replays the
    /// greedy over the survivors. Its scenarios are re-placed by the
    /// replay; the returned moves include their migrations. Returns
    /// `None` for an unknown cluster. Panics when no cluster survives
    /// while scenarios are still placed (the caller must drain first).
    pub fn leave(&mut self, cluster: ClusterId) -> Option<Rebalance> {
        let i = self.position(cluster)?;
        let old = self.snapshot();
        self.vectors.remove(i);
        Some(self.replay(&old))
    }

    /// Pre-mutation `(cluster, count)` pairs, for rebalance diffs.
    fn snapshot(&self) -> Vec<(ClusterId, u32)> {
        self.vectors
            .iter()
            .zip(&self.counts)
            .map(|(v, &k)| (v.cluster, k))
            .collect()
    }

    /// Re-derives counts and choices from scratch over the cached
    /// vectors and diffs against the pre-mutation counts.
    fn replay(&mut self, old: &[(ClusterId, u32)]) -> Rebalance {
        let n = self.choices.len();
        if self.vectors.is_empty() {
            assert!(n == 0, "no surviving cluster; cannot hold {n} scenario(s)");
            self.counts.clear();
            self.choices.clear();
            return Rebalance::default();
        }
        let fresh = repartition_n(&self.vectors, n);
        self.counts = fresh.nb_dags;
        self.choices = fresh.assignment;
        self.moves_between(old)
    }

    /// Pairs surpluses with deficits in ascending cluster-id order.
    fn moves_between(&self, old: &[(ClusterId, u32)]) -> Rebalance {
        let new_count = |c: ClusterId| self.count_of(c);
        let mut surplus: Vec<(ClusterId, u32)> = Vec::new(); // must shed
        let mut deficit: Vec<(ClusterId, u32)> = Vec::new(); // must gain
        for &(c, was) in old {
            let now = new_count(c);
            if was > now {
                surplus.push((c, was - now));
            }
        }
        for v in &self.vectors {
            let was = old
                .iter()
                .find(|&&(c, _)| c == v.cluster)
                .map_or(0, |&(_, k)| k);
            let now = new_count(v.cluster);
            if now > was {
                deficit.push((v.cluster, now - was));
            }
        }
        surplus.sort_by_key(|&(c, _)| c);
        deficit.sort_by_key(|&(c, _)| c);
        let mut moves = Vec::new();
        let mut di = 0usize;
        for (from, mut excess) in surplus {
            while excess > 0 && di < deficit.len() {
                let (to, need) = &mut deficit[di];
                let take = excess.min(*need);
                moves.push((from, *to, take));
                excess -= take;
                *need -= take;
                if *need == 0 {
                    di += 1;
                }
            }
        }
        Rebalance { moves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(ms: &[&[f64]]) -> Vec<PerformanceVector> {
        ms.iter()
            .enumerate()
            .map(|(i, v)| PerformanceVector {
                cluster: ClusterId(i as u32),
                makespans: v.to_vec(),
            })
            .collect()
    }

    #[test]
    fn pushes_match_batch_prefixes() {
        let v = vectors(&[&[5.0, 11.0, 18.0, 26.0], &[7.0, 15.0, 24.0, 34.0]]);
        let mut rep = IncrementalRepartition::new(v.clone());
        for n in 1..=4usize {
            assert!(rep.push().is_some());
            let batch = repartition_n(&v, n);
            assert_eq!(rep.counts(), &batch.nb_dags[..], "after {n} arrivals");
        }
        assert_eq!(rep.push(), None, "capacity exhausted");
    }

    #[test]
    fn clean_pop_and_migrating_departure() {
        let v = vectors(&[&[10.0, 20.0, 30.0], &[25.0, 50.0, 75.0]]);
        let mut rep = IncrementalRepartition::new(v.clone());
        rep.push();
        rep.push();
        rep.push(); // counts [2, 1], last choice cluster 1
        let dep = rep.remove_from(ClusterId(1)).unwrap();
        assert_eq!(dep.migration, None, "departing the last choice pops clean");
        assert_eq!(rep.counts(), repartition_n(&v, 2).nb_dags.as_slice());

        rep.push(); // back to [2, 1]
        let dep = rep.remove_from(ClusterId(0)).unwrap();
        assert_eq!(dep.migration, Some((ClusterId(1), ClusterId(0))));
        assert_eq!(rep.counts(), repartition_n(&v, 2).nb_dags.as_slice());
    }

    #[test]
    fn join_and_leave_replay_the_batch() {
        let v = vectors(&[&[10.0, 20.0, 30.0, 40.0]]);
        let mut rep = IncrementalRepartition::new(v);
        rep.push();
        rep.push();
        rep.push();
        assert_eq!(rep.counts(), &[3]);

        // A faster cluster joins and takes over two scenarios.
        let fast = PerformanceVector {
            cluster: ClusterId(7),
            makespans: vec![4.0, 8.0, 12.0, 16.0],
        };
        let reb = rep.join(fast);
        assert_eq!(rep.counts(), &[1, 2]);
        assert_eq!(reb.moves, vec![(ClusterId(0), ClusterId(7), 2)]);

        // It leaves again; its two scenarios return to the original
        // cluster (the third never moved).
        let reb = rep.leave(ClusterId(7)).unwrap();
        assert_eq!(rep.counts(), &[3]);
        assert_eq!(reb.moves, vec![(ClusterId(7), ClusterId(0), 2)]);
        assert_eq!(rep.leave(ClusterId(9)), None);
    }

    #[test]
    fn priced_out_grid_refuses_arrivals() {
        let v = vec![PerformanceVector {
            cluster: ClusterId(0),
            makespans: vec![f64::INFINITY; 2],
        }];
        let mut rep = IncrementalRepartition::new(v);
        assert_eq!(rep.push(), None);
        assert!(rep.is_empty());
    }

    #[test]
    fn empty_grid_accepts_joins_later() {
        let mut rep = IncrementalRepartition::new(Vec::new());
        assert_eq!(rep.capacity(), 0);
        assert_eq!(rep.push(), None);
        rep.join(PerformanceVector {
            cluster: ClusterId(3),
            makespans: vec![5.0, 10.0],
        });
        assert_eq!(rep.push(), Some(ClusterId(3)));
        assert_eq!(rep.count_of(ClusterId(3)), 1);
        assert_eq!(rep.predicted_makespan(), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn leave_with_no_room_panics() {
        let v = vectors(&[&[1.0, 2.0]]);
        let mut rep = IncrementalRepartition::new(v);
        rep.push();
        rep.leave(ClusterId(0));
    }
}
