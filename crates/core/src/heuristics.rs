//! The four grouping heuristics of Section 4.
//!
//! * [`Heuristic::Basic`] — Section 4.1: try every `G ∈ 4..=11`,
//!   evaluate Equations 1–5, keep the best; `nbmax` groups of `G`,
//!   the remaining `R2` processors dedicated to post-processing.
//! * [`Heuristic::RedistributeIdle`] (Improvement 1) — keep the basic
//!   `G`, but hand the processors that neither the groups nor the
//!   post-processing pool needs to the groups, enlarging some of them
//!   (e.g. `R = 53, NS = 10`: 3×8 + 4×7 + 1 post).
//! * [`Heuristic::NoPostReservation`] (Improvement 2) — reserve nothing
//!   for post-processing: for each candidate `G` give *all* leftover
//!   processors to the groups and run every post task at the end;
//!   candidates are compared with the event estimator.
//! * [`Heuristic::Knapsack`] (Improvement 3, the paper's best) — pick
//!   the multiset of group sizes by the exact bounded-knapsack DP
//!   maximizing `Σ 1/T[G]` under `Σ G·n_G ≤ R` and `Σ n_G ≤ NS`;
//!   leftover processors serve post-processing.
//! * [`Heuristic::KnapsackGreedy`] — ablation: same formulation solved
//!   with the greedy knapsack instead of the exact DP.
//! * [`Heuristic::Balanced`] — beyond the paper: the per-group-count
//!   knapsack sweep scored by the event estimator; dominates Basic and
//!   Knapsack by construction.

use serde::{Deserialize, Serialize};

use oa_knapsack::{solve_dp, solve_greedy, Item, Problem};
use oa_par::Pool;
use oa_platform::timing::TimingTable;
use oa_workflow::moldable::MoldableSpec;
use oa_workflow::task::MAX_PROCS;

use crate::analytic;
use crate::estimate::estimate;
use crate::grouping::Grouping;
use crate::params::{div_ceil_u64, Instance};

/// Errors raised by heuristic construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeuristicError {
    /// The cluster cannot fit even one group of 4 processors.
    ClusterTooSmall {
        /// Processors available.
        resources: u32,
    },
}

impl std::fmt::Display for HeuristicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeuristicError::ClusterTooSmall { resources } => {
                write!(
                    f,
                    "cluster with {resources} processors cannot run any group of 4..=11"
                )
            }
        }
    }
}

impl std::error::Error for HeuristicError {}

/// The grouping heuristics compared in Figures 8 and 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heuristic {
    /// Section 4.1 baseline.
    Basic,
    /// Improvement 1: redistribute idle processors across groups.
    RedistributeIdle,
    /// Improvement 2: all processors to groups, posts at the end.
    NoPostReservation,
    /// Improvement 3: exact knapsack grouping (the paper's best).
    Knapsack,
    /// Ablation: knapsack grouping via the greedy solver.
    KnapsackGreedy,
    /// Beyond the paper: the balanced refinement — per-group-count
    /// knapsacks plus the uniform candidates, scored with the event
    /// estimator. Never loses to [`Heuristic::Basic`] or
    /// [`Heuristic::Knapsack`] and repairs the raw knapsack's
    /// per-chain bottleneck (visible at small `NS`).
    Balanced,
}

impl Heuristic {
    /// The paper's three improvements plus the baseline, in figure
    /// order.
    pub const PAPER: [Heuristic; 4] = [
        Heuristic::Basic,
        Heuristic::RedistributeIdle,
        Heuristic::NoPostReservation,
        Heuristic::Knapsack,
    ];

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Heuristic::Basic => "basic",
            Heuristic::RedistributeIdle => "gain1-redistribute",
            Heuristic::NoPostReservation => "gain2-no-post-reservation",
            Heuristic::Knapsack => "gain3-knapsack",
            Heuristic::KnapsackGreedy => "knapsack-greedy",
            Heuristic::Balanced => "balanced",
        }
    }

    /// Builds the grouping this heuristic chooses for `inst` on a
    /// cluster with timing `table`.
    pub fn grouping(self, inst: Instance, table: &TimingTable) -> Result<Grouping, HeuristicError> {
        self.grouping_with(inst, table, &Pool::serial())
    }

    /// Like [`Heuristic::grouping`], with the candidate searches —
    /// the `G ∈ {4..11}` analytic evaluation, the Improvement-2
    /// estimator sweep and the per-group-count knapsacks of
    /// [`Heuristic::Balanced`] — fanned out on `pool`. Candidates are
    /// generated and reduced in the same order as the serial path
    /// (strict-less on the simulated makespan), so the chosen grouping
    /// is bit-identical for any job count.
    pub fn grouping_with(
        self,
        inst: Instance,
        table: &TimingTable,
        pool: &Pool,
    ) -> Result<Grouping, HeuristicError> {
        match self {
            Heuristic::Basic => basic(inst, table, pool),
            Heuristic::RedistributeIdle => redistribute_idle(inst, table, pool),
            Heuristic::NoPostReservation => no_post_reservation(inst, table, pool),
            Heuristic::Knapsack => knapsack(inst, table, Solver::Exact),
            Heuristic::KnapsackGreedy => knapsack(inst, table, Solver::Greedy),
            Heuristic::Balanced => balanced(inst, table, pool),
        }
    }

    /// Convenience: the simulated makespan of this heuristic's grouping.
    pub fn makespan(self, inst: Instance, table: &TimingTable) -> Result<f64, HeuristicError> {
        self.makespan_with(inst, table, &Pool::serial())
    }

    /// [`Heuristic::makespan`] on top of [`Heuristic::grouping_with`].
    pub fn makespan_with(
        self,
        inst: Instance,
        table: &TimingTable,
        pool: &Pool,
    ) -> Result<f64, HeuristicError> {
        let g = self.grouping_with(inst, table, pool)?;
        Ok(estimate(inst, table, &g)
            .expect("heuristics construct valid groupings")
            .makespan)
    }
}

/// Relative gain of `improved` over `baseline`, in percent (positive =
/// improvement), as plotted in Figures 8 and 10.
pub fn gain_pct(baseline: f64, improved: f64) -> f64 {
    assert!(baseline > 0.0, "baseline makespan must be positive");
    (baseline - improved) / baseline * 100.0
}

fn basic(inst: Instance, table: &TimingTable, pool: &Pool) -> Result<Grouping, HeuristicError> {
    let best = analytic::best_group_with(inst, table, pool)
        .ok_or(HeuristicError::ClusterTooSmall { resources: inst.r })?;
    Ok(Grouping::uniform(best.g, best.nbmax, best.r2))
}

/// Processors the post-processing phase actually needs to keep up with
/// `nbmax` simultaneous groups of `g`: `⌈nbmax / ⌊TG/TP⌋⌉` (Section
/// 4.2's `Runused` discussion), clamped to at least one when any posts
/// exist and `R2 > 0`.
fn posts_needed(table: &TimingTable, g: u32, nbmax: u32) -> u32 {
    let ratio = table.posts_per_main(g);
    if ratio == 0 {
        // Posts are longer than mains: every dedicated processor helps;
        // treat all of R2 as needed.
        u32::MAX
    } else {
        div_ceil_u64(nbmax as u64, ratio) as u32
    }
}

fn redistribute_idle(
    inst: Instance,
    table: &TimingTable,
    pool: &Pool,
) -> Result<Grouping, HeuristicError> {
    let best = analytic::best_group_with(inst, table, pool)
        .ok_or(HeuristicError::ClusterTooSmall { resources: inst.r })?;
    let needed = posts_needed(table, best.g, best.nbmax).min(best.r2);
    let mut spare = best.r2 - needed;
    let mut groups = vec![best.g; best.nbmax as usize];
    // Hand spare processors to groups one by one, round-robin, capped
    // at 11 per group ("redistribute the resources left unoccupied
    // among the groups").
    'outer: loop {
        let mut gave = false;
        for size in &mut groups {
            if spare == 0 {
                break 'outer;
            }
            if *size < MAX_PROCS {
                *size += 1;
                spare -= 1;
                gave = true;
            }
        }
        if !gave {
            break; // every group is at the cap
        }
    }
    Ok(Grouping::new(groups, needed + spare))
}

/// Scores `cands` with the event estimator (fanned out on `pool`) and
/// returns the first strict-makespan minimizer — exactly the fold the
/// serial loops performed, so ties keep resolving toward the earlier
/// candidate regardless of the job count.
fn pick_best(
    inst: Instance,
    table: &TimingTable,
    pool: &Pool,
    cands: Vec<Grouping>,
) -> Option<Grouping> {
    let scores = pool.par_map(&cands, |cand| {
        estimate(inst, table, cand)
            .expect("constructed grouping is valid")
            .makespan
    });
    let mut best: Option<(f64, usize)> = None;
    for (i, &ms) in scores.iter().enumerate() {
        if best.is_none_or(|(b, _)| ms < b) {
            best = Some((ms, i));
        }
    }
    best.map(|(_, i)| {
        let mut cands = cands;
        cands.swap_remove(i)
    })
}

fn no_post_reservation(
    inst: Instance,
    table: &TimingTable,
    pool: &Pool,
) -> Result<Grouping, HeuristicError> {
    let mut cands: Vec<Grouping> = Vec::new();
    for g in MoldableSpec::pcr().allocations() {
        let nbmax = inst.nbmax(g);
        if nbmax == 0 {
            continue;
        }
        let mut groups = vec![g; nbmax as usize];
        let mut spare = inst.r - nbmax * g;
        // All leftover processors go to the groups, evenly, capped at 11.
        'outer: loop {
            let mut gave = false;
            for size in &mut groups {
                if spare == 0 {
                    break 'outer;
                }
                if *size < MAX_PROCS {
                    *size += 1;
                    spare -= 1;
                    gave = true;
                }
            }
            if !gave {
                break;
            }
        }
        // Nothing is *reserved* for posts, but processors stranded by
        // the 11-per-group cap would otherwise idle — let them serve
        // post-processing rather than waste.
        cands.push(Grouping::new(groups, spare));
    }
    pick_best(inst, table, pool, cands).ok_or(HeuristicError::ClusterTooSmall { resources: inst.r })
}

fn balanced(inst: Instance, table: &TimingTable, pool: &Pool) -> Result<Grouping, HeuristicError> {
    let spec = MoldableSpec::pcr();
    let items: Vec<oa_knapsack::Item> = spec
        .allocations()
        .map(|g| Item::new(g, 1.0 / table.main_secs(g), inst.ns))
        .collect();
    // Per-group-count knapsack candidates — the `NS` exact DP solves
    // are the expensive half of this heuristic, so they fan out too.
    let ks: Vec<u32> = (1..=inst.ns).collect();
    let mut cands: Vec<Grouping> = pool
        .par_map(&ks, |&k| {
            let sol = solve_dp(&Problem::new(items.clone(), inst.r, k));
            let mut groups = Vec::with_capacity(sol.copies as usize);
            for (i, &n) in sol.counts.iter().enumerate() {
                let g = spec.allocation_at(i).expect("items follow the spec");
                groups.extend(std::iter::repeat_n(g, n as usize));
            }
            (!groups.is_empty()).then(|| Grouping::new(groups, inst.r - sol.cost))
        })
        .into_iter()
        .flatten()
        .collect();
    // Uniform candidates of the basic sweep.
    for g in spec.allocations() {
        let nbmax = inst.nbmax(g);
        if nbmax > 0 {
            cands.push(Grouping::uniform(g, nbmax, inst.r - nbmax * g));
        }
    }
    cands.retain(|c| c.validate(inst).is_ok());
    pick_best(inst, table, pool, cands).ok_or(HeuristicError::ClusterTooSmall { resources: inst.r })
}

enum Solver {
    Exact,
    Greedy,
}

fn knapsack(
    inst: Instance,
    table: &TimingTable,
    solver: Solver,
) -> Result<Grouping, HeuristicError> {
    let spec = MoldableSpec::pcr();
    let items: Vec<Item> = spec
        .allocations()
        .map(|g| Item::new(g, 1.0 / table.main_secs(g), inst.ns))
        .collect();
    let problem = Problem::new(items, inst.r, inst.ns);
    let sol = match solver {
        Solver::Exact => solve_dp(&problem),
        Solver::Greedy => solve_greedy(&problem),
    };
    let mut groups = Vec::with_capacity(sol.copies as usize);
    for (i, &n) in sol.counts.iter().enumerate() {
        let g = spec.allocation_at(i).expect("items follow the spec");
        groups.extend(std::iter::repeat_n(g, n as usize));
    }
    if groups.is_empty() {
        return Err(HeuristicError::ClusterTooSmall { resources: inst.r });
    }
    // Whatever the knapsack leaves unused serves post-processing.
    let post = inst.r - sol.cost;
    Ok(Grouping::new(groups, post))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;

    fn table() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    fn inst53() -> Instance {
        Instance::new(10, 1800, 53)
    }

    #[test]
    fn basic_reproduces_paper_example() {
        let g = Heuristic::Basic.grouping(inst53(), &table()).unwrap();
        assert_eq!(g.groups(), &[7; 7]);
        assert_eq!(g.post_procs, 4);
    }

    #[test]
    fn improvement_1_reproduces_paper_example() {
        // "3 groups with 8 resources and 4 groups with 7 resources and
        // 1 resource for the post processing tasks."
        let g = Heuristic::RedistributeIdle
            .grouping(inst53(), &table())
            .unwrap();
        assert_eq!(g.groups(), &[8, 8, 8, 7, 7, 7, 7]);
        assert_eq!(g.post_procs, 1);
    }

    #[test]
    fn improvement_2_reserves_nothing_for_posts() {
        let g = Heuristic::NoPostReservation
            .grouping(inst53(), &table())
            .unwrap();
        assert_eq!(g.post_procs, 0);
        assert_eq!(g.total_procs(), 53);
    }

    #[test]
    fn knapsack_uses_capacity_within_constraints() {
        let inst = inst53();
        let g = Heuristic::Knapsack.grouping(inst, &table()).unwrap();
        g.validate(inst).unwrap();
        assert!(g.group_count() <= 10);
        assert!(g.total_procs() <= 53);
    }

    #[test]
    fn all_heuristics_validate_across_resource_sweep() {
        let t = table();
        for r in 11..=120 {
            let inst = Instance::new(10, 24, r);
            for h in Heuristic::PAPER {
                let g = h.grouping(inst, &t).unwrap();
                g.validate(inst)
                    .unwrap_or_else(|e| panic!("{h:?} at R={r}: {e}"));
            }
        }
    }

    #[test]
    fn cluster_too_small_error() {
        let inst = Instance::new(10, 10, 3);
        for h in Heuristic::PAPER {
            assert_eq!(
                h.grouping(inst, &table()),
                Err(HeuristicError::ClusterTooSmall { resources: 3 }),
                "{h:?}"
            );
        }
    }

    #[test]
    fn improvements_never_lose_much_to_basic() {
        // The paper observes gains mostly in [0, 12] % with occasional
        // tiny regressions (Figure 8 dips slightly below 0).
        let t = table();
        for r in (11..=120).step_by(7) {
            let inst = Instance::new(10, 120, r);
            let base = Heuristic::Basic.makespan(inst, &t).unwrap();
            for h in [
                Heuristic::RedistributeIdle,
                Heuristic::NoPostReservation,
                Heuristic::Knapsack,
            ] {
                let ms = h.makespan(inst, &t).unwrap();
                let gain = gain_pct(base, ms);
                assert!(gain > -5.0, "{h:?} at R={r}: gain {gain:.2}%");
                assert!(
                    gain < 30.0,
                    "{h:?} at R={r}: gain {gain:.2}% implausibly large"
                );
            }
        }
    }

    #[test]
    fn knapsack_beats_greedy_knapsack_somewhere() {
        // The DP maximizes throughput, not makespan, so on isolated
        // resource counts end effects can favor either grouping — but
        // across the sweep the exact solver must dominate.
        let t = table();
        let (mut exact_wins, mut greedy_wins) = (0, 0);
        for r in 11..=120 {
            let inst = Instance::new(10, 120, r);
            let e = Heuristic::Knapsack.makespan(inst, &t).unwrap();
            let g = Heuristic::KnapsackGreedy.makespan(inst, &t).unwrap();
            assert!(e <= g * 1.02 + 1e-6, "exact ≫ greedy at R={r}: {e} vs {g}");
            if e < g - 1e-6 {
                exact_wins += 1;
            } else if g < e - 1e-6 {
                greedy_wins += 1;
            }
        }
        assert!(
            exact_wins > greedy_wins,
            "exact {exact_wins} vs greedy {greedy_wins}"
        );
    }

    #[test]
    fn with_plentiful_resources_all_converge_to_ns_groups_of_11() {
        // "With a lot of resources, there are no more gains since there
        // are NS groups of 11 resources."
        let t = table();
        let inst = Instance::new(10, 120, 120);
        for h in Heuristic::PAPER {
            let g = h.grouping(inst, &t).unwrap();
            assert_eq!(g.groups(), &[11; 10], "{h:?}");
        }
    }

    #[test]
    fn balanced_never_loses_to_basic_or_knapsack() {
        let t = table();
        for ns in [2u32, 5, 10] {
            for r in (11..=120).step_by(9) {
                let inst = Instance::new(ns, 60, r);
                let bal = Heuristic::Balanced.makespan(inst, &t).unwrap();
                let basic = Heuristic::Basic.makespan(inst, &t).unwrap();
                let knap = Heuristic::Knapsack.makespan(inst, &t).unwrap();
                assert!(
                    bal <= basic + 1e-6,
                    "NS={ns} R={r}: bal {bal} > basic {basic}"
                );
                assert!(
                    bal <= knap + 1e-6,
                    "NS={ns} R={r}: bal {bal} > knapsack {knap}"
                );
            }
        }
    }

    #[test]
    fn balanced_repairs_the_small_ensemble_pitfall() {
        // At NS = 2 the raw knapsack can pin a chain to a slow small
        // group; the balanced sweep must recover the basic grouping.
        let t = table();
        let mut repaired = 0;
        for r in 11..=60 {
            let inst = Instance::new(2, 120, r);
            let knap = Heuristic::Knapsack.makespan(inst, &t).unwrap();
            let bal = Heuristic::Balanced.makespan(inst, &t).unwrap();
            if bal < knap - 1e-6 {
                repaired += 1;
            }
        }
        assert!(
            repaired > 0,
            "balanced never improved on the raw knapsack at NS = 2"
        );
    }

    #[test]
    fn gain_pct_math() {
        assert_eq!(gain_pct(200.0, 180.0), 10.0);
        assert_eq!(gain_pct(100.0, 112.0), -12.0);
    }

    #[test]
    fn posts_needed_guard_when_posts_longer_than_mains() {
        let t = TimingTable::new([50.0; 8], 60.0).unwrap();
        assert_eq!(posts_needed(&t, 4, 5), u32::MAX);
    }
}
