//! The totally ordered `f64` heap key shared by every executor.
//!
//! All the discrete-event loops in the workspace — the fast estimator
//! here, the full executor / failure / unfused simulators in `oa-sim`,
//! the generic-workload estimator, and the moldable list scheduler in
//! `oa-baselines` — keep min-heaps of event times. `f64` is not `Ord`,
//! so each of them used to carry its own newtype; this is the single
//! shared copy. [`TimeKey`] extends it to the `(instant, payload)`
//! min-heap keys those loops actually store, and the tick helpers
//! ([`exact_ticks`], [`is_tick_exact`]) decide when a clock value can
//! move to the integer-second representation of `oa-sim`'s calendar
//! queue and fast-forward kernel without changing a single output bit.

use std::cmp::Reverse;

/// An `f64` time usable as a heap key: total order via
/// [`f64::total_cmp`], no `NaN`s by construction (simulation clocks
/// only ever add positive finite durations).
///
/// # Examples
///
/// ```
/// use std::cmp::Reverse;
/// use std::collections::BinaryHeap;
/// use oa_sched::time::Time;
///
/// let mut heap = BinaryHeap::new(); // min-heap via Reverse
/// heap.extend([Reverse(Time(3.0)), Reverse(Time(1.0)), Reverse(Time(2.0))]);
/// assert_eq!(heap.pop(), Some(Reverse(Time(1.0))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(
    /// The wrapped time, seconds.
    pub f64,
);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The `(instant, payload)` min-heap key of the discrete-event loops:
/// earliest instant first, payload (group index, processor id, …) as
/// the deterministic tie-break. Every loop used to spell the same
/// `Reverse((Time(t), idx))` tuple by hand; this is the shared name.
///
/// # Examples
///
/// ```
/// use std::collections::BinaryHeap;
/// use oa_sched::time::{time_key, TimeKey};
///
/// let mut busy: BinaryHeap<TimeKey<usize>> = BinaryHeap::new();
/// busy.push(time_key(20.0, 0));
/// busy.push(time_key(10.0, 1));
/// let (t, g) = busy.pop().unwrap().0;
/// assert_eq!((t.0, g), (10.0, 1));
/// ```
pub type TimeKey<P> = Reverse<(Time, P)>;

/// Builds a [`TimeKey`]: the canonical way to enqueue an event at
/// instant `t` tagged with `payload`.
#[inline]
#[must_use]
pub fn time_key<P>(t: f64, payload: P) -> TimeKey<P> {
    Reverse((Time(t), payload))
}

/// Largest clock value whose integer arithmetic is exact in `f64`
/// (every integer up to `2^53` has an exact representation, so sums
/// and differences of integral seconds below it never round).
pub const MAX_EXACT_SECS: f64 = 9_007_199_254_740_992.0; // 2^53

/// Converts an integral-second duration or instant to its tick count,
/// or `None` when the value is not exactly representable as an
/// integer number of seconds (fractional, negative, or ≥ `2^53`).
///
/// This is the gate of `oa-sim`'s integer-time kernel: when every
/// duration and failure instant of a run passes, simulated clocks are
/// pure integer sums, `f64` addition on them is exact, and the
/// steady-state fast-forward can advance whole cycles arithmetically
/// while staying bitwise identical to event-by-event execution.
///
/// # Examples
///
/// ```
/// use oa_sched::time::exact_ticks;
///
/// assert_eq!(exact_ticks(1742.0), Some(1742));
/// assert_eq!(exact_ticks(180.0), Some(180));
/// assert_eq!(exact_ticks(168.14285714285714), None); // preset post TP
/// assert_eq!(exact_ticks(-1.0), None);
/// ```
#[inline]
#[must_use]
pub fn exact_ticks(secs: f64) -> Option<u64> {
    if secs.is_finite() && (0.0..MAX_EXACT_SECS).contains(&secs) && secs.fract() == 0.0 {
        Some(secs as u64)
    } else {
        None
    }
}

/// Whether `secs` is an exact integral-second value (see
/// [`exact_ticks`]).
#[inline]
#[must_use]
pub fn is_tick_exact(secs: f64) -> bool {
    exact_ticks(secs).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_on_floats() {
        assert!(Time(1.0) < Time(2.0));
        assert!(Time(-0.0) < Time(0.0)); // total_cmp distinguishes zeros
        assert_eq!(Time(5.5).cmp(&Time(5.5)), std::cmp::Ordering::Equal);
        assert_eq!(
            Time(1.0).partial_cmp(&Time(2.0)),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn heap_pops_in_time_order() {
        use std::cmp::Reverse;
        let mut h = std::collections::BinaryHeap::new();
        for t in [4.0, 0.5, 2.25, 1.0] {
            h.push(Reverse(Time(t)));
        }
        let popped: Vec<f64> = std::iter::from_fn(|| h.pop().map(|Reverse(Time(t))| t)).collect();
        assert_eq!(popped, vec![0.5, 1.0, 2.25, 4.0]);
    }
}
