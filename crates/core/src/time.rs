//! The totally ordered `f64` heap key shared by every executor.
//!
//! All the discrete-event loops in the workspace — the fast estimator
//! here, the full executor / failure / unfused simulators in `oa-sim`,
//! the generic-workload estimator, and the moldable list scheduler in
//! `oa-baselines` — keep min-heaps of event times. `f64` is not `Ord`,
//! so each of them used to carry its own newtype; this is the single
//! shared copy.

/// An `f64` time usable as a heap key: total order via
/// [`f64::total_cmp`], no `NaN`s by construction (simulation clocks
/// only ever add positive finite durations).
///
/// # Examples
///
/// ```
/// use std::cmp::Reverse;
/// use std::collections::BinaryHeap;
/// use oa_sched::time::Time;
///
/// let mut heap = BinaryHeap::new(); // min-heap via Reverse
/// heap.extend([Reverse(Time(3.0)), Reverse(Time(1.0)), Reverse(Time(2.0))]);
/// assert_eq!(heap.pop(), Some(Reverse(Time(1.0))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(
    /// The wrapped time, seconds.
    pub f64,
);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_on_floats() {
        assert!(Time(1.0) < Time(2.0));
        assert!(Time(-0.0) < Time(0.0)); // total_cmp distinguishes zeros
        assert_eq!(Time(5.5).cmp(&Time(5.5)), std::cmp::Ordering::Equal);
        assert_eq!(
            Time(1.0).partial_cmp(&Time(2.0)),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn heap_pops_in_time_order() {
        use std::cmp::Reverse;
        let mut h = std::collections::BinaryHeap::new();
        for t in [4.0, 0.5, 2.25, 1.0] {
            h.push(Reverse(Time(t)));
        }
        let popped: Vec<f64> = std::iter::from_fn(|| h.pop().map(|Reverse(Time(t))| t)).collect();
        assert_eq!(popped, vec![0.5, 1.0, 2.25, 4.0]);
    }
}
