//! The totally ordered `f64` heap key shared by every executor.
//!
//! All the discrete-event loops in the workspace — the fast estimator
//! here, the full executor / failure / unfused simulators in `oa-sim`,
//! the generic-workload estimator, and the moldable list scheduler in
//! `oa-baselines` — keep min-heaps of event times. `f64` is not `Ord`,
//! so each of them used to carry its own newtype; this is the single
//! shared copy. [`TimeKey`] extends it to the `(instant, payload)`
//! min-heap keys those loops actually store, and the tick helpers
//! ([`exact_ticks`], [`is_tick_exact`]) decide when a clock value can
//! move to the integer-second representation of `oa-sim`'s calendar
//! queue and fast-forward kernel without changing a single output bit.

use std::cmp::Reverse;

/// An `f64` time usable as a heap key: total order via
/// [`f64::total_cmp`], no `NaN`s by construction (simulation clocks
/// only ever add positive finite durations).
///
/// # Examples
///
/// ```
/// use std::cmp::Reverse;
/// use std::collections::BinaryHeap;
/// use oa_sched::time::Time;
///
/// let mut heap = BinaryHeap::new(); // min-heap via Reverse
/// heap.extend([Reverse(Time(3.0)), Reverse(Time(1.0)), Reverse(Time(2.0))]);
/// assert_eq!(heap.pop(), Some(Reverse(Time(1.0))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(
    /// The wrapped time, seconds.
    pub f64,
);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The `(instant, payload)` min-heap key of the discrete-event loops:
/// earliest instant first, payload (group index, processor id, …) as
/// the deterministic tie-break. Every loop used to spell the same
/// `Reverse((Time(t), idx))` tuple by hand; this is the shared name.
///
/// # Examples
///
/// ```
/// use std::collections::BinaryHeap;
/// use oa_sched::time::{time_key, TimeKey};
///
/// let mut busy: BinaryHeap<TimeKey<usize>> = BinaryHeap::new();
/// busy.push(time_key(20.0, 0));
/// busy.push(time_key(10.0, 1));
/// let (t, g) = busy.pop().unwrap().0;
/// assert_eq!((t.0, g), (10.0, 1));
/// ```
pub type TimeKey<P> = Reverse<(Time, P)>;

/// Builds a [`TimeKey`]: the canonical way to enqueue an event at
/// instant `t` tagged with `payload`.
#[inline]
#[must_use]
pub fn time_key<P>(t: f64, payload: P) -> TimeKey<P> {
    Reverse((Time(t), payload))
}

/// Largest clock value whose integer arithmetic is exact in `f64`
/// (every integer up to `2^53` has an exact representation, so sums
/// and differences of integral seconds below it never round).
pub const MAX_EXACT_SECS: f64 = 9_007_199_254_740_992.0; // 2^53

/// Converts an integral-second duration or instant to its tick count,
/// or `None` when the value is not exactly representable as an
/// integer number of seconds (fractional, negative, or ≥ `2^53`).
///
/// This is the gate of `oa-sim`'s integer-time kernel: when every
/// duration and failure instant of a run passes, simulated clocks are
/// pure integer sums, `f64` addition on them is exact, and the
/// steady-state fast-forward can advance whole cycles arithmetically
/// while staying bitwise identical to event-by-event execution.
///
/// # Examples
///
/// ```
/// use oa_sched::time::exact_ticks;
///
/// assert_eq!(exact_ticks(1742.0), Some(1742));
/// assert_eq!(exact_ticks(180.0), Some(180));
/// assert_eq!(exact_ticks(168.14285714285714), None); // preset post TP
/// assert_eq!(exact_ticks(-1.0), None);
/// ```
#[inline]
#[must_use]
pub fn exact_ticks(secs: f64) -> Option<u64> {
    if secs.is_finite() && (0.0..MAX_EXACT_SECS).contains(&secs) && secs.fract() == 0.0 {
        Some(secs as u64)
    } else {
        None
    }
}

/// Whether `secs` is an exact integral-second value (see
/// [`exact_ticks`]).
#[inline]
#[must_use]
pub fn is_tick_exact(secs: f64) -> bool {
    exact_ticks(secs).is_some()
}

/// A closed interval `[lo, hi]` of seconds — the abstract domain of the
/// static campaign certifier in `oa-analyze`.
///
/// Interval endpoints follow the usual outward-rounding convention in
/// spirit only: the certifier's bounds come from closed-form over- and
/// under-approximations, so plain `f64` arithmetic on the endpoints is
/// enough (no directed rounding). An unbounded-above interval uses
/// `f64::INFINITY` as `hi` — e.g. when a fault plan voids the upper
/// bound but the lower one still holds.
///
/// # Examples
///
/// ```
/// use oa_sched::time::TimeInterval;
///
/// let i = TimeInterval::new(10.0, 20.0).add(&TimeInterval::point(5.0));
/// assert_eq!((i.lo, i.hi), (15.0, 25.0));
/// assert!(i.contains(18.0));
/// assert!(!i.contains(14.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeInterval {
    /// Inclusive lower endpoint, seconds.
    pub lo: f64,
    /// Inclusive upper endpoint, seconds (`f64::INFINITY` = unbounded).
    pub hi: f64,
}

impl TimeInterval {
    /// `[lo, hi]`. Panics when the endpoints are inverted or `NaN` —
    /// certifier bounds are constructed, never parsed, so a bad
    /// interval is a logic error worth failing on.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[t, t]`.
    #[must_use]
    pub fn point(t: f64) -> Self {
        Self::new(t, t)
    }

    /// `[lo, +∞)`: a lower bound with no certified upper bound.
    #[must_use]
    pub fn at_least(lo: f64) -> Self {
        Self::new(lo, f64::INFINITY)
    }

    /// Minkowski sum: `[a+c, b+d]`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        Self::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Scales both endpoints by a non-negative factor.
    #[must_use]
    pub fn scale(&self, k: f64) -> Self {
        assert!(k >= 0.0, "negative interval scale {k}");
        Self::new(self.lo * k, self.hi * k)
    }

    /// Smallest interval containing both.
    #[must_use]
    pub fn hull(&self, other: &Self) -> Self {
        Self::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Whether `t` lies in the closed interval.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// `hi − lo` (`+∞` for half-bounded intervals).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Tightness ratio `hi / lo` — the certifier's quality metric
    /// (1.0 = exact). `None` when `lo` is zero or `hi` unbounded.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        if self.lo > 0.0 && self.hi.is_finite() {
            Some(self.hi / self.lo)
        } else {
            None
        }
    }

    /// Whether the upper endpoint is finite (a certified upper bound).
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.hi.is_finite()
    }
}

impl std::fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hi.is_finite() {
            write!(f, "[{:.0} s, {:.0} s]", self.lo, self.hi)
        } else {
            write!(f, "[{:.0} s, unbounded)", self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_on_floats() {
        assert!(Time(1.0) < Time(2.0));
        assert!(Time(-0.0) < Time(0.0)); // total_cmp distinguishes zeros
        assert_eq!(Time(5.5).cmp(&Time(5.5)), std::cmp::Ordering::Equal);
        assert_eq!(
            Time(1.0).partial_cmp(&Time(2.0)),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn interval_arithmetic() {
        let i = TimeInterval::new(100.0, 200.0);
        assert_eq!(
            i.add(&TimeInterval::point(50.0)),
            TimeInterval::new(150.0, 250.0)
        );
        assert_eq!(i.scale(2.0), TimeInterval::new(200.0, 400.0));
        assert_eq!(
            i.hull(&TimeInterval::new(150.0, 300.0)),
            TimeInterval::new(100.0, 300.0)
        );
        assert!(i.contains(100.0) && i.contains(200.0) && !i.contains(200.1));
        assert_eq!(i.width(), 100.0);
        assert_eq!(i.ratio(), Some(2.0));
        assert_eq!(format!("{i}"), "[100 s, 200 s]");

        let half = TimeInterval::at_least(7.0);
        assert!(!half.is_bounded());
        assert!(half.contains(1e300));
        assert_eq!(half.ratio(), None);
        assert_eq!(format!("{half}"), "[7 s, unbounded)");
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_panics() {
        let _ = TimeInterval::new(2.0, 1.0);
    }

    #[test]
    fn heap_pops_in_time_order() {
        use std::cmp::Reverse;
        let mut h = std::collections::BinaryHeap::new();
        for t in [4.0, 0.5, 2.25, 1.0] {
            h.push(Reverse(Time(t)));
        }
        let popped: Vec<f64> = std::iter::from_fn(|| h.pop().map(|Reverse(Time(t))| t)).collect();
        assert_eq!(popped, vec![0.5, 1.0, 2.25, 4.0]);
    }
}
