//! The paper's stated future work, implemented: "extending the present
//! work to a generic heuristic that can schedule the same kind of
//! workflow, made of independent chains of identical DAGs composed of
//! moldable tasks" (Conclusion).
//!
//! * [`workload`] — the generic chain-of-units model: blocking and
//!   trailing phases, arbitrary moldable allocation ranges, with the
//!   Ocean-Atmosphere campaign as the canonical instance;
//! * [`estimate`] — the event estimator generalized to that model;
//! * [`heuristic`] — the basic sweep and the knapsack grouping over an
//!   arbitrary range.
//!
//! Specialization tests pin the generic path to the Ocean-Atmosphere
//! path: on OA-shaped workloads both produce identical groupings and
//! identical makespans.

pub mod estimate;
pub mod heuristic;
pub mod workload;

pub use estimate::{estimate_generic, GenericEstimate, Groups, GroupsError};
pub use heuristic::{balanced_generic, basic_generic, knapsack_generic, solve, GenericError};
pub use workload::{Phase, PhaseTime, Workload, WorkloadError};
