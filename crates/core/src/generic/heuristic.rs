//! Generic grouping heuristics over arbitrary moldable ranges.
//!
//! The knapsack formulation carries over verbatim: items are the legal
//! allocations of the workload's range, an item's value is
//! `1 / unit_secs(g)`, the constraints are `Σ g·n_g ≤ R` and
//! `Σ n_g ≤ chains`. The basic heuristic generalizes by sweeping the
//! range with the generic estimator (the closed form of Equations 1–5
//! would need re-derivation per workload; the estimator subsumes it).

use oa_knapsack::{solve_dp, Item, Problem};

use super::estimate::{estimate_generic, GenericEstimate, Groups};
use super::workload::Workload;

/// Errors from generic heuristic construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenericError {
    /// Not even the smallest allocation fits on the machine.
    MachineTooSmall {
        /// Processors available.
        resources: u32,
        /// Smallest legal allocation.
        min_alloc: u32,
    },
}

impl std::fmt::Display for GenericError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenericError::MachineTooSmall {
                resources,
                min_alloc,
            } => write!(
                f,
                "{resources} processors cannot fit the smallest allocation ({min_alloc})"
            ),
        }
    }
}

impl std::error::Error for GenericError {}

/// The generic basic heuristic: for every allocation `g` in range,
/// form `min(chains, ⌊R/g⌋)` uniform groups, dedicate the remainder to
/// the trailing pool, score with the estimator, keep the best.
pub fn basic_generic(w: &Workload, r: u32) -> Result<Groups, GenericError> {
    let range = w.alloc_range();
    let mut best: Option<(f64, Groups)> = None;
    for g in range.allocations() {
        let count = (r / g).min(w.chains);
        if count == 0 {
            continue;
        }
        let pool = r - count * g;
        let cand = Groups::new(vec![g; count as usize], pool);
        let ms = estimate_generic(w, r, &cand)
            .expect("candidate is valid")
            .makespan;
        if best.as_ref().is_none_or(|(b, _)| ms < *b) {
            best = Some((ms, cand));
        }
    }
    best.map(|(_, g)| g).ok_or(GenericError::MachineTooSmall {
        resources: r,
        min_alloc: range.min_procs,
    })
}

/// The generic knapsack heuristic (the paper's Improvement 3 for any
/// chain-of-moldable-DAGs workload).
pub fn knapsack_generic(w: &Workload, r: u32) -> Result<Groups, GenericError> {
    let range = w.alloc_range();
    let items: Vec<Item> = range
        .allocations()
        .map(|g| Item::new(g, 1.0 / w.unit_secs(g), w.chains))
        .collect();
    let sol = solve_dp(&Problem::new(items, r, w.chains));
    let mut sizes = Vec::with_capacity(sol.copies as usize);
    for (i, &n) in sol.counts.iter().enumerate() {
        let g = range.allocation_at(i).expect("items follow the range");
        sizes.extend(std::iter::repeat_n(g, n as usize));
    }
    if sizes.is_empty() {
        return Err(GenericError::MachineTooSmall {
            resources: r,
            min_alloc: range.min_procs,
        });
    }
    Ok(Groups::new(sizes, r - sol.cost))
}

/// The balanced generic heuristic — our refinement of the knapsack
/// formulation for wide allocation ranges.
///
/// Raw throughput maximization has a blind spot the Ocean-Atmosphere
/// range (4..=11, a 2.75× spread) hides but wide ranges expose: when
/// the number of groups approaches the number of chains, each chain is
/// effectively pinned to one group, and a slow small group — added
/// because it still increases `Σ 1/T` — becomes the critical path
/// (`makespan ≥ units × unit_secs(smallest group)`). The fix: solve
/// the knapsack once per allowed group count `k ∈ 1..=chains`
/// (cardinality bound `k` instead of `chains`), include the uniform
/// groupings of the basic sweep, score every candidate with the event
/// estimator and keep the winner.
pub fn balanced_generic(w: &Workload, r: u32) -> Result<(Groups, GenericEstimate), GenericError> {
    let range = w.alloc_range();
    let items: Vec<Item> = range
        .allocations()
        .map(|g| Item::new(g, 1.0 / w.unit_secs(g), w.chains))
        .collect();

    let mut best: Option<(GenericEstimate, Groups)> = None;
    let consider = |cand: Groups, best: &mut Option<(GenericEstimate, Groups)>| {
        if cand.validate(w, r).is_err() {
            return;
        }
        let e = estimate_generic(w, r, &cand).expect("validated");
        if best.as_ref().is_none_or(|(b, _)| e.makespan < b.makespan) {
            *best = Some((e, cand));
        }
    };

    // Per-count knapsack candidates.
    for k in 1..=w.chains {
        let sol = solve_dp(&Problem::new(items.clone(), r, k));
        let mut sizes = Vec::with_capacity(sol.copies as usize);
        for (i, &n) in sol.counts.iter().enumerate() {
            let g = range.allocation_at(i).expect("items follow the range");
            sizes.extend(std::iter::repeat_n(g, n as usize));
        }
        if !sizes.is_empty() {
            consider(Groups::new(sizes, r - sol.cost), &mut best);
        }
    }
    // Uniform candidates (the basic sweep).
    for g in range.allocations() {
        let count = (r / g).min(w.chains);
        if count > 0 {
            consider(
                Groups::new(vec![g; count as usize], r - count * g),
                &mut best,
            );
        }
    }

    best.map(|(e, g)| (g, e))
        .ok_or(GenericError::MachineTooSmall {
            resources: r,
            min_alloc: range.min_procs,
        })
}

/// Convenience: the best of every generic heuristic.
pub fn solve(w: &Workload, r: u32) -> Result<(Groups, GenericEstimate), GenericError> {
    balanced_generic(w, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::workload::{Phase, PhaseTime};
    use oa_workflow::moldable::MoldableSpec;

    /// A molecular-dynamics-like workload: wide allocation range
    /// (2..=16) with near-linear scaling then saturation.
    fn md_workload(chains: u32, units: u32) -> Workload {
        let range = MoldableSpec {
            min_procs: 2,
            max_procs: 16,
        };
        let table: Vec<f64> = range
            .allocations()
            .map(|p| 40.0 + 4000.0 / p as f64 + 3.0 * p as f64)
            .collect();
        Workload::new(
            chains,
            units,
            vec![
                Phase {
                    name: "md".into(),
                    time: PhaseTime::Moldable { range, table },
                    blocking: true,
                },
                Phase {
                    name: "traj".into(),
                    time: PhaseTime::Sequential(25.0),
                    blocking: false,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn raw_knapsack_has_a_per_chain_bottleneck_pitfall() {
        // Documented pitfall: on wide ranges the raw throughput
        // knapsack pins chains to slow small groups. At R = 16 it
        // chooses [3,3,3,3,2,2] (higher Σ1/T) over [4,4,4,4], yet the
        // size-2 groups run their chains ~2× slower — the makespan is
        // far worse. This is invisible in the paper's 4..=11 range but
        // fundamental to the generic extension.
        let w = md_workload(6, 200);
        let b = basic_generic(&w, 16).unwrap();
        let k = knapsack_generic(&w, 16).unwrap();
        let bm = estimate_generic(&w, 16, &b).unwrap().makespan;
        let km = estimate_generic(&w, 16, &k).unwrap().makespan;
        assert!(
            k.sizes().len() > b.sizes().len(),
            "knapsack should over-split here"
        );
        assert!(km > bm * 1.2, "pitfall vanished: basic {bm}, knapsack {km}");
    }

    #[test]
    fn balanced_beats_or_ties_both_everywhere_and_wins_somewhere() {
        let w = md_workload(6, 200);
        let mut strict_wins = 0;
        for r in (4..=120).step_by(3) {
            let Ok(b) = basic_generic(&w, r) else {
                continue;
            };
            let k = knapsack_generic(&w, r).expect("feasible");
            let bm = estimate_generic(&w, r, &b).unwrap().makespan;
            let km = estimate_generic(&w, r, &k).unwrap().makespan;
            let (_, e) = balanced_generic(&w, r).expect("feasible");
            assert!(
                e.makespan <= bm + 1e-9,
                "R={r}: balanced {} > basic {bm}",
                e.makespan
            );
            assert!(
                e.makespan <= km + 1e-9,
                "R={r}: balanced {} > knapsack {km}",
                e.makespan
            );
            if e.makespan < bm.min(km) - 1e-9 {
                strict_wins += 1;
            }
        }
        assert!(strict_wins > 0, "balanced never strictly improved on both");
    }

    #[test]
    fn generic_heuristics_match_oa_heuristics_on_oa_workloads() {
        use crate::heuristics::Heuristic;
        use crate::params::Instance;
        use oa_platform::speedup::PcrModel;

        let table = PcrModel::reference().table(1.0).unwrap();
        for r in [23u32, 53, 87] {
            let w = Workload::ocean_atmosphere(10, 48, &table);
            let inst = Instance::new(10, 48, r);
            let oa = Heuristic::Knapsack.grouping(inst, &table).unwrap();
            let gen = knapsack_generic(&w, r).unwrap();
            assert_eq!(oa.groups(), gen.sizes(), "R = {r}");
            assert_eq!(oa.post_procs, gen.pool, "R = {r}");
        }
    }

    #[test]
    fn machine_too_small() {
        let w = md_workload(2, 2);
        assert_eq!(
            basic_generic(&w, 1),
            Err(GenericError::MachineTooSmall {
                resources: 1,
                min_alloc: 2
            })
        );
        assert_eq!(
            knapsack_generic(&w, 1),
            Err(GenericError::MachineTooSmall {
                resources: 1,
                min_alloc: 2
            })
        );
    }

    #[test]
    fn solve_picks_the_best_candidate() {
        let w = md_workload(5, 12);
        for r in [10u32, 33, 64] {
            let (g, e) = solve(&w, r).unwrap();
            let b = estimate_generic(&w, r, &basic_generic(&w, r).unwrap()).unwrap();
            let k = estimate_generic(&w, r, &knapsack_generic(&w, r).unwrap()).unwrap();
            assert!(e.makespan <= b.makespan + 1e-9);
            assert!(e.makespan <= k.makespan + 1e-9);
            g.validate(&w, r).unwrap();
        }
    }

    #[test]
    fn sequential_only_workload_degenerates_to_pool_scheduling() {
        let w = Workload::new(
            4,
            6,
            vec![Phase {
                name: "s".into(),
                time: PhaseTime::Sequential(10.0),
                blocking: true,
            }],
        )
        .unwrap();
        let g = knapsack_generic(&w, 4).unwrap();
        // Four chains, four single-processor "groups".
        assert_eq!(g.sizes(), &[1, 1, 1, 1]);
        let e = estimate_generic(&w, 4, &g).unwrap();
        assert_eq!(e.makespan, 60.0);
    }
}
