//! Event-driven makespan estimation for generic workloads.
//!
//! The same policy as [`crate::estimate`] — least-advanced-first
//! assignment, largest idle group first, surplus-group disbanding,
//! FIFO trailing tasks — generalized to arbitrary allocation ranges,
//! arbitrary per-unit blocking time `unit_secs(g)` and arbitrary
//! trailing work. On an Ocean-Atmosphere-shaped workload it returns
//! exactly what `crate::estimate` returns (property-tested in
//! `generic::tests`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use super::workload::Workload;
use crate::time::{time_key, Time, TimeKey};

/// A processor division for a generic workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Groups {
    /// Group sizes (each within the workload's allocation range),
    /// kept sorted descending.
    sizes: Vec<u32>,
    /// Processors dedicated to trailing work.
    pub pool: u32,
}

/// Errors from generic grouping validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupsError {
    /// A size is outside the workload's allocation range.
    BadSize(u32),
    /// More processors used than available.
    OverSubscribed {
        /// Processors requested.
        used: u64,
        /// Processors available.
        available: u32,
    },
    /// More groups than chains.
    TooManyGroups {
        /// Groups in the grouping.
        groups: usize,
        /// Chains in the workload.
        chains: u32,
    },
    /// No groups.
    NoGroups,
}

impl std::fmt::Display for GroupsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupsError::BadSize(g) => write!(f, "group size {g} outside the workload's range"),
            GroupsError::OverSubscribed { used, available } => {
                write!(f, "{used} processors used, {available} available")
            }
            GroupsError::TooManyGroups { groups, chains } => {
                write!(f, "{groups} groups for {chains} chains")
            }
            GroupsError::NoGroups => write!(f, "no groups"),
        }
    }
}

impl std::error::Error for GroupsError {}

impl Groups {
    /// Builds a canonical (descending) grouping.
    pub fn new(mut sizes: Vec<u32>, pool: u32) -> Self {
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        Self { sizes, pool }
    }

    /// Group sizes, largest first.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Processors inside groups.
    pub fn main_procs(&self) -> u64 {
        self.sizes.iter().map(|&g| g as u64).sum()
    }

    /// Validates against a workload and a processor budget.
    pub fn validate(&self, w: &Workload, r: u32) -> Result<(), GroupsError> {
        if self.sizes.is_empty() {
            return Err(GroupsError::NoGroups);
        }
        let range = w.alloc_range();
        for &g in &self.sizes {
            if !range.accepts(g) {
                return Err(GroupsError::BadSize(g));
            }
        }
        let used = self.main_procs() + self.pool as u64;
        if used > r as u64 {
            return Err(GroupsError::OverSubscribed { used, available: r });
        }
        if self.sizes.len() > w.chains as usize {
            return Err(GroupsError::TooManyGroups {
                groups: self.sizes.len(),
                chains: w.chains,
            });
        }
        Ok(())
    }
}

/// Estimation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenericEstimate {
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Last blocking-phase completion.
    pub main_finish: f64,
    /// Last trailing-task completion (equals `main_finish` when the
    /// workload has no trailing work).
    pub trailing_finish: f64,
}

/// Simulates `w` on `r` processors divided as `groups`.
pub fn estimate_generic(
    w: &Workload,
    r: u32,
    groups: &Groups,
) -> Result<GenericEstimate, GroupsError> {
    groups.validate(w, r)?;
    let sizes: Vec<u32> = groups.sizes().to_vec();
    let durs: Vec<f64> = sizes.iter().map(|&g| w.unit_secs(g)).collect();
    let tp = w.trailing_secs();
    let units = w.units;

    let mut busy: BinaryHeap<TimeKey<usize>> = BinaryHeap::with_capacity(sizes.len());
    let mut running: Vec<Option<u32>> = vec![None; sizes.len()];
    let mut waiting: BinaryHeap<Reverse<(u32, u32)>> =
        (0..w.chains).map(|c| Reverse((0, c))).collect();
    let mut done: Vec<u32> = vec![0; w.chains as usize];
    let mut unfinished = w.chains as usize;
    let mut idle: Vec<usize> = (0..sizes.len()).collect();
    idle.sort_unstable_by_key(|&g| (sizes[g], g));
    let mut alive = sizes.len();

    let mut trailing_ready: Vec<f64> = Vec::with_capacity(w.nbtasks() as usize);
    let mut pool: BinaryHeap<Reverse<Time>> = BinaryHeap::new();
    for _ in 0..groups.pool {
        pool.push(Reverse(Time(0.0)));
    }

    let assign = |now: f64,
                  idle: &mut Vec<usize>,
                  waiting: &mut BinaryHeap<Reverse<(u32, u32)>>,
                  busy: &mut BinaryHeap<TimeKey<usize>>,
                  running: &mut Vec<Option<u32>>,
                  alive: &mut usize,
                  unfinished: usize,
                  pool: &mut BinaryHeap<Reverse<Time>>| {
        while !idle.is_empty() {
            let Some(&Reverse((_, c))) = waiting.peek() else {
                break;
            };
            let g = idle.pop().expect("non-empty");
            waiting.pop();
            running[g] = Some(c);
            busy.push(time_key(now + durs[g], g));
        }
        while !idle.is_empty() && *alive > unfinished {
            let g = idle.remove(0);
            *alive -= 1;
            for _ in 0..sizes[g] {
                pool.push(Reverse(Time(now)));
            }
        }
    };

    assign(
        0.0,
        &mut idle,
        &mut waiting,
        &mut busy,
        &mut running,
        &mut alive,
        unfinished,
        &mut pool,
    );

    let mut main_finish = 0.0f64;
    while let Some(Reverse((Time(t), g))) = busy.pop() {
        let c = running[g].take().expect("busy group runs a chain");
        done[c as usize] += 1;
        main_finish = t;
        trailing_ready.push(t);
        if done[c as usize] == units {
            unfinished -= 1;
        } else {
            waiting.push(Reverse((done[c as usize], c)));
        }
        let pos = idle
            .binary_search_by_key(&(sizes[g], g), |&x| (sizes[x], x))
            .unwrap_err();
        idle.insert(pos, g);
        assign(
            t,
            &mut idle,
            &mut waiting,
            &mut busy,
            &mut running,
            &mut alive,
            unfinished,
            &mut pool,
        );
    }

    let mut trailing_finish = main_finish;
    if tp > 0.0 {
        debug_assert!(!pool.is_empty(), "groups disband eventually");
        for ready in trailing_ready {
            let Reverse(Time(avail)) = pool.pop().expect("pool non-empty");
            let start = if avail > ready { avail } else { ready };
            let fin = start + tp;
            if fin > trailing_finish {
                trailing_finish = fin;
            }
            pool.push(Reverse(Time(fin)));
        }
    }

    Ok(GenericEstimate {
        makespan: main_finish.max(trailing_finish),
        main_finish,
        trailing_finish,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::workload::{Phase, PhaseTime};
    use oa_workflow::moldable::MoldableSpec;

    fn tiny() -> Workload {
        Workload::new(
            2,
            3,
            vec![
                Phase {
                    name: "solve".into(),
                    time: PhaseTime::Moldable {
                        range: MoldableSpec {
                            min_procs: 2,
                            max_procs: 3,
                        },
                        table: vec![100.0, 80.0],
                    },
                    blocking: true,
                },
                Phase {
                    name: "report".into(),
                    time: PhaseTime::Sequential(10.0),
                    blocking: false,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn two_chains_two_groups() {
        let w = tiny();
        let g = Groups::new(vec![3, 2], 1);
        let e = estimate_generic(&w, 6, &g).unwrap();
        // Fast group does 3 units of chain A in 240; slow group 300.
        assert_eq!(e.main_finish, 300.0);
        assert_eq!(e.makespan, 310.0);
    }

    #[test]
    fn no_trailing_work() {
        let w = Workload::new(
            2,
            2,
            vec![Phase {
                name: "only".into(),
                time: PhaseTime::Sequential(50.0),
                blocking: true,
            }],
        )
        .unwrap();
        let g = Groups::new(vec![1, 1], 0);
        let e = estimate_generic(&w, 2, &g).unwrap();
        assert_eq!(e.makespan, 100.0);
        assert_eq!(e.trailing_finish, e.main_finish);
    }

    #[test]
    fn validation_errors() {
        let w = tiny();
        assert_eq!(
            estimate_generic(&w, 6, &Groups::new(vec![], 2)).unwrap_err(),
            GroupsError::NoGroups
        );
        assert_eq!(
            estimate_generic(&w, 6, &Groups::new(vec![4], 0)).unwrap_err(),
            GroupsError::BadSize(4)
        );
        assert_eq!(
            estimate_generic(&w, 4, &Groups::new(vec![3, 2], 0)).unwrap_err(),
            GroupsError::OverSubscribed {
                used: 5,
                available: 4
            }
        );
        assert_eq!(
            estimate_generic(&w, 9, &Groups::new(vec![3, 3, 3], 0)).unwrap_err(),
            GroupsError::TooManyGroups {
                groups: 3,
                chains: 2
            }
        );
    }

    #[test]
    fn matches_specialized_estimator_on_oa_workloads() {
        use crate::estimate::estimate;
        use crate::grouping::Grouping;
        use crate::params::Instance;
        use oa_platform::speedup::PcrModel;

        let table = PcrModel::reference().table(1.0).unwrap();
        for (ns, nm, r) in [(10u32, 24u32, 53u32), (3, 10, 30), (7, 13, 90)] {
            let w = Workload::ocean_atmosphere(ns, nm, &table);
            let inst = Instance::new(ns, nm, r);
            for (sizes, pool) in [
                (
                    vec![7u32; (r / 7).min(ns) as usize],
                    r - 7 * (r / 7).min(ns),
                ),
                (vec![11, 4], r - 15),
            ] {
                let oa = Grouping::new(sizes.clone(), pool);
                let gen = Groups::new(sizes, pool);
                let a = estimate(inst, &table, &oa).unwrap();
                let b = estimate_generic(&w, r, &gen).unwrap();
                assert!(
                    (a.makespan - b.makespan).abs() < 1e-9,
                    "ns={ns} nm={nm} r={r}: {} vs {}",
                    a.makespan,
                    b.makespan
                );
            }
        }
    }
}
