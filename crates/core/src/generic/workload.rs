//! Generic workload model: independent chains of identical DAGs of
//! moldable tasks.
//!
//! The paper's conclusion sketches the extension this module
//! implements: "a generic heuristic that can schedule the same kind of
//! workflow, made of independent chains of identical DAGs composed of
//! moldable tasks." A *workload* is `chains` independent chains of
//! `units` identical units; a unit is an ordered list of *phases*:
//!
//! * **blocking** phases gate the next unit of the chain (like `pcr`
//!   and the pre-processing folded into it);
//! * **non-blocking** phases only depend on the blocking prefix of
//!   their own unit and can trail behind (like the post-processing).
//!
//! Each phase is either *moldable* — a per-allocation duration table
//! over an arbitrary processor range — or *sequential* (one
//! processor). All blocking moldable phases of a unit execute
//! back-to-back on the same processor group, so a group of size `g`
//! spends `unit_secs(g)` per unit; the trailing non-blocking
//! sequential work forms the generalized "post" task.

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_workflow::moldable::MoldableSpec;

/// Duration model of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseTime {
    /// Constant duration, independent of processors (sequential phase).
    Sequential(f64),
    /// Moldable: `table[i]` is the duration on `range.min_procs + i`
    /// processors.
    Moldable {
        /// Legal allocation range.
        range: MoldableSpec,
        /// Per-allocation durations.
        table: Vec<f64>,
    },
}

/// One phase of a unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Duration model.
    pub time: PhaseTime,
    /// Whether the next unit of the chain waits for this phase.
    pub blocking: bool,
}

/// Validation errors for generic workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// No phase at all.
    NoPhases,
    /// No blocking phase: units would all be independent, which this
    /// scheduler does not model (use one chain of one unit per task).
    NoBlockingPhase,
    /// A non-blocking phase is moldable — trailing phases run on the
    /// sequential pool, so they must be sequential.
    MoldableTrailing {
        /// Phase name.
        phase: String,
    },
    /// A moldable table length disagrees with its range.
    TableMismatch {
        /// Phase name.
        phase: String,
        /// Expected value.
        expect: usize,
        /// Actual value.
        got: usize,
    },
    /// A duration is not positive and finite.
    BadDuration {
        /// Phase name.
        phase: String,
        /// Offending value.
        value: f64,
    },
    /// A moldable table increases with processors.
    NotMonotone {
        /// Phase name.
        phase: String,
    },
    /// Two moldable blocking phases declare different ranges; one group
    /// runs them all, so ranges must agree.
    RangeMismatch {
        /// Phase name.
        phase: String,
    },
    /// Degenerate chain counts.
    EmptyShape,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NoPhases => write!(f, "workload has no phases"),
            WorkloadError::NoBlockingPhase => write!(f, "workload has no blocking phase"),
            WorkloadError::MoldableTrailing { phase } => {
                write!(f, "non-blocking phase {phase:?} is moldable")
            }
            WorkloadError::TableMismatch { phase, expect, got } => {
                write!(
                    f,
                    "phase {phase:?}: table has {got} entries, range needs {expect}"
                )
            }
            WorkloadError::BadDuration { phase, value } => {
                write!(
                    f,
                    "phase {phase:?}: duration {value} is not positive/finite"
                )
            }
            WorkloadError::NotMonotone { phase } => {
                write!(f, "phase {phase:?}: duration increases with processors")
            }
            WorkloadError::RangeMismatch { phase } => {
                write!(
                    f,
                    "phase {phase:?}: moldable range differs from earlier phases"
                )
            }
            WorkloadError::EmptyShape => write!(f, "chains and units must be positive"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A generic workload: `chains` × `units` identical units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of independent chains (`NS` in the paper).
    pub chains: u32,
    /// Units per chain (`NM`).
    pub units: u32,
    /// The phases of one unit, in execution order.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// Builds and validates a workload.
    pub fn new(chains: u32, units: u32, phases: Vec<Phase>) -> Result<Self, WorkloadError> {
        if chains == 0 || units == 0 {
            return Err(WorkloadError::EmptyShape);
        }
        if phases.is_empty() {
            return Err(WorkloadError::NoPhases);
        }
        if !phases.iter().any(|p| p.blocking) {
            return Err(WorkloadError::NoBlockingPhase);
        }
        let mut range: Option<MoldableSpec> = None;
        for p in &phases {
            match &p.time {
                PhaseTime::Sequential(d) => {
                    if !(d.is_finite() && *d > 0.0) {
                        return Err(WorkloadError::BadDuration {
                            phase: p.name.clone(),
                            value: *d,
                        });
                    }
                }
                PhaseTime::Moldable { range: r, table } => {
                    if !p.blocking {
                        return Err(WorkloadError::MoldableTrailing {
                            phase: p.name.clone(),
                        });
                    }
                    if table.len() != r.len() {
                        return Err(WorkloadError::TableMismatch {
                            phase: p.name.clone(),
                            expect: r.len(),
                            got: table.len(),
                        });
                    }
                    for d in table {
                        if !(d.is_finite() && *d > 0.0) {
                            return Err(WorkloadError::BadDuration {
                                phase: p.name.clone(),
                                value: *d,
                            });
                        }
                    }
                    if table.windows(2).any(|w| w[0] < w[1]) {
                        return Err(WorkloadError::NotMonotone {
                            phase: p.name.clone(),
                        });
                    }
                    match range {
                        None => range = Some(*r),
                        Some(prev) if prev == *r => {}
                        Some(_) => {
                            return Err(WorkloadError::RangeMismatch {
                                phase: p.name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(Self {
            chains,
            units,
            phases,
        })
    }

    /// The moldable allocation range of the unit (defaults to a
    /// one-processor "range" when every phase is sequential).
    pub fn alloc_range(&self) -> MoldableSpec {
        self.phases
            .iter()
            .find_map(|p| match &p.time {
                PhaseTime::Moldable { range, .. } => Some(*range),
                PhaseTime::Sequential(_) => None,
            })
            .unwrap_or(MoldableSpec {
                min_procs: 1,
                max_procs: 1,
            })
    }

    /// Time a group of `g` processors spends on the blocking phases of
    /// one unit — the generic `T[G]`.
    pub fn unit_secs(&self, g: u32) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.blocking)
            .map(|p| match &p.time {
                PhaseTime::Sequential(d) => *d,
                PhaseTime::Moldable { range, table } => {
                    let i = range
                        .index_of(g)
                        .unwrap_or_else(|| panic!("allocation {g} outside range"));
                    table[i]
                }
            })
            .sum()
    }

    /// Duration of the trailing (non-blocking, sequential) work of one
    /// unit — the generic `TP`. Zero when every phase blocks.
    pub fn trailing_secs(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| !p.blocking)
            .map(|p| match &p.time {
                PhaseTime::Sequential(d) => *d,
                PhaseTime::Moldable { .. } => unreachable!("validated: trailing is sequential"),
            })
            .sum()
    }

    /// Total unit count, the generic `nbtasks`.
    pub fn nbtasks(&self) -> u64 {
        self.chains as u64 * self.units as u64
    }

    /// The Ocean-Atmosphere campaign as a generic workload: pre + `pcr`
    /// fused into one blocking moldable phase (from `table`), the three
    /// post tasks as one trailing sequential phase.
    pub fn ocean_atmosphere(ns: u32, nm: u32, table: &TimingTable) -> Self {
        let range = MoldableSpec::pcr();
        let main: Vec<f64> = range.allocations().map(|g| table.main_secs(g)).collect();
        Self::new(
            ns,
            nm,
            vec![
                Phase {
                    name: "main".into(),
                    time: PhaseTime::Moldable { range, table: main },
                    blocking: true,
                },
                Phase {
                    name: "post".into(),
                    time: PhaseTime::Sequential(table.post_secs()),
                    blocking: false,
                },
            ],
        )
        .expect("the OA workload is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;

    fn moldable(name: &str, lo: u32, hi: u32, times: Vec<f64>, blocking: bool) -> Phase {
        Phase {
            name: name.into(),
            time: PhaseTime::Moldable {
                range: MoldableSpec {
                    min_procs: lo,
                    max_procs: hi,
                },
                table: times,
            },
            blocking,
        }
    }

    fn seq(name: &str, d: f64, blocking: bool) -> Phase {
        Phase {
            name: name.into(),
            time: PhaseTime::Sequential(d),
            blocking,
        }
    }

    #[test]
    fn oa_workload_matches_the_fused_model() {
        let t = PcrModel::reference().table(1.0).unwrap();
        let w = Workload::ocean_atmosphere(10, 1800, &t);
        assert_eq!(w.nbtasks(), 18_000);
        assert_eq!(w.alloc_range(), MoldableSpec::pcr());
        for g in 4..=11 {
            assert_eq!(w.unit_secs(g), t.main_secs(g));
        }
        assert_eq!(w.trailing_secs(), t.post_secs());
    }

    #[test]
    fn multi_phase_unit_sums_blocking_times() {
        // A unit = moldable solve (2..=4 procs) + blocking sequential
        // checkpoint + trailing sequential analysis + trailing archive.
        let w = Workload::new(
            3,
            5,
            vec![
                moldable("solve", 2, 4, vec![90.0, 60.0, 50.0], true),
                seq("checkpoint", 10.0, true),
                seq("analysis", 7.0, false),
                seq("archive", 3.0, false),
            ],
        )
        .unwrap();
        assert_eq!(w.unit_secs(2), 100.0);
        assert_eq!(w.unit_secs(4), 60.0);
        assert_eq!(w.trailing_secs(), 10.0);
        assert_eq!(
            w.alloc_range().allocations().collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn validation_rejects_malformed_workloads() {
        assert_eq!(
            Workload::new(0, 1, vec![seq("a", 1.0, true)]),
            Err(WorkloadError::EmptyShape)
        );
        assert_eq!(Workload::new(1, 1, vec![]), Err(WorkloadError::NoPhases));
        assert_eq!(
            Workload::new(1, 1, vec![seq("a", 1.0, false)]),
            Err(WorkloadError::NoBlockingPhase)
        );
        assert!(matches!(
            Workload::new(
                1,
                1,
                vec![
                    moldable("m", 2, 3, vec![5.0, 4.0], false),
                    seq("b", 1.0, true)
                ]
            ),
            Err(WorkloadError::MoldableTrailing { .. })
        ));
        assert!(matches!(
            Workload::new(1, 1, vec![moldable("m", 2, 3, vec![5.0], true)]),
            Err(WorkloadError::TableMismatch {
                expect: 2,
                got: 1,
                ..
            })
        ));
        assert!(matches!(
            Workload::new(1, 1, vec![moldable("m", 2, 3, vec![4.0, 5.0], true)]),
            Err(WorkloadError::NotMonotone { .. })
        ));
        assert!(matches!(
            Workload::new(1, 1, vec![seq("a", -1.0, true)]),
            Err(WorkloadError::BadDuration { .. })
        ));
        assert!(matches!(
            Workload::new(
                1,
                1,
                vec![
                    moldable("m", 2, 3, vec![5.0, 4.0], true),
                    moldable("n", 2, 4, vec![5.0, 4.0, 3.0], true),
                ]
            ),
            Err(WorkloadError::RangeMismatch { .. })
        ));
    }

    #[test]
    fn fully_sequential_workload_is_legal() {
        let w = Workload::new(2, 3, vec![seq("step", 5.0, true)]).unwrap();
        assert_eq!(w.alloc_range().allocations().collect::<Vec<_>>(), vec![1]);
        assert_eq!(w.unit_secs(1), 5.0);
        assert_eq!(w.trailing_secs(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = PcrModel::reference().table(1.0).unwrap();
        let w = Workload::ocean_atmosphere(2, 3, &t);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        // JSON float printing can drop the last ulp; compare with a
        // tolerance rather than bitwise.
        assert_eq!((back.chains, back.units), (w.chains, w.units));
        for g in 4..=11 {
            assert!((back.unit_secs(g) - w.unit_secs(g)).abs() < 1e-9);
        }
        assert_eq!(back.trailing_secs(), w.trailing_secs());
    }
}
