//! Processor groupings: the object every heuristic produces.
//!
//! A grouping divides the `R` processors of a cluster into disjoint
//! *groups* of 4–11 processors, each running one multiprocessor task at
//! a time, plus a (possibly empty) pool of processors dedicated to
//! post-processing. Processors in neither set idle until groups disband
//! at the end of the campaign.

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_workflow::moldable::MoldableSpec;

use crate::params::Instance;

/// Errors raised when validating a grouping against an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingError {
    /// A group size is outside `4..=11`.
    BadGroupSize(u32),
    /// The grouping uses more processors than the cluster has.
    OverSubscribed {
        /// Processors requested.
        used: u64,
        /// Processors available.
        available: u32,
    },
    /// More groups than scenarios: the surplus could never run anything
    /// (at most `NS` main tasks are ready simultaneously).
    TooManyGroups {
        /// Groups in the grouping.
        groups: usize,
        /// Number of scenarios.
        scenarios: u32,
    },
    /// No group at all: main tasks can never run.
    NoGroups,
}

impl std::fmt::Display for GroupingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupingError::BadGroupSize(g) => write!(f, "group size {g} outside 4..=11"),
            GroupingError::OverSubscribed { used, available } => {
                write!(
                    f,
                    "grouping uses {used} processors, cluster has {available}"
                )
            }
            GroupingError::TooManyGroups { groups, scenarios } => {
                write!(
                    f,
                    "{groups} groups for {scenarios} scenarios: surplus groups can never work"
                )
            }
            GroupingError::NoGroups => write!(f, "grouping has no multiprocessor group"),
        }
    }
}

impl std::error::Error for GroupingError {}

/// A division of a cluster's processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grouping {
    /// Sizes of the multiprocessor groups, each in `4..=11`.
    /// Kept sorted descending so equal groupings compare equal.
    groups: Vec<u32>,
    /// Processors dedicated to post-processing (`R2` in the paper).
    pub post_procs: u32,
}

impl Grouping {
    /// Builds a grouping from group sizes and a post-processing pool.
    /// Sizes are sorted (descending) for canonical form.
    pub fn new(mut groups: Vec<u32>, post_procs: u32) -> Self {
        groups.sort_unstable_by(|a, b| b.cmp(a));
        Self { groups, post_procs }
    }

    /// The uniform grouping of the basic heuristic: `count` groups of
    /// `size`, remainder to post-processing.
    pub fn uniform(size: u32, count: u32, post_procs: u32) -> Self {
        Self::new(vec![size; count as usize], post_procs)
    }

    /// Group sizes, largest first.
    pub fn groups(&self) -> &[u32] {
        &self.groups
    }

    /// Number of groups (`nbmax` for uniform groupings).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Processors inside multiprocessor groups (`R1`).
    pub fn main_procs(&self) -> u64 {
        self.groups.iter().map(|&g| g as u64).sum()
    }

    /// Every processor accounted for by this grouping.
    pub fn total_procs(&self) -> u64 {
        self.main_procs() + self.post_procs as u64
    }

    /// Aggregate main-task throughput `Σ 1/T[gᵢ]` — the knapsack
    /// objective, in tasks per second.
    pub fn throughput(&self, table: &TimingTable) -> f64 {
        self.groups.iter().map(|&g| 1.0 / table.main_secs(g)).sum()
    }

    /// Validates the grouping against an instance.
    pub fn validate(&self, inst: Instance) -> Result<(), GroupingError> {
        let spec = MoldableSpec::pcr();
        if self.groups.is_empty() {
            return Err(GroupingError::NoGroups);
        }
        for &g in &self.groups {
            if !spec.accepts(g) {
                return Err(GroupingError::BadGroupSize(g));
            }
        }
        if self.total_procs() > inst.r as u64 {
            return Err(GroupingError::OverSubscribed {
                used: self.total_procs(),
                available: inst.r,
            });
        }
        if self.groups.len() > inst.ns as usize {
            return Err(GroupingError::TooManyGroups {
                groups: self.groups.len(),
                scenarios: inst.ns,
            });
        }
        Ok(())
    }

    /// Processors in no group and not dedicated to post-processing.
    pub fn idle_procs(&self, inst: Instance) -> u64 {
        (inst.r as u64).saturating_sub(self.total_procs())
    }
}

impl std::fmt::Display for Grouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render as e.g. "3×8 + 4×7 | post:1".
        let mut first = true;
        let mut i = 0;
        while i < self.groups.len() {
            let g = self.groups[i];
            let mut j = i;
            while j < self.groups.len() && self.groups[j] == g {
                j += 1;
            }
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}×{}", j - i, g)?;
            first = false;
            i = j;
        }
        if first {
            write!(f, "∅")?;
        }
        write!(f, " | post:{}", self.post_procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;

    fn inst() -> Instance {
        Instance::new(10, 12, 53)
    }

    #[test]
    fn canonical_form_sorts_sizes() {
        let a = Grouping::new(vec![7, 8, 7, 8, 8, 7, 7], 1);
        let b = Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1);
        assert_eq!(a, b);
        assert_eq!(a.groups(), &[8, 8, 8, 7, 7, 7, 7]);
    }

    #[test]
    fn paper_example_counts() {
        // R = 53, NS = 10 under Improvement 1: 3×8 + 4×7 + 1 post.
        let g = Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1);
        assert_eq!(g.main_procs(), 52);
        assert_eq!(g.total_procs(), 53);
        assert_eq!(g.idle_procs(inst()), 0);
        g.validate(inst()).unwrap();
    }

    #[test]
    fn uniform_constructor() {
        let g = Grouping::uniform(7, 7, 4);
        assert_eq!(g.group_count(), 7);
        assert_eq!(g.main_procs(), 49);
        assert_eq!(g.post_procs, 4);
        g.validate(inst()).unwrap();
        assert_eq!(g.idle_procs(inst()), 0);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Grouping::new(vec![], 5).validate(inst()),
            Err(GroupingError::NoGroups)
        );
        assert_eq!(
            Grouping::new(vec![3], 0).validate(inst()),
            Err(GroupingError::BadGroupSize(3))
        );
        assert_eq!(
            Grouping::new(vec![11; 5], 0).validate(inst()),
            Err(GroupingError::OverSubscribed {
                used: 55,
                available: 53
            })
        );
        let small = Instance::new(2, 5, 53);
        assert_eq!(
            Grouping::new(vec![4, 4, 4], 0).validate(small),
            Err(GroupingError::TooManyGroups {
                groups: 3,
                scenarios: 2
            })
        );
    }

    #[test]
    fn throughput_is_knapsack_objective() {
        let table = PcrModel::reference().table(1.0).unwrap();
        let g = Grouping::new(vec![11, 4], 0);
        let expect = 1.0 / table.main_secs(11) + 1.0 / table.main_secs(4);
        assert!((g.throughput(&table) - expect).abs() < 1e-15);
    }

    #[test]
    fn display_groups_runs() {
        let g = Grouping::new(vec![8, 7, 8, 7, 7, 7, 8], 1);
        assert_eq!(g.to_string(), "3×8 + 4×7 | post:1");
        assert_eq!(Grouping::new(vec![], 2).to_string(), "∅ | post:2");
    }
}
