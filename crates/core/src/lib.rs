//! # oa-sched — the scheduling contribution of the paper
//!
//! This crate implements the heart of *"Ocean-Atmosphere Modelization
//! over the Grid"*: dividing a cluster's processors into disjoint
//! groups for the moldable main-processing tasks of an ensemble
//! climate campaign, and spreading the campaign over a heterogeneous
//! grid.
//!
//! * [`params`] — instance notation (`NS`, `NM`, `R`, `nbmax`, …);
//! * [`grouping`] — the [`grouping::Grouping`] type with validation;
//! * [`analytic`] — the closed-form makespan model of Equations 1–5;
//! * [`estimate`] — event-driven makespan evaluation of arbitrary
//!   groupings under the paper's least-advanced-first policy;
//! * [`heuristics`] — the basic heuristic and its three improvements
//!   (idle redistribution, no post reservation, exact knapsack), plus
//!   a greedy-knapsack ablation;
//! * [`hetero`] — per-cluster performance vectors and the greedy
//!   scenario repartition of Algorithm 1;
//! * [`incremental`] — Algorithm 1 as an online scheduler: arrivals,
//!   departures and cluster churn over cached performance vectors,
//!   bitwise-equal to the batch greedy (the planning core of
//!   `oa-service`);
//! * [`ir_plan`] — grouping/G-selection over the generalized workflow
//!   IR: preset meshes plan exactly like their legacy instance, general
//!   DAGs reduce to an equivalent `(NS, NM, R)` via moldable width;
//! * [`memo`] — the cross-variant planning memo: retained knapsack DP
//!   tables and a makespan cache keyed by timing fingerprint, bitwise
//!   equal to the uncached heuristics (the pricing core of mass-batch
//!   sweeps and `oa-service` `ClusterJoin`);
//! * [`policy`] — campaign policy knobs shared by every event loop:
//!   scenario-selection queues, task granularity, fault plans and
//!   recovery models (the configuration of `oa-sim::engine`);
//! * [`time`] — the shared totally-ordered `f64` heap key every
//!   discrete-event loop in the workspace uses.
//!
//! # Examples
//!
//! ```
//! use oa_sched::prelude::*;
//! use oa_platform::prelude::*;
//!
//! // The paper's Section 4.2 example: 53 processors, 10 scenarios.
//! let table = PcrModel::reference().table(1.0).unwrap();
//! let inst = Instance::new(10, 1800, 53);
//!
//! let basic = Heuristic::Basic.grouping(inst, &table).unwrap();
//! assert_eq!(format!("{basic}"), "7×7 | post:4");
//!
//! let knapsack = Heuristic::Knapsack.grouping(inst, &table).unwrap();
//! let base_ms = Heuristic::Basic.makespan(inst, &table).unwrap();
//! let knap_ms = estimate(inst, &table, &knapsack).unwrap().makespan;
//! assert!(knap_ms <= base_ms); // the knapsack grouping wins here
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod estimate;
pub mod generic;
pub mod grouping;
pub mod hetero;
pub mod heuristics;
pub mod incremental;
pub mod ir_plan;
pub mod memo;
pub mod params;
pub mod policy;
pub mod time;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::analytic::{best_group, best_group_with, Breakdown};
    pub use crate::estimate::{estimate, Estimate};
    pub use crate::generic;
    pub use crate::grouping::{Grouping, GroupingError};
    pub use crate::hetero::{
        extend_performance_vector, grid_performance, grid_performance_with, performance_vector,
        performance_vector_with, repartition, repartition_exact, repartition_n, PerformanceVector,
        Repartition,
    };
    pub use crate::heuristics::{gain_pct, Heuristic, HeuristicError};
    pub use crate::incremental::{Departure, IncrementalRepartition, Rebalance};
    pub use crate::ir_plan::{
        equivalent_instance, moldable_width, plan_workflow, PlanError, WorkflowPlan,
    };
    pub use crate::memo::{table_fingerprint, MemoStats, PlanMemo};
    pub use crate::params::Instance;
    pub use crate::policy::{
        CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy, ScenarioQueue,
    };
    pub use crate::time::{Time, TimeInterval};
}

#[cfg(test)]
mod proptests {
    use crate::analytic;
    use crate::estimate::estimate;
    use crate::grouping::Grouping;
    use crate::heuristics::Heuristic;
    use crate::params::Instance;
    use oa_platform::timing::TimingTable;
    use proptest::prelude::*;

    fn arb_table() -> impl Strategy<Value = TimingTable> {
        // Random but physical tables: decreasing mains, positive post.
        (
            50.0f64..4000.0,
            1.0f64..400.0,
            proptest::collection::vec(0.0f64..500.0, 8),
        )
            .prop_map(|(t11, tp, bumps)| {
                let mut main = [0.0f64; 8];
                let mut acc = t11;
                for i in (0..8).rev() {
                    main[i] = acc;
                    acc += bumps[i];
                }
                TimingTable::new(main, tp).expect("constructed non-increasing")
            })
    }

    fn arb_instance() -> impl Strategy<Value = Instance> {
        (1u32..=12, 1u32..=40, 4u32..=140).prop_map(|(ns, nm, r)| Instance::new(ns, nm, r))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn heuristic_groupings_always_validate((inst, table) in (arb_instance(), arb_table())) {
            for h in Heuristic::PAPER {
                match h.grouping(inst, &table) {
                    Ok(g) => prop_assert!(g.validate(inst).is_ok(), "{h:?} produced invalid grouping"),
                    Err(_) => prop_assert!(inst.r < 4, "{h:?} failed on feasible instance"),
                }
            }
        }

        #[test]
        fn estimate_never_beats_critical_path((inst, table) in (arb_instance(), arb_table())) {
            if let Ok(g) = Heuristic::Basic.grouping(inst, &table) {
                let e = estimate(inst, &table, &g).unwrap();
                // Lower bound: one scenario's chain on the largest group.
                let best_main = table.main_secs(11);
                let lb = inst.nm as f64 * best_main + table.post_secs();
                prop_assert!(e.makespan + 1e-6 >= lb,
                    "makespan {} below critical path {lb}", e.makespan);
                // And the work bound: nbtasks mains on ≤ R procs.
                let work = inst.nbtasks() as f64 * 4.0 * table.main_secs(4);
                prop_assert!(e.makespan <= work, "no schedule should exceed serial work");
            }
        }

        #[test]
        fn analytic_equals_estimate_when_exact((inst, table) in (arb_instance(), arb_table())) {
            // In the no-overpass, dedicated-post regime the closed form
            // and the event simulation agree exactly.
            for g in 4u32..=11 {
                let Some(b) = analytic::makespan(inst, &table, g) else { continue };
                let ratio = (table.main_secs(g) / table.post_secs()) as u64;
                let keeps_up = b.r2 > 0 && ratio * b.r2 as u64 >= b.nbmax as u64;
                if b.nbused == 0 && keeps_up && b.nbmax as u64 <= inst.r as u64 {
                    let e = estimate(inst, &table, &Grouping::uniform(g, b.nbmax, b.r2)).unwrap();
                    prop_assert!((e.makespan - b.makespan).abs() < 1e-6,
                        "G={g}: sim {} vs analytic {}", e.makespan, b.makespan);
                }
            }
        }

        #[test]
        fn estimate_monotone_in_months(table in arb_table(), ns in 1u32..=8, r in 12u32..=90) {
            let small = Instance::new(ns, 5, r);
            let big = Instance::new(ns, 10, r);
            if let (Ok(a), Ok(b)) = (
                Heuristic::Knapsack.makespan(small, &table),
                Heuristic::Knapsack.makespan(big, &table),
            ) {
                prop_assert!(b + 1e-9 >= a);
            }
        }

        #[test]
        fn memoized_planning_is_bitwise_uncached((inst, table) in (arb_instance(), arb_table())) {
            // The planning-memo invariant: groupings and performance
            // vectors answered from the retained DP table and the
            // makespan cache equal the uncached heuristic bitwise,
            // regardless of query history.
            let mut memo = crate::memo::PlanMemo::new();
            let pool = oa_par::Pool::serial();
            for _ in 0..2 { // second lap replays from the cache
                prop_assert_eq!(
                    memo.knapsack_grouping(inst, &table),
                    Heuristic::Knapsack.grouping(inst, &table)
                );
                for h in [Heuristic::Knapsack, Heuristic::Basic] {
                    let id = oa_platform::cluster::ClusterId(1);
                    let want = crate::hetero::performance_vector_with(
                        id, inst.r, &table, h, inst.ns, inst.nm, &pool);
                    let got = memo.performance_vector(
                        id, inst.r, &table, h, inst.ns, inst.nm, &pool);
                    let wb: Vec<u64> = want.makespans.iter().map(|m| m.to_bits()).collect();
                    let gb: Vec<u64> = got.makespans.iter().map(|m| m.to_bits()).collect();
                    prop_assert_eq!(gb, wb);
                }
            }
            // ±1-delta neighbours ride (or grow) the same table.
            for r in [inst.r.saturating_sub(1).max(4), inst.r + 1] {
                let d = Instance::new(inst.ns, inst.nm, r);
                prop_assert_eq!(
                    memo.knapsack_grouping(d, &table),
                    Heuristic::Knapsack.grouping(d, &table)
                );
            }
        }

        #[test]
        fn knapsack_grouping_maximizes_throughput_vs_basic((inst, table) in (arb_instance(), arb_table())) {
            if let (Ok(k), Ok(b)) = (
                Heuristic::Knapsack.grouping(inst, &table),
                Heuristic::Basic.grouping(inst, &table),
            ) {
                prop_assert!(k.throughput(&table) + 1e-12 >= b.throughput(&table),
                    "knapsack throughput below basic");
            }
        }
    }
}
