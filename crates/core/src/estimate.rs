//! Fast makespan evaluation of arbitrary groupings.
//!
//! The paper evaluates groupings by simulation: "The execution of
//! multiprocessor tasks is done by sorting the ready time of each group
//! of processors and when a group becomes ready, the month of the less
//! advanced simulation waiting is scheduled on this group"
//! (Section 4.3). This module implements that policy as a tight
//! event-driven list scheduler that returns the makespan (and a few
//! aggregates) without materializing a trace — heuristics call it in
//! inner loops. The full-featured simulator in `oa-sim` implements the
//! same policy with traces and validation and is property-tested to
//! agree with this estimator.
//!
//! Policy details beyond the quoted sentence (all derivable from the
//! schedule figures and Equations 3–5):
//!
//! * a freed group takes the *waiting* (not running, not finished)
//!   scenario with the fewest completed months;
//! * when several groups are idle, the largest (fastest) group is
//!   served first;
//! * a group disbands — its processors join the post-processing pool —
//!   as soon as the number of live groups exceeds the number of
//!   unfinished scenarios (the surplus group could never receive work:
//!   each completion re-readies at most its own scenario);
//! * post tasks are FIFO on the pool of dedicated post processors plus
//!   disbanded group processors; with identical durations FIFO is
//!   optimal, and assigning each post to the earliest-available
//!   processor minimizes its start time.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_workflow::task::MIN_PROCS;

use crate::grouping::{Grouping, GroupingError};
use crate::params::Instance;
use crate::time::{time_key, Time, TimeKey};

/// Reusable event-loop state. Heuristic searches call [`estimate`]
/// thousands of times per sweep point; keeping the heaps and arenas in
/// a thread-local and clearing them (which preserves capacity) makes
/// the inner loop allocation-free after warm-up. Each worker thread of
/// an `oa-par` pool gets its own scratch, so the parallel sweep path
/// shares nothing.
#[derive(Default)]
struct Scratch {
    /// Per-group main duration, `T[sizes[i]]`.
    durs: Vec<f64>,
    /// Busy groups: (finish time, group). Min-heap on the shared key.
    busy: BinaryHeap<TimeKey<usize>>,
    /// Which scenario each busy group is running.
    running: Vec<Option<u32>>,
    /// Waiting scenarios: least months first. Min-heap via `Reverse`.
    waiting: BinaryHeap<Reverse<(u32, u32)>>,
    /// Months completed per scenario.
    months_done: Vec<u32>,
    /// Idle groups, sorted ascending by (size, index).
    idle: Vec<usize>,
    /// Main-task finish times, in completion order.
    post_ready: Vec<f64>,
    /// Post-processor availability times.
    post_pool: BinaryHeap<Reverse<Time>>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Aggregates returned by [`estimate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Campaign makespan, seconds.
    pub makespan: f64,
    /// Completion time of the last main task.
    pub main_finish: f64,
    /// Completion time of the last post task.
    pub post_finish: f64,
    /// Aggregate processor-seconds spent inside main tasks.
    pub main_busy_proc_secs: f64,
    /// Aggregate processor-seconds spent inside post tasks.
    pub post_busy_proc_secs: f64,
}

impl Estimate {
    /// Mean processor utilization over the makespan.
    pub fn utilization(&self, inst: Instance) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (self.main_busy_proc_secs + self.post_busy_proc_secs) / (self.makespan * inst.r as f64)
    }
}

/// Simulates the campaign of `inst` under `grouping` on a cluster with
/// timing `table`, returning makespan aggregates.
///
/// ```
/// use oa_platform::speedup::PcrModel;
/// use oa_sched::{estimate::estimate, grouping::Grouping, params::Instance};
///
/// let table = PcrModel::reference().table(1.0).unwrap();
/// let inst = Instance::new(10, 1800, 53);
/// // The paper's Improvement 1 grouping for R = 53.
/// let grouping = Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1);
/// let e = estimate(inst, &table, &grouping).unwrap();
/// assert!(e.makespan > 0.0 && e.utilization(inst) > 0.9);
/// ```
pub fn estimate(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
) -> Result<Estimate, GroupingError> {
    grouping.validate(inst)?;
    Ok(SCRATCH.with(|cell| run(inst, table, grouping, &mut cell.borrow_mut())))
}

/// The event loop proper, on pre-validated input and reusable state.
fn run(
    inst: Instance,
    table: &TimingTable,
    grouping: &Grouping,
    scratch: &mut Scratch,
) -> Estimate {
    let sizes: &[u32] = grouping.groups();
    // The `T[G]` row, indexed by `G - 4` — one array load per group
    // instead of a spec lookup per `main_secs` call.
    let trow = table.main_array();
    let tp = table.post_secs();
    let nm = inst.nm;

    let Scratch {
        durs,
        busy,
        running,
        waiting,
        months_done,
        idle,
        post_ready,
        post_pool,
    } = scratch;
    durs.clear();
    durs.extend(sizes.iter().map(|&g| trow[(g - MIN_PROCS) as usize]));
    let durs: &[f64] = durs;
    busy.clear();
    busy.reserve(sizes.len());
    running.clear();
    running.resize(sizes.len(), None);
    waiting.clear();
    waiting.reserve(inst.ns as usize);
    for s in 0..inst.ns {
        waiting.push(Reverse((0, s)));
    }
    months_done.clear();
    months_done.resize(inst.ns as usize, 0);
    let mut unfinished = inst.ns as usize;
    // Idle groups, kept sorted ascending by (size, index) — the largest
    // is at the back for O(1) pop, the smallest at the front to disband.
    idle.clear();
    idle.extend(0..sizes.len());
    idle.sort_unstable_by_key(|&g| (sizes[g], g));
    let mut alive = sizes.len();

    // Post bookkeeping.
    post_ready.clear();
    post_ready.reserve(inst.nbtasks() as usize);
    // Processor pool for posts: avail times (dedicated start at 0).
    post_pool.clear();
    post_pool.reserve(inst.r as usize);
    for _ in 0..grouping.post_procs {
        post_pool.push(Reverse(Time(0.0)));
    }

    let mut main_finish = 0.0f64;
    let mut main_busy = 0.0f64;

    // Assignment + disband pass at time `now`.
    let assign = |now: f64,
                  idle: &mut Vec<usize>,
                  waiting: &mut BinaryHeap<Reverse<(u32, u32)>>,
                  busy: &mut BinaryHeap<TimeKey<usize>>,
                  running: &mut Vec<Option<u32>>,
                  alive: &mut usize,
                  unfinished: usize,
                  post_pool: &mut BinaryHeap<Reverse<Time>>| {
        while !idle.is_empty() {
            if let Some(&Reverse((_, s))) = waiting.peek() {
                let g = idle.pop().expect("checked non-empty"); // largest idle group
                waiting.pop();
                running[g] = Some(s);
                busy.push(time_key(now + durs[g], g));
            } else {
                break;
            }
        }
        // Disband surplus: a group beyond the number of unfinished
        // scenarios can never receive another main task.
        while !idle.is_empty() && *alive > unfinished {
            let g = idle.remove(0); // smallest idle group
            *alive -= 1;
            for _ in 0..sizes[g] {
                post_pool.push(Reverse(Time(now)));
            }
        }
    };

    assign(
        0.0,
        &mut *idle,
        &mut *waiting,
        &mut *busy,
        &mut *running,
        &mut alive,
        unfinished,
        &mut *post_pool,
    );

    while let Some(Reverse((Time(t), g))) = busy.pop() {
        let s = running[g].take().expect("busy group has a scenario");
        months_done[s as usize] += 1;
        main_finish = t;
        main_busy += durs[g] * sizes[g] as f64;
        post_ready.push(t);
        if months_done[s as usize] == nm {
            unfinished -= 1;
        } else {
            waiting.push(Reverse((months_done[s as usize], s)));
        }
        // Re-insert g as idle, keeping the (size, index) order.
        let pos = idle
            .binary_search_by_key(&(sizes[g], g), |&x| (sizes[x], x))
            .unwrap_err();
        idle.insert(pos, g);
        assign(
            t,
            &mut *idle,
            &mut *waiting,
            &mut *busy,
            &mut *running,
            &mut alive,
            unfinished,
            &mut *post_pool,
        );
    }
    debug_assert_eq!(unfinished, 0);
    debug_assert_eq!(post_ready.len(), inst.nbtasks() as usize);
    debug_assert!(post_ready.windows(2).all(|w| w[0] <= w[1]));

    // Post phase: FIFO on the pool (dedicated + disbanded processors).
    debug_assert!(!post_pool.is_empty(), "groups always disband eventually");
    let mut post_finish = 0.0f64;
    let mut post_busy = 0.0f64;
    for &ready in post_ready.iter() {
        let Reverse(Time(avail)) = post_pool.pop().expect("pool is non-empty");
        let start = if avail > ready { avail } else { ready };
        let fin = start + tp;
        post_busy += tp;
        if fin > post_finish {
            post_finish = fin;
        }
        post_pool.push(Reverse(Time(fin)));
    }

    Estimate {
        makespan: main_finish.max(post_finish),
        main_finish,
        post_finish,
        main_busy_proc_secs: main_busy,
        post_busy_proc_secs: post_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn single_scenario_single_group_is_a_chain() {
        let inst = Instance::new(1, 5, 11);
        let g = Grouping::uniform(11, 1, 0);
        let t = flat(100.0, 10.0);
        let e = estimate(inst, &t, &g).unwrap();
        // 5 mains back to back; the 5th post starts at 500.
        assert_eq!(e.main_finish, 500.0);
        assert_eq!(e.makespan, 510.0);
        // Posts of months 0..3 complete during the run on the disbanded…
        // no: the group never idles until the end, and no dedicated
        // posts exist, so posts 0..4 all run at the end on 11 procs.
        assert_eq!(e.post_finish, 510.0);
    }

    #[test]
    fn dedicated_post_procs_absorb_posts_during_run() {
        let inst = Instance::new(1, 5, 12);
        let g = Grouping::uniform(11, 1, 1);
        let t = flat(100.0, 10.0);
        let e = estimate(inst, &t, &g).unwrap();
        // Post of month m starts right at 100(m+1); last at 510.
        assert_eq!(e.makespan, 510.0);
        assert_eq!(
            e.utilization(inst),
            (5.0 * 1100.0 + 5.0 * 10.0) / (510.0 * 12.0)
        );
    }

    #[test]
    fn matches_equation_2_exactly() {
        // R2 = 0, nbused = 0: analytic is exact.
        let inst = Instance::new(5, 4, 20);
        let t = flat(100.0, 10.0);
        let b = analytic::makespan(inst, &t, 4).unwrap();
        let e = estimate(inst, &t, &Grouping::uniform(4, 5, 0)).unwrap();
        assert_eq!(e.makespan, b.makespan);
    }

    #[test]
    fn matches_equation_4_when_posts_keep_up() {
        let inst = Instance::new(5, 4, 22);
        let t = flat(100.0, 10.0);
        let b = analytic::makespan(inst, &t, 4).unwrap();
        let e = estimate(inst, &t, &Grouping::uniform(4, 5, 2)).unwrap();
        assert_eq!(e.makespan, b.makespan);
    }

    #[test]
    fn estimator_beats_or_matches_analytic_on_overpass() {
        // The analytic model batches trailing posts into ⌈…/R⌉ waves;
        // the event simulation is at least as tight.
        let inst = Instance::new(5, 4, 22);
        let t = flat(100.0, 60.0);
        let b = analytic::makespan(inst, &t, 4).unwrap();
        let e = estimate(inst, &t, &Grouping::uniform(4, 5, 2)).unwrap();
        assert!(
            e.makespan <= b.makespan + 1e-9,
            "sim {} analytic {}",
            e.makespan,
            b.makespan
        );
        assert!(e.makespan >= b.ms_multi);
    }

    #[test]
    fn fairness_least_advanced_first() {
        // 3 scenarios, 2 groups, 2 months each: after the first two
        // completions the waiting scenario 2 (0 months) must run before
        // scenario 0/1's second month… all finish by 3·T with fairness,
        // 4·T without it would not happen here either, so check precise
        // makespan: 6 months on 2 groups in lockstep = 3 waves.
        let inst = Instance::new(3, 2, 8);
        let t = flat(100.0, 10.0);
        let e = estimate(inst, &t, &Grouping::uniform(4, 2, 0)).unwrap();
        assert_eq!(e.main_finish, 300.0);
    }

    #[test]
    fn heterogeneous_groups_lets_fast_group_do_more() {
        // One group of 11 (faster) and one of 4: the big group should
        // complete more months.
        let inst = Instance::new(2, 10, 15);
        let t = reference();
        let g = Grouping::new(vec![11, 4], 0);
        let e = estimate(inst, &t, &g).unwrap();
        // Strictly better than two groups of 4 — more capacity helps.
        let worse = estimate(inst.with_resources(15), &t, &Grouping::new(vec![4, 4], 0)).unwrap();
        assert!(e.makespan < worse.makespan);
    }

    #[test]
    fn disbanded_groups_finish_trailing_posts() {
        // R2 = 0: every post must still complete (on disbanded procs).
        let inst = Instance::new(4, 3, 16);
        let t = flat(100.0, 10.0);
        let e = estimate(inst, &t, &Grouping::uniform(4, 4, 0)).unwrap();
        assert!(e.post_finish > e.main_finish);
        assert_eq!(e.post_busy_proc_secs, 12.0 * 10.0);
    }

    #[test]
    fn invalid_grouping_is_rejected() {
        let inst = Instance::new(2, 2, 12);
        let err = estimate(inst, &flat(10.0, 1.0), &Grouping::uniform(4, 3, 0)).unwrap_err();
        assert!(matches!(err, GroupingError::TooManyGroups { .. }));
    }

    #[test]
    fn paper_example_gain_improvement_1() {
        // R = 53, NS = 10: basic = 7×7 + 4 post; improvement 1 =
        // 3×8 + 4×7 + 1 post. The paper reports a ≈4.5 % gain.
        let inst = Instance::new(10, 1800, 53);
        let t = reference();
        let basic = estimate(inst, &t, &Grouping::uniform(7, 7, 4)).unwrap();
        let imp1 = estimate(inst, &t, &Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1)).unwrap();
        let gain = (basic.makespan - imp1.makespan) / basic.makespan * 100.0;
        assert!(gain > 2.0 && gain < 8.0, "gain was {gain:.2}%");
    }

    #[test]
    fn utilization_is_in_unit_interval() {
        let inst = Instance::new(10, 50, 53);
        let e = estimate(inst, &reference(), &Grouping::uniform(7, 7, 4)).unwrap();
        let u = e.utilization(inst);
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
    }
}
