//! Scheduling over a heterogeneous grid (Section 5, Algorithm 1).
//!
//! "To reduce the makespan of NS simulations, the best way is to divide
//! the set of simulations into subsets and execute each subset on a
//! different cluster." Each cluster first computes a *performance
//! vector*: the makespan of running `1..=NS` scenarios locally (using a
//! chosen grouping heuristic — the paper uses the knapsack model,
//! step 2 of Figure 9). The client then assigns scenarios greedily:
//! each scenario goes to the cluster whose makespan after receiving it
//! is smallest (Algorithm 1).

use serde::{Deserialize, Serialize};

use oa_par::Pool;
use oa_platform::cluster::ClusterId;
use oa_platform::grid::Grid;

use crate::heuristics::Heuristic;
use crate::params::Instance;

/// The per-cluster performance vector: `makespans[k]` is the predicted
/// makespan of `k + 1` scenarios on the cluster (`k + 1 ∈ 1..=NS`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceVector {
    /// Cluster this vector describes.
    pub cluster: ClusterId,
    /// Predicted makespans for 1..=NS scenarios, seconds. Infinite
    /// entries mean the cluster cannot run that many scenarios (too
    /// small for even one group).
    pub makespans: Vec<f64>,
}

impl PerformanceVector {
    /// Predicted makespan of `k` scenarios (`1..=NS`); `+∞` for `k = 0`
    /// is never queried — Algorithm 1 indexes `nbDags + 1 ≥ 1`.
    pub fn of(&self, k: u32) -> f64 {
        self.makespans[(k - 1) as usize]
    }

    /// Number of scenario counts covered (NS).
    pub fn len(&self) -> usize {
        self.makespans.len()
    }

    /// True when the vector covers no scenario count.
    pub fn is_empty(&self) -> bool {
        self.makespans.is_empty()
    }
}

/// Computes the performance vector of one cluster for `1..=ns`
/// scenarios of `nm` months under `heuristic` (step 2 of Figure 9).
/// Clusters too small for any group report `+∞` everywhere.
pub fn performance_vector(
    cluster: ClusterId,
    resources: u32,
    table: &oa_platform::timing::TimingTable,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
) -> PerformanceVector {
    let makespans = (1..=ns)
        .map(|k| {
            let inst = Instance::new(k, nm, resources);
            // Too-small clusters price themselves out of Algorithm 1.
            heuristic.makespan(inst, table).unwrap_or(f64::INFINITY)
        })
        .collect();
    PerformanceVector { cluster, makespans }
}

/// [`performance_vector`] with the `ns` independent heuristic
/// evaluations fanned out on `pool`. Each entry is a pure function of
/// its scenario count and results are stitched back in count order, so
/// the vector is bit-identical to the serial path — this is the
/// single-cluster entry point an online scheduler uses when a cluster
/// joins an already-running grid.
pub fn performance_vector_with(
    cluster: ClusterId,
    resources: u32,
    table: &oa_platform::timing::TimingTable,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    pool: &Pool,
) -> PerformanceVector {
    let counts: Vec<u32> = (1..=ns).collect();
    let makespans = pool.par_map(&counts, |&k| {
        let inst = Instance::new(k, nm, resources);
        heuristic.makespan(inst, table).unwrap_or(f64::INFINITY)
    });
    PerformanceVector { cluster, makespans }
}

/// Extends a performance vector in place to cover `1..=upto` scenarios,
/// evaluating the heuristic only for the counts not yet covered. The
/// existing prefix is untouched (each entry is a pure function of its
/// `(cluster, k)` pair), so growing a vector never perturbs decisions
/// already taken from it — the incremental counterpart of recomputing
/// [`performance_vector`] from scratch at the larger `NS`.
pub fn extend_performance_vector(
    vector: &mut PerformanceVector,
    resources: u32,
    table: &oa_platform::timing::TimingTable,
    heuristic: Heuristic,
    upto: u32,
    nm: u32,
) {
    for k in (vector.makespans.len() as u32 + 1)..=upto {
        let inst = Instance::new(k, nm, resources);
        vector
            .makespans
            .push(heuristic.makespan(inst, table).unwrap_or(f64::INFINITY));
    }
}

/// Performance vectors for every cluster of a grid.
pub fn grid_performance(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
) -> Vec<PerformanceVector> {
    grid.iter()
        .map(|(id, c)| performance_vector(id, c.resources, &c.timing, heuristic, ns, nm))
        .collect()
}

/// [`grid_performance`] with the whole cluster-assignment search —
/// the flattened (cluster, scenario-count) grid of `clusters × NS`
/// independent heuristic evaluations — fanned out on `pool`. Each
/// point is a pure function of its (cluster, k) pair and the results
/// are stitched back in (cluster, k) order, so the vectors are
/// bit-identical to the serial path.
pub fn grid_performance_with(
    grid: &Grid,
    heuristic: Heuristic,
    ns: u32,
    nm: u32,
    pool: &Pool,
) -> Vec<PerformanceVector> {
    let clusters: Vec<(ClusterId, u32, &oa_platform::timing::TimingTable)> = grid
        .iter()
        .map(|(id, c)| (id, c.resources, &c.timing))
        .collect();
    // Flatten (cluster, k): k varies fastest, matching the serial
    // nesting, and uneven per-cluster costs balance across workers.
    let pairs: Vec<(usize, u32)> = clusters
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| (1..=ns).map(move |k| (ci, k)))
        .collect();
    let makespans = pool.par_map(&pairs, |&(ci, k)| {
        let (_, resources, table) = clusters[ci];
        let inst = Instance::new(k, nm, resources);
        heuristic.makespan(inst, table).unwrap_or(f64::INFINITY)
    });
    clusters
        .iter()
        .enumerate()
        .map(|(ci, &(id, _, _))| PerformanceVector {
            cluster: id,
            makespans: makespans[ci * ns as usize..(ci + 1) * ns as usize].to_vec(),
        })
        .collect()
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repartition {
    /// `assignment[dag]` = cluster that runs scenario `dag`.
    pub assignment: Vec<ClusterId>,
    /// `nb_dags[cluster]` = scenarios assigned to each cluster.
    pub nb_dags: Vec<u32>,
}

impl Repartition {
    /// Predicted grid makespan: the slowest cluster's predicted
    /// makespan for its assigned count.
    pub fn predicted_makespan(&self, vectors: &[PerformanceVector]) -> f64 {
        self.nb_dags
            .iter()
            .enumerate()
            .filter(|(_, &k)| k > 0)
            .map(|(c, &k)| vectors[c].of(k))
            .fold(0.0, f64::max)
    }

    /// Scenario indices assigned to `cluster`.
    pub fn scenarios_of(&self, cluster: ClusterId) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster)
            .map(|(s, _)| s as u32)
            .collect()
    }
}

/// Algorithm 1 verbatim: each scenario, in index order, goes to the
/// cluster whose makespan with one more scenario is smallest (ties:
/// lowest cluster id, matching the `<` comparison of the pseudocode).
///
/// Panics if `vectors` is empty or the vectors disagree on NS.
///
/// ```
/// use oa_platform::cluster::ClusterId;
/// use oa_sched::hetero::{repartition, PerformanceVector};
///
/// let fast = PerformanceVector { cluster: ClusterId(0), makespans: vec![10.0, 20.0, 30.0] };
/// let slow = PerformanceVector { cluster: ClusterId(1), makespans: vec![25.0, 50.0, 75.0] };
/// let plan = repartition(&[fast, slow]);
/// assert_eq!(plan.nb_dags, vec![2, 1]); // the faster cluster gets more DAGs
/// ```
pub fn repartition(vectors: &[PerformanceVector]) -> Repartition {
    let ns = vectors.first().map_or(0, PerformanceVector::len);
    repartition_n(vectors, ns)
}

/// Algorithm 1 stopped after `ns` scenarios — the batch oracle for the
/// incremental scheduler in [`crate::incremental`]: because the greedy
/// state after `n` steps is a pure function of `n`, the counts it
/// produces after `ns` arrivals are exactly `repartition_n(v, ns)`.
///
/// Panics if `vectors` is empty, the vectors disagree on NS, or `ns`
/// exceeds the vectors' coverage.
pub fn repartition_n(vectors: &[PerformanceVector], ns: usize) -> Repartition {
    assert!(
        !vectors.is_empty(),
        "repartition needs at least one cluster"
    );
    let cap = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == cap),
        "performance vectors disagree on NS"
    );
    assert!(
        ns <= cap,
        "repartition of {ns} scenarios exceeds vector coverage {cap}"
    );
    let n = vectors.len();
    let mut nb_dags = vec![0u32; n];
    let mut assignment = Vec::with_capacity(ns);
    for _dag in 0..ns {
        let mut ms_min = f64::INFINITY;
        let mut cluster_min = 0usize;
        for (i, v) in vectors.iter().enumerate() {
            let temp = v.of(nb_dags[i] + 1);
            if temp < ms_min {
                ms_min = temp;
                cluster_min = i;
            }
        }
        nb_dags[cluster_min] += 1;
        assignment.push(vectors[cluster_min].cluster);
    }
    Repartition {
        assignment,
        nb_dags,
    }
}

/// Exact scenario repartition by dynamic programming: minimizes the
/// grid makespan `max_i performance[i][k_i]` over all splits
/// `Σ k_i = NS`. `O(n × NS²)` — used to audit Algorithm 1.
///
/// The paper states its greedy "gives the optimal repartition for the
/// times given in the performance array". That holds for *monotone*
/// vectors (makespan non-decreasing in the scenario count), which
/// every real performance vector satisfies; for arbitrary arrays the
/// greedy can lose (see the `greedy_suboptimal_on_nonmonotone_vectors`
/// test). This solver is the ground truth either way.
pub fn repartition_exact(vectors: &[PerformanceVector]) -> Repartition {
    assert!(
        !vectors.is_empty(),
        "repartition needs at least one cluster"
    );
    let ns = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == ns),
        "performance vectors disagree on NS"
    );
    let n = vectors.len();
    let cost = |i: usize, k: usize| -> f64 {
        if k == 0 {
            0.0
        } else {
            vectors[i].makespans[k - 1]
        }
    };

    // dp[i][k]: best grid makespan running k scenarios on clusters i..n.
    let mut dp = vec![vec![f64::INFINITY; ns + 1]; n + 1];
    let mut choice = vec![vec![0usize; ns + 1]; n];
    for (k, cell) in dp[n].iter_mut().enumerate() {
        *cell = if k == 0 { 0.0 } else { f64::INFINITY };
    }
    for i in (0..n).rev() {
        for k in 0..=ns {
            for here in 0..=k {
                let v = cost(i, here).max(dp[i + 1][k - here]);
                if v < dp[i][k] {
                    dp[i][k] = v;
                    choice[i][k] = here;
                }
            }
        }
    }

    let mut nb_dags = vec![0u32; n];
    let mut k = ns;
    for i in 0..n {
        let here = choice[i][k];
        nb_dags[i] = here as u32;
        k -= here;
    }
    // Scenario indices in cluster order (any order is equivalent: the
    // scenarios are identical).
    let mut assignment = Vec::with_capacity(ns);
    for (i, &count) in nb_dags.iter().enumerate() {
        for _ in 0..count {
            assignment.push(ClusterId(i as u32));
        }
    }
    Repartition {
        assignment,
        nb_dags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Heuristic;
    use oa_platform::presets::benchmark_grid;
    use oa_platform::speedup::PcrModel;

    fn vectors(ms: &[&[f64]]) -> Vec<PerformanceVector> {
        ms.iter()
            .enumerate()
            .map(|(i, v)| PerformanceVector {
                cluster: ClusterId(i as u32),
                makespans: v.to_vec(),
            })
            .collect()
    }

    #[test]
    fn all_to_single_fast_cluster_when_it_dominates() {
        // Cluster 0 runs k scenarios faster than cluster 1 runs even 1.
        let v = vectors(&[&[10.0, 20.0, 30.0], &[100.0, 200.0, 300.0]]);
        let r = repartition(&v);
        assert_eq!(r.nb_dags, vec![3, 0]);
        assert_eq!(r.predicted_makespan(&v), 30.0);
    }

    #[test]
    fn balances_identical_clusters() {
        let v = vectors(&[&[10.0, 20.0, 30.0, 40.0], &[10.0, 20.0, 30.0, 40.0]]);
        let r = repartition(&v);
        assert_eq!(r.nb_dags, vec![2, 2]);
        assert_eq!(r.predicted_makespan(&v), 20.0);
        // Ties go to the lower cluster id first.
        assert_eq!(r.assignment[0], ClusterId(0));
        assert_eq!(r.assignment[1], ClusterId(1));
    }

    #[test]
    fn faster_cluster_gets_more_dags() {
        // "The faster, the more DAGs it has to execute."
        let grid = benchmark_grid(44);
        let v = grid_performance(&grid, Heuristic::Knapsack, 10, 60);
        let r = repartition(&v);
        let fastest = grid.fastest().unwrap().index();
        let slowest = grid.slowest().unwrap().index();
        assert!(
            r.nb_dags[fastest] >= r.nb_dags[slowest],
            "fastest got {} < slowest {}",
            r.nb_dags[fastest],
            r.nb_dags[slowest]
        );
        assert_eq!(r.nb_dags.iter().sum::<u32>(), 10);
    }

    #[test]
    fn greedy_is_optimal_for_small_cases() {
        // Exhaustively check Algorithm 1 against all assignments for
        // 2 clusters × 4 scenarios with convex vectors.
        let v = vectors(&[&[5.0, 11.0, 18.0, 26.0], &[7.0, 15.0, 24.0, 34.0]]);
        let r = repartition(&v);
        let greedy_ms = r.predicted_makespan(&v);
        let mut best = f64::INFINITY;
        for a in 0..=4u32 {
            let b = 4 - a;
            let mut ms: f64 = 0.0;
            if a > 0 {
                ms = ms.max(v[0].of(a));
            }
            if b > 0 {
                ms = ms.max(v[1].of(b));
            }
            best = best.min(ms);
        }
        assert_eq!(greedy_ms, best);
    }

    #[test]
    fn too_small_cluster_is_never_used() {
        let m = PcrModel::reference();
        let table_small = m.table(1.0).unwrap();
        let v = vec![
            performance_vector(ClusterId(0), 4, &table_small, Heuristic::Basic, 3, 10),
            PerformanceVector {
                cluster: ClusterId(1),
                makespans: vec![f64::INFINITY; 3],
            },
        ];
        let r = repartition(&v);
        assert_eq!(r.nb_dags[1], 0);
    }

    #[test]
    fn performance_vector_is_non_decreasing() {
        let m = PcrModel::reference();
        let t = m.table(1.0).unwrap();
        for h in Heuristic::PAPER {
            let v = performance_vector(ClusterId(0), 30, &t, h, 8, 36);
            for k in 1..v.len() {
                assert!(
                    v.makespans[k] + 1e-6 >= v.makespans[k - 1],
                    "{h:?}: k={} {} < {}",
                    k + 1,
                    v.makespans[k],
                    v.makespans[k - 1]
                );
            }
        }
    }

    #[test]
    fn scenarios_of_lists_assignments() {
        let v = vectors(&[&[10.0, 20.0], &[15.0, 30.0]]);
        let r = repartition(&v);
        let all: usize = (0..2).map(|c| r.scenarios_of(ClusterId(c)).len()).sum();
        assert_eq!(all, 2);
    }

    #[test]
    fn greedy_matches_exact_on_real_vectors() {
        // On performance vectors produced by the heuristics (monotone
        // in the scenario count), Algorithm 1 is optimal — the paper's
        // claim, audited against the DP.
        for resources in [20u32, 33, 47] {
            let grid = benchmark_grid(resources);
            for h in [Heuristic::Basic, Heuristic::Knapsack] {
                let v = grid_performance(&grid, h, 10, 36);
                let g = repartition(&v).predicted_makespan(&v);
                let e = repartition_exact(&v).predicted_makespan(&v);
                assert!(
                    (g - e).abs() < 1e-9,
                    "{h:?} R={resources}: greedy {g} vs exact {e}"
                );
            }
        }
    }

    #[test]
    fn greedy_suboptimal_on_nonmonotone_vectors() {
        // A crafted non-monotone array (2 scenarios cheaper than 1 —
        // impossible for real makespans) fools the greedy: it sends the
        // first scenario to cluster 0 (5 < 8), then pays 30 somewhere,
        // while the optimum runs both on cluster 1 for 6.
        let v = vectors(&[&[5.0, 30.0], &[8.0, 6.0]]);
        let g = repartition(&v).predicted_makespan(&v);
        let e = repartition_exact(&v).predicted_makespan(&v);
        assert_eq!(e, 6.0);
        assert!(g > e, "greedy {g} should lose here");
    }

    #[test]
    fn exact_partitions_all_scenarios() {
        let v = vectors(&[&[10.0, 20.0, 30.0], &[12.0, 25.0, 40.0], &[9.0, 21.0, 33.0]]);
        let r = repartition_exact(&v);
        assert_eq!(r.nb_dags.iter().sum::<u32>(), 3);
        assert_eq!(r.assignment.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_vectors_panic() {
        repartition(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn exact_empty_vectors_panic() {
        repartition_exact(&[]);
    }

    #[test]
    #[should_panic(expected = "disagree on NS")]
    fn mismatched_vectors_panic() {
        let v = vectors(&[&[1.0, 2.0], &[1.0]]);
        repartition(&v);
    }
}
