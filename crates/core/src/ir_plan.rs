//! Grouping/G-selection over the workflow IR.
//!
//! The paper's heuristics take an [`Instance`] `(NS, NM, R)` — the
//! shape of the ocean-atmosphere mesh. This module generalizes the
//! front end: any [`WorkflowIr`] is reduced to an *equivalent
//! instance* and then planned with the unchanged heuristics.
//!
//! * Recognized preset meshes ([`IrClass::FusedMesh`] /
//!   [`IrClass::UnfusedMesh`]) map to exactly the legacy instance
//!   `(NS, NM, R)` — the produced grouping is byte-identical to the
//!   pre-IR path, which is what keeps campaign outputs stable.
//! * General workflows derive `NS` from the *moldable width* (the
//!   maximum number of moldable tasks overlapping in the ASAP
//!   schedule, from `oa_workflow::analysis`) and `NM` from the
//!   moldable task count, so the knapsack sizes groups for the
//!   parallelism the DAG can actually feed.

use oa_platform::timing::TimingTable;
use oa_workflow::dag::DagError;
use oa_workflow::ir::{recognize, Durations, IrClass, IrError, IrProfile, WorkflowIr};

use crate::grouping::Grouping;
use crate::heuristics::{Heuristic, HeuristicError};
use crate::params::Instance;

/// Why a workflow could not be planned.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The workflow failed structural validation.
    Invalid(IrError),
    /// A graph query failed (cycle discovered during analysis).
    Graph(DagError),
    /// The heuristic could not produce a grouping (e.g. `R < 4`).
    Heuristic(HeuristicError),
    /// The workflow has no moldable tasks — there is nothing for the
    /// grouping heuristics to size.
    NoMoldableTasks,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Invalid(e) => write!(f, "invalid workflow: {e}"),
            PlanError::Graph(e) => write!(f, "workflow analysis failed: {e}"),
            PlanError::Heuristic(e) => write!(f, "grouping failed: {e}"),
            PlanError::NoMoldableTasks => write!(f, "workflow has no moldable tasks to group"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<IrError> for PlanError {
    fn from(e: IrError) -> Self {
        PlanError::Invalid(e)
    }
}

impl From<DagError> for PlanError {
    fn from(e: DagError) -> Self {
        PlanError::Graph(e)
    }
}

impl From<HeuristicError> for PlanError {
    fn from(e: HeuristicError) -> Self {
        PlanError::Heuristic(e)
    }
}

/// A planned workflow: classification, the equivalent instance, and
/// the grouping the heuristic chose for it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowPlan {
    /// What the recognizer found.
    pub class: IrClass,
    /// The `(NS, NM, R)` instance the heuristics planned.
    pub instance: Instance,
    /// The chosen processor grouping.
    pub grouping: Grouping,
    /// Shape profile of the workflow.
    pub profile: IrProfile,
}

/// Maximum number of *moldable* tasks overlapping in the ASAP schedule
/// — the parallel width the grouping must feed. Rigid tasks ride the
/// post pool and do not count.
pub fn moldable_width(ir: &WorkflowIr, d: &impl Durations) -> Result<usize, DagError> {
    let levels = ir.levels(d)?;
    let mut events: Vec<(f64, i32)> = Vec::new();
    for (id, n) in ir.dag.iter() {
        if !n.kind.is_moldable() {
            continue;
        }
        let (s, f) = (
            levels.asap_start[id.index()],
            levels.asap_finish[id.index()],
        );
        if f > s {
            events.push((s, 1));
            events.push((f, -1));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut cur = 0i32;
    let mut max = 0i32;
    for (_, delta) in events {
        cur += delta;
        max = max.max(cur);
    }
    Ok(max as usize)
}

/// Reduces a workflow to the `(NS, NM, R)` instance the paper's
/// heuristics understand. Recognized meshes map to their exact legacy
/// instance; general workflows use moldable width and count.
pub fn equivalent_instance(
    ir: &WorkflowIr,
    d: &impl Durations,
    r: u32,
) -> Result<Instance, PlanError> {
    match recognize(ir) {
        IrClass::FusedMesh(shape) | IrClass::UnfusedMesh(shape) => {
            Ok(Instance::for_shape(shape, r))
        }
        IrClass::General => {
            let moldable = ir.dag.iter().filter(|(_, n)| n.kind.is_moldable()).count() as u64;
            if moldable == 0 {
                return Err(PlanError::NoMoldableTasks);
            }
            let width = moldable_width(ir, d)?.max(1) as u64;
            let months = moldable.div_ceil(width).max(1);
            Ok(Instance::new(width as u32, months as u32, r))
        }
    }
}

/// Validates, classifies and plans a workflow on `r` processors with
/// heuristic `h`. For preset meshes the resulting grouping is
/// byte-identical to `h.grouping(Instance::for_shape(shape, r), table)`
/// — the legacy planning path.
pub fn plan_workflow(
    ir: &WorkflowIr,
    table: &TimingTable,
    r: u32,
    h: Heuristic,
) -> Result<WorkflowPlan, PlanError> {
    ir.validate()?;
    let class = recognize(ir);
    let profile = ir.profile(table)?;
    let instance = equivalent_instance(ir, table, r)?;
    let grouping = h.grouping(instance, table)?;
    Ok(WorkflowPlan {
        class,
        instance,
        grouping,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_workflow::chain::ExperimentShape;
    use oa_workflow::ir::{lower_experiment, lower_fused, DurationModel, IrTaskKind};
    use oa_workflow::moldable::MoldableSpec;

    fn table() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn mesh_plans_match_the_legacy_path_exactly() {
        let table = table();
        for shape in [ExperimentShape::new(10, 18), ExperimentShape::new(3, 40)] {
            for r in [11, 53, 120] {
                for h in Heuristic::PAPER {
                    let legacy = h.grouping(Instance::for_shape(shape, r), &table);
                    for ir in [lower_fused(shape), lower_experiment(shape)] {
                        match (plan_workflow(&ir, &table, r, h), &legacy) {
                            (Ok(plan), Ok(g)) => {
                                assert_eq!(&plan.grouping, g, "{h:?} r={r}");
                                assert_eq!(plan.instance, Instance::for_shape(shape, r));
                            }
                            (Err(PlanError::Heuristic(_)), Err(_)) => {}
                            (a, b) => panic!("{h:?} r={r}: {a:?} vs {b:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_moldable_width_is_ns() {
        let table = table();
        let shape = ExperimentShape::new(7, 9);
        assert_eq!(moldable_width(&lower_fused(shape), &table).unwrap(), 7);
        assert_eq!(moldable_width(&lower_experiment(shape), &table).unwrap(), 7);
    }

    #[test]
    fn general_workflows_plan_from_width_and_count() {
        let table = table();
        // Two independent 3-deep moldable chains → width 2, months 3.
        let mut ir = WorkflowIr::new();
        let mut last = None;
        for c in 0..2 {
            let mut prev: Option<_> = None;
            for i in 0..3 {
                let n = ir.add_task(
                    &format!("c{c}t{i}"),
                    IrTaskKind::Moldable(MoldableSpec::pcr()),
                    DurationModel::MainTable,
                );
                if let Some(p) = prev {
                    ir.add_dep(p, n).unwrap();
                }
                prev = Some(n);
                last = Some(n);
            }
        }
        let sink = ir.add_task("merge", IrTaskKind::Rigid(1), DurationModel::Fixed(30.0));
        ir.add_dep(last.unwrap(), sink).unwrap();
        let plan = plan_workflow(&ir, &table, 30, Heuristic::Knapsack).unwrap();
        assert_eq!(plan.class, IrClass::General);
        assert_eq!(plan.instance, Instance::new(2, 3, 30));
        assert!(plan.grouping.validate(plan.instance).is_ok());
    }

    #[test]
    fn rigid_only_workflows_are_rejected() {
        let table = table();
        let mut ir = WorkflowIr::new();
        ir.add_task("only", IrTaskKind::Rigid(1), DurationModel::Fixed(5.0));
        assert_eq!(
            plan_workflow(&ir, &table, 30, Heuristic::Knapsack),
            Err(PlanError::NoMoldableTasks)
        );
    }

    #[test]
    fn invalid_workflows_are_rejected() {
        let table = table();
        let ir = WorkflowIr::new();
        assert!(matches!(
            plan_workflow(&ir, &table, 30, Heuristic::Knapsack),
            Err(PlanError::Invalid(IrError::Empty))
        ));
    }
}
