//! Campaign policy knobs: scenario selection, task granularity,
//! failure plans and recovery models.
//!
//! These are the *configuration* half of the discrete-event campaign
//! engine (`oa-sim::engine`): pure data, next to [`crate::estimate`]
//! which implements the same least-advanced-first policy in its fast
//! aggregate form. Every event loop in the workspace — the fast
//! estimator, the recording executor, the unfused ablation and the
//! failure replayer — draws its scenario-selection behaviour from
//! [`ScenarioQueue`] so the policies cannot drift apart.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

/// How a freed group chooses among waiting scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ScenarioPolicy {
    /// The paper's policy: the scenario with the fewest completed
    /// months ("the month of the less advanced simulation waiting").
    #[default]
    LeastAdvanced,
    /// First-come-first-served over readiness events.
    RoundRobin,
    /// Adversarial ablation: the most advanced scenario first.
    MostAdvanced,
}

impl ScenarioPolicy {
    /// Every policy, paper default first.
    pub const ALL: [ScenarioPolicy; 3] = [
        ScenarioPolicy::LeastAdvanced,
        ScenarioPolicy::RoundRobin,
        ScenarioPolicy::MostAdvanced,
    ];

    /// The kebab-case name used by CLI flags and result files.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioPolicy::LeastAdvanced => "least-advanced",
            ScenarioPolicy::RoundRobin => "round-robin",
            ScenarioPolicy::MostAdvanced => "most-advanced",
        }
    }

    /// Parses a [`Self::label`] back into a policy.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }
}

impl std::fmt::Display for ScenarioPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Scenario queue supporting the three policies — the policy *object*
/// the engine consults at every assignment decision.
#[derive(Debug, Clone)]
pub enum ScenarioQueue {
    /// Min-heap on `(months done, scenario)`.
    Least(BinaryHeap<Reverse<(u32, u32)>>),
    /// FIFO over readiness events.
    Fifo(VecDeque<u32>),
    /// Max-heap on `(months done, scenario)`.
    Most(BinaryHeap<(u32, u32)>),
}

impl ScenarioQueue {
    /// A queue holding all `ns` scenarios at zero completed months.
    pub fn new(policy: ScenarioPolicy, ns: u32) -> Self {
        match policy {
            ScenarioPolicy::LeastAdvanced => {
                ScenarioQueue::Least((0..ns).map(|s| Reverse((0, s))).collect())
            }
            ScenarioPolicy::RoundRobin => ScenarioQueue::Fifo((0..ns).collect()),
            ScenarioPolicy::MostAdvanced => ScenarioQueue::Most((0..ns).map(|s| (0, s)).collect()),
        }
    }

    /// Enqueues scenario `s`, which has `months_done` completed months.
    pub fn push(&mut self, months_done: u32, s: u32) {
        match self {
            ScenarioQueue::Least(h) => h.push(Reverse((months_done, s))),
            ScenarioQueue::Fifo(q) => q.push_back(s),
            ScenarioQueue::Most(h) => h.push((months_done, s)),
        }
    }

    /// Dequeues the scenario the policy prefers.
    pub fn pop(&mut self) -> Option<u32> {
        match self {
            ScenarioQueue::Least(h) => h.pop().map(|Reverse((_, s))| s),
            ScenarioQueue::Fifo(q) => q.pop_front(),
            ScenarioQueue::Most(h) => h.pop().map(|(_, s)| s),
        }
    }

    /// Whether no scenario is waiting.
    pub fn is_empty(&self) -> bool {
        match self {
            ScenarioQueue::Least(h) => h.is_empty(),
            ScenarioQueue::Fifo(q) => q.is_empty(),
            ScenarioQueue::Most(h) => h.is_empty(),
        }
    }

    /// Number of waiting scenarios.
    pub fn len(&self) -> usize {
        match self {
            ScenarioQueue::Least(h) => h.len(),
            ScenarioQueue::Fifo(q) => q.len(),
            ScenarioQueue::Most(h) => h.len(),
        }
    }

    /// The queue's content as `(stored months, scenario)` pairs, in an
    /// order that determines future pops: FIFO order for the
    /// round-robin queue (which stores no month count — that slot is
    /// `0`), sorted for the heap-backed policies. Heap keys are unique
    /// (each scenario waits at most once and carries one month count),
    /// so pop order is a pure function of this canonical content —
    /// which is what lets `oa-sim`'s fast-forward detector compare
    /// queue states across cycles without caring about internal heap
    /// layout.
    pub fn canonical_content(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len());
        self.canonical_content_into(&mut out);
        out
    }

    /// [`Self::canonical_content`] into a caller-owned buffer (cleared
    /// first) — the allocation-free form the simulation hot path uses.
    pub fn canonical_content_into(&self, out: &mut Vec<(u32, u32)>) {
        out.clear();
        match self {
            ScenarioQueue::Least(h) => {
                out.extend(h.iter().map(|Reverse(k)| *k));
                out.sort_unstable();
            }
            ScenarioQueue::Fifo(q) => out.extend(q.iter().map(|&s| (0, s))),
            ScenarioQueue::Most(h) => {
                out.extend(h.iter().copied());
                out.sort_unstable();
            }
        }
    }

    /// Refills the queue with all `ns` scenarios at zero completed
    /// months, reusing the existing allocation when the policy matches
    /// (it always does across the points of one sweep).
    pub fn reset(&mut self, policy: ScenarioPolicy, ns: u32) {
        match (&mut *self, policy) {
            (ScenarioQueue::Least(h), ScenarioPolicy::LeastAdvanced) => {
                h.clear();
                h.extend((0..ns).map(|s| Reverse((0, s))));
            }
            (ScenarioQueue::Fifo(q), ScenarioPolicy::RoundRobin) => {
                q.clear();
                q.extend(0..ns);
            }
            (ScenarioQueue::Most(h), ScenarioPolicy::MostAdvanced) => {
                h.clear();
                h.extend((0..ns).map(|s| (0, s)));
            }
            (slot, _) => *slot = ScenarioQueue::new(policy, ns),
        }
    }
}

/// What a crashed scenario resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Recovery {
    /// Resume from the last completed month (the application's restart
    /// files — the realistic model).
    #[default]
    MonthlyCheckpoint,
    /// Restart the scenario from month 0 (counterfactual: no
    /// checkpoints).
    RestartScenario,
}

/// A failure plan: `(group index, time)` pairs. Group indices refer to
/// the canonical (descending-size) order of the grouping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Failures to inject.
    pub failures: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills group `g` at `time`.
    pub fn kill(mut self, g: usize, time: f64) -> Self {
        self.failures.push((g, time));
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Task granularity the engine simulates at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Granularity {
    /// The paper's Figure 2 model: one fused main task and one fused
    /// post task per month.
    #[default]
    Fused,
    /// The original Figure 1 model: the group holds `caif + mp + pcr`
    /// back to back, and `cof`, `emf`, `cd` chain individually through
    /// the post pool.
    Unfused,
}

impl Granularity {
    /// The kebab-case name used by CLI flags and result files.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Fused => "fused",
            Granularity::Unfused => "unfused",
        }
    }
}

/// Full configuration of one campaign run: the three orthogonal knobs
/// of the generic engine besides the fault plan itself.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Scenario-selection policy.
    pub policy: ScenarioPolicy,
    /// Task granularity.
    pub granularity: Granularity,
    /// What a crashed scenario resumes from.
    pub recovery: Recovery,
}

impl CampaignConfig {
    /// Fused-granularity config under `policy` (the executor default).
    pub fn fused(policy: ScenarioPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Unfused-granularity config under `policy`.
    pub fn unfused(policy: ScenarioPolicy) -> Self {
        Self {
            policy,
            granularity: Granularity::Unfused,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in ScenarioPolicy::ALL {
            assert_eq!(ScenarioPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(ScenarioPolicy::parse("bogus"), None);
    }

    #[test]
    fn least_advanced_prefers_fewest_months() {
        let mut q = ScenarioQueue::new(ScenarioPolicy::LeastAdvanced, 0);
        q.push(5, 0);
        q.push(2, 1);
        q.push(9, 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fifo_preserves_readiness_order() {
        let mut q = ScenarioQueue::new(ScenarioPolicy::RoundRobin, 3);
        assert_eq!(q.pop(), Some(0));
        q.push(1, 0);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(0));
        assert!(q.is_empty());
    }

    #[test]
    fn most_advanced_prefers_most_months() {
        let mut q = ScenarioQueue::new(ScenarioPolicy::MostAdvanced, 0);
        q.push(5, 0);
        q.push(2, 1);
        q.push(9, 2);
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn reset_reuses_across_policies() {
        let mut q = ScenarioQueue::new(ScenarioPolicy::LeastAdvanced, 4);
        q.reset(ScenarioPolicy::LeastAdvanced, 2);
        assert_eq!(q.len(), 2);
        q.reset(ScenarioPolicy::RoundRobin, 3);
        assert_eq!(q.pop(), Some(0));
        q.reset(ScenarioPolicy::MostAdvanced, 1);
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn canonical_content_determines_pop_order() {
        // Two heaps built by different push sequences but holding the
        // same keys must report identical canonical content (and will
        // therefore pop identically — keys are unique).
        let mut a = ScenarioQueue::new(ScenarioPolicy::LeastAdvanced, 0);
        let mut b = ScenarioQueue::new(ScenarioPolicy::LeastAdvanced, 0);
        for (m, s) in [(5, 0), (2, 1), (9, 2)] {
            a.push(m, s);
        }
        for (m, s) in [(9, 2), (5, 0), (2, 1)] {
            b.push(m, s);
        }
        assert_eq!(a.canonical_content(), b.canonical_content());
        assert_eq!(a.canonical_content(), vec![(2, 1), (5, 0), (9, 2)]);
        // FIFO content is readiness order with a zero filler.
        let mut f = ScenarioQueue::new(ScenarioPolicy::RoundRobin, 0);
        f.push(7, 3);
        f.push(1, 1);
        assert_eq!(f.canonical_content(), vec![(0, 3), (0, 1)]);
    }

    #[test]
    fn fault_plan_builder() {
        let plan = FaultPlan::none().kill(1, 50.0).kill(0, 10.0);
        assert_eq!(plan.failures, vec![(1, 50.0), (0, 10.0)]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
