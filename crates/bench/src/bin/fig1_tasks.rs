//! Figure 1 + Section 6 headline numbers: the monthly task chain with
//! its benchmarked durations, the fused model, and the timing tables of
//! the five benchmark clusters (fastest `pcr` on 11 processors: 1177 s;
//! slowest: 1622 s).
//!
//! Run: `cargo run --release -p oa-bench --bin fig1_tasks [--jobs N]`

use oa_bench::{row, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_workflow::monthly::month_reference_work;
use oa_workflow::prelude::*;

fn main() {
    let mut rec = SweepRecorder::start("fig1_tasks");
    println!("== Figure 1: monthly simulation tasks (reference cluster) ==");
    let widths = [6usize, 10, 8, 12];
    println!(
        "{}",
        row(
            &[
                "task".into(),
                "phase".into(),
                "procs".into(),
                "duration(s)".into()
            ],
            &widths
        )
    );
    for kind in TaskKind::CONCRETE {
        let t = Task::from_id(TaskId::new(0, 0, kind));
        println!(
            "{}",
            row(
                &[
                    kind.mnemonic().into(),
                    format!("{:?}", kind.phase()),
                    if t.min_procs == t.max_procs {
                        format!("{}", t.min_procs)
                    } else {
                        format!("{}-{}", t.min_procs, t.max_procs)
                    },
                    format!("{:.0}", t.reference_secs),
                ],
                &widths
            )
        );
    }
    println!(
        "total sequential work per month: {:.0} s",
        month_reference_work()
    );
    println!();

    println!("== Figure 2: fused model ==");
    println!("main = caif + mp + pcr  (moldable, 4..=11 processors)");
    println!(
        "post = cof + emf + cd  = {:.0} s on the reference cluster",
        fused_post_secs()
    );
    println!();

    println!("== Benchmark clusters (Section 6) ==");
    let grid = rec.phase("cluster_tables", 5, || benchmark_grid(DEFAULT_RESOURCES));
    let widths = [12usize, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "cluster".into(),
                "T[4](s)".into(),
                "T[7](s)".into(),
                "T[11](s)".into(),
                "TP(s)".into()
            ],
            &widths
        )
    );
    #[derive(serde::Serialize)]
    struct ClusterRow {
        name: String,
        main: Vec<f64>,
        post: f64,
    }
    let mut dump = Vec::new();
    for (_, c) in grid.iter() {
        println!(
            "{}",
            row(
                &[
                    c.name.clone(),
                    format!("{:.0}", c.timing.main_secs(4)),
                    format!("{:.0}", c.timing.main_secs(7)),
                    format!("{:.0}", c.timing.main_secs(11)),
                    format!("{:.0}", c.timing.post_secs()),
                ],
                &widths
            )
        );
        dump.push(ClusterRow {
            name: c.name.clone(),
            main: c.timing.main_array().to_vec(),
            post: c.timing.post_secs(),
        });
    }
    let fastest = grid.cluster(grid.fastest().expect("non-empty"));
    let slowest = grid.cluster(grid.slowest().expect("non-empty"));
    println!(
        "paper check: fastest pcr(11) ≈ 1177 s -> {:.0} s; slowest ≈ 1622 s -> {:.0} s",
        fastest.timing.main_secs(11) - 2.0,
        slowest.timing.main_secs(11) - 2.0,
    );
    write_json("fig1_tasks", &dump);
    rec.finish();
}
