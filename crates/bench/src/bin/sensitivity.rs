//! Sensitivity of the gains to campaign shape — an extension of
//! Figure 8 along the `NM` (campaign length) and `NS` (ensemble size)
//! axes, which the paper fixes at 1800 and 10.
//!
//! End effects (the incomplete last set, trailing posts) shrink
//! relative to the campaign as `NM` grows, so gains stabilize; `NS`
//! moves `nbmax` and the knapsack's room to mix group sizes.
//!
//! Run: `cargo run --release -p oa-bench --bin sensitivity [--fast] [--jobs N]`

use oa_bench::{fast_mode, row, stats, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;

#[derive(serde::Serialize)]
struct Sweep {
    axis: &'static str,
    value: u32,
    mean_gain_pct: f64,
    max_gain_pct: f64,
}

fn gains_over_r(
    ns: u32,
    nm: u32,
    table: &TimingTable,
    rs: &[u32],
    pool: &oa_par::Pool,
) -> Vec<f64> {
    pool.par_map(rs, |&r| {
        let inst = Instance::new(ns, nm, r);
        let base = Heuristic::Basic.makespan(inst, table).ok()?;
        let k = Heuristic::Knapsack.makespan(inst, table).ok()?;
        Some(gain_pct(base, k))
    })
    .into_iter()
    .flatten()
    .collect()
}

fn main() {
    let table = reference_cluster(120).timing;
    let rs: Vec<u32> = (11..=120)
        .step_by(if fast_mode() { 13 } else { 5 })
        .collect();
    let pool = oa_bench::pool();
    let mut rec = SweepRecorder::start("sensitivity");
    let mut out = Vec::new();

    println!("== Sensitivity of the knapsack gain (vs basic) ==\n");
    let widths = [8usize, 8, 12, 12];
    println!(
        "{}",
        row(
            &[
                "axis".into(),
                "value".into(),
                "mean gain%".into(),
                "max gain%".into()
            ],
            &widths
        )
    );

    // NM sweep at NS = 10.
    let nms = [12u32, 60, 240, 600, 1800];
    let nm_gains = rec.phase("nm_sweep", nms.len() * rs.len(), || {
        nms.map(|nm| gains_over_r(10, nm, &table, &rs, &pool))
    });
    for (nm, g) in nms.into_iter().zip(nm_gains) {
        let s = stats(&g);
        println!(
            "{}",
            row(
                &[
                    "NM".into(),
                    nm.to_string(),
                    format!("{:.2}", s.mean),
                    format!("{:.2}", s.max)
                ],
                &widths
            )
        );
        out.push(Sweep {
            axis: "nm",
            value: nm,
            mean_gain_pct: s.mean,
            max_gain_pct: s.max,
        });
    }
    println!();
    // NS sweep at NM = 600.
    let nss = [2u32, 5, 10, 15, 20];
    let ns_gains = rec.phase("ns_sweep", nss.len() * rs.len(), || {
        nss.map(|ns| gains_over_r(ns, 600, &table, &rs, &pool))
    });
    for (ns, g) in nss.into_iter().zip(ns_gains) {
        let s = stats(&g);
        println!(
            "{}",
            row(
                &[
                    "NS".into(),
                    ns.to_string(),
                    format!("{:.2}", s.mean),
                    format!("{:.2}", s.max)
                ],
                &widths
            )
        );
        out.push(Sweep {
            axis: "ns",
            value: ns,
            mean_gain_pct: s.mean,
            max_gain_pct: s.max,
        });
    }

    println!(
        "\nreading: gains persist as NM grows — they are structural, not an\n\
         end-effect artifact. Along NS the knapsack's advantage grows with\n\
         the ensemble (more groups to mix), but at NS = 2 it can go\n\
         *negative*: with two chains the raw throughput objective pins each\n\
         chain to one group and a slow small group becomes the critical\n\
         path — the same pitfall oa_sched::generic::balanced_generic fixes."
    );
    write_json("sensitivity", &out);
    rec.finish();
}
