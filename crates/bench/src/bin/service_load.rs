//! Load generator for the `oa-service` daemon: thousands of campaign
//! sessions through one in-process service, wall-clock latencies on
//! every request.
//!
//! The daemon itself never reads a wall clock (its determinism audit
//! forbids it); this harness is the one place latency is *measured* —
//! each `handle()` call is timed with `Instant` and the observation is
//! fed back into the service's `service_admit_latency_secs` /
//! `service_decision_latency_secs` histograms, which `{"Metrics": {}}`
//! then reports. Exact percentiles over the raw samples go to
//! `results/BENCH_service.json`.
//!
//! Run: `cargo run --release -p oa-bench --bin service_load [--fast]`
//!
//! The full run keeps > 1000 sessions concurrently admitted before the
//! first clock advance; `--fast` shrinks everything for CI smoke.

use std::time::Instant;

use oa_bench::write_json;
use oa_service::daemon::{Service, ServiceConfig};
use oa_service::wire::{Request, Response};
use oa_trace::metrics::keys;
use serde::Value;

/// Exact quantile over a sorted sample set (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summary(samples: &mut [f64]) -> Value {
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Value::Object(vec![
        ("count".into(), Value::U64(samples.len() as u64)),
        ("mean".into(), Value::F64(mean)),
        ("p50".into(), Value::F64(quantile(samples, 0.50))),
        ("p90".into(), Value::F64(quantile(samples, 0.90))),
        ("p99".into(), Value::F64(quantile(samples, 0.99))),
        ("max".into(), Value::F64(*samples.last().unwrap())),
    ])
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    // 1100 singleton sessions plus 100 three-scenario sessions keep
    // 1200 sessions (1400 scenarios) concurrently admitted.
    let (singles, triples, capacity, advance_steps) = if fast {
        (120, 10, 256, 40)
    } else {
        (1100, 100, 1536, 400)
    };
    let submissions = singles + triples;
    // Planning with the greedy knapsack: each cluster join prices
    // `capacity` performance-vector entries, and the exact knapsack
    // costs ~3x more per entry at this scale for the same counts on
    // this workload. The per-session execution heuristics are chosen
    // by each submission, not here.
    let cfg = ServiceConfig {
        capacity,
        planning_heuristic: oa_sched::heuristics::Heuristic::KnapsackGreedy,
        ..Default::default()
    };
    let mut service = Service::new(cfg, oa_par::resolve_jobs(None));

    println!("== oa-service load: {submissions} sessions over 5 clusters ==");
    let presets = [
        "sagittaire",
        "capricorne",
        "chinqchint",
        "grillon",
        "grelon",
    ];
    let t0 = Instant::now();
    for p in presets {
        let responses = service.handle(Request::ClusterJoin {
            name: p.to_string(),
            preset: p.to_string(),
            resources: 64,
        });
        assert!(
            matches!(responses[0], Response::ClusterUp { .. }),
            "join failed: {responses:?}"
        );
    }
    println!(
        "  joined {} clusters (capacity {capacity}) in {:.2}s",
        presets.len(),
        t0.elapsed().as_secs_f64()
    );

    // Phase 1: admission storm. No clock advance in between, so every
    // admitted session stays concurrently active.
    let mut admit = Vec::with_capacity(submissions);
    let mut admitted = 0u64;
    let t_submit = Instant::now();
    for i in 0..submissions {
        let ns = if i < singles { 1 } else { 3 };
        let req = Request::Submit {
            session: format!("s{i:05}"),
            ns,
            nm: 12,
            heuristic: "knapsack".to_string(),
            policy: "least-advanced".to_string(),
            granularity: "fused".to_string(),
            recovery: "checkpoint".to_string(),
            kills: String::new(),
            deadline: 0.0,
        };
        let t = Instant::now();
        let responses = service.handle(req);
        let secs = t.elapsed().as_secs_f64();
        admit.push(secs);
        service.observe_latency(keys::ADMIT_LATENCY_SECS, secs);
        if matches!(responses[0], Response::Admitted { .. }) {
            admitted += 1;
        } else {
            panic!("submission {i} not admitted: {responses:?}");
        }
    }
    let submit_wall = t_submit.elapsed().as_secs_f64();
    let max_concurrent = service
        .metrics()
        .gauge(keys::SESSIONS_ACTIVE)
        .unwrap_or(0.0) as u64;
    println!(
        "  admitted {admitted} sessions in {submit_wall:.2}s \
         ({:.0} submissions/s), {max_concurrent} concurrently active",
        admitted as f64 / submit_wall
    );

    // Phase 2: scheduling decisions. Advance the virtual clock in
    // steps; each step releases finished portions, rebalances the
    // plan and emits completion reports.
    let horizon = 16.0 * 3600.0 * submissions as f64 / presets.len() as f64;
    let mut decide = Vec::with_capacity(advance_steps + 1);
    let mut completed = 0u64;
    for step in 1..=advance_steps {
        let to = horizon * step as f64 / advance_steps as f64;
        let t = Instant::now();
        let responses = service.handle(Request::Advance { to });
        let secs = t.elapsed().as_secs_f64();
        decide.push(secs);
        service.observe_latency(keys::DECISION_LATENCY_SECS, secs);
        completed += responses
            .iter()
            .filter(|r| matches!(r, Response::Completed { .. }))
            .count() as u64;
    }
    let t = Instant::now();
    let responses = service.handle(Request::Drain {});
    let secs = t.elapsed().as_secs_f64();
    decide.push(secs);
    service.observe_latency(keys::DECISION_LATENCY_SECS, secs);
    completed += responses
        .iter()
        .filter(|r| matches!(r, Response::Completed { .. }))
        .count() as u64;
    assert_eq!(completed, admitted, "every admitted session completes");
    println!(
        "  completed {completed} sessions over {} advances; \
         final virtual clock {:.0}h",
        decide.len(),
        service.now() / 3600.0
    );

    // The service's own histogram view of the same numbers (bucketed,
    // so coarser than the exact sample percentiles).
    let snapshot = service.metrics().snapshot();
    let hist_p99 = snapshot
        .histogram(keys::ADMIT_LATENCY_SECS)
        .and_then(|h| h.quantile(0.99))
        .unwrap_or(0.0);

    let record = Value::Object(vec![
        ("fast".into(), Value::Bool(fast)),
        ("clusters".into(), Value::U64(presets.len() as u64)),
        ("capacity".into(), Value::U64(u64::from(capacity))),
        ("submissions".into(), Value::U64(submissions as u64)),
        ("admitted".into(), Value::U64(admitted)),
        ("completed".into(), Value::U64(completed)),
        ("max_concurrent_sessions".into(), Value::U64(max_concurrent)),
        (
            "submissions_per_sec".into(),
            Value::F64(admitted as f64 / submit_wall),
        ),
        ("admit_latency_secs".into(), summary(&mut admit)),
        ("decision_latency_secs".into(), summary(&mut decide)),
        ("admit_p99_histogram_secs".into(), Value::F64(hist_p99)),
        ("virtual_horizon_secs".into(), Value::F64(service.now())),
    ]);
    write_json("BENCH_service", &record);
    println!(
        "  admit p50 {:.0}us / p99 {:.0}us; decision p50 {:.0}us / p99 {:.0}us",
        quantile(&admit, 0.5) * 1e6,
        quantile(&admit, 0.99) * 1e6,
        quantile(&decide, 0.5) * 1e6,
        quantile(&decide, 0.99) * 1e6,
    );
}
