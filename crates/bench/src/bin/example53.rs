//! The Section 4.2 worked example: `R = 53` processors, `NS = 10`
//! scenarios. The basic heuristic picks `G = 7` (7 groups, 49
//! processors, 1 post processor needed, 3 idle); Improvement 1
//! redistributes the 3 idle processors (3×8 + 4×7 + 1 post) for a gain
//! the paper reports as 4.5 % — "58 hours less on the makespan".
//!
//! Run: `cargo run --release -p oa-bench --bin example53 [--jobs N]`

use oa_bench::{pool, trace_path, write_json, write_trace, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;
use oa_sim::prelude::*;
use oa_trace::VecTracer;

fn main() {
    let table = reference_cluster(53).timing;
    let inst = Instance::new(10, 1800, 53);
    let pool = pool();
    let mut rec = SweepRecorder::start("example53");

    println!("== Section 4.2 example: R = 53, NS = 10, NM = 1800 ==");
    let breakdown = best_group_with(inst, &table, &pool).expect("53 processors fit groups");
    println!(
        "basic heuristic: G = {} (nbmax = {}, R2 = {})  [paper: G = 7, 7 groups, 49 procs]",
        breakdown.g, breakdown.nbmax, breakdown.r2
    );

    #[derive(serde::Serialize)]
    struct Row {
        heuristic: &'static str,
        grouping: String,
        makespan_secs: f64,
        makespan_hours: f64,
        gain_pct: f64,
        gain_hours: f64,
    }
    let base_ms = Heuristic::Basic
        .makespan_with(inst, &table, &pool)
        .expect("feasible");
    let mut rows = Vec::new();
    let groupings = rec.phase("heuristics", Heuristic::PAPER.len(), || {
        Heuristic::PAPER.map(|h| h.grouping_with(inst, &table, &pool).expect("feasible"))
    });
    for (h, grouping) in Heuristic::PAPER.into_iter().zip(groupings) {
        let ms = estimate(inst, &table, &grouping)
            .expect("valid grouping")
            .makespan;
        let gain = gain_pct(base_ms, ms);
        println!(
            "{:<26} {:<24} makespan {:>9.1} h   gain {:>5.2}% ({:>5.1} h)",
            h.label(),
            grouping.to_string(),
            ms / 3600.0,
            gain,
            (base_ms - ms) / 3600.0,
        );
        rows.push(Row {
            heuristic: h.label(),
            grouping: grouping.to_string(),
            makespan_secs: ms,
            makespan_hours: ms / 3600.0,
            gain_pct: gain,
            gain_hours: (base_ms - ms) / 3600.0,
        });
    }
    println!("\npaper: Improvement 1 gains 4.5% — 58 hours — with grouping 3×8 + 4×7 + 1 post");
    write_json("example53", &rows);
    rec.finish();

    // `--trace PATH` (or OA_TRACE): record the Improvement-1 campaign
    // as a structured event stream; replay it with `oa trace export
    // --file PATH` or `oa trace summarize --file PATH`.
    if let Some(path) = trace_path() {
        let grouping = Heuristic::RedistributeIdle
            .grouping(inst, &table)
            .expect("feasible");
        let mut sink = VecTracer::new();
        execute_traced(inst, &table, &grouping, ExecConfig::default(), &mut sink)
            .expect("valid grouping");
        write_trace(&path, &sink.into_events());
    }
}
