//! Figure 9: the six execution steps of the grid submission protocol,
//! observed live through the DIET-like middleware deployment.
//!
//! Run: `cargo run --release -p oa-bench --bin fig9_protocol [--jobs N]`

use oa_bench::{write_json, SweepRecorder};
use oa_middleware::prelude::*;
use oa_platform::prelude::*;
use oa_sched::prelude::*;

fn main() {
    let (ns, nm) = (10, 60);
    let grid = benchmark_grid(40);
    println!(
        "== Figure 9: execution steps over {} clusters ==",
        grid.len()
    );
    let mut rec = SweepRecorder::start("fig9_protocol");
    let deployment = Deployment::new(&grid, Heuristic::Knapsack);
    let report = rec.phase("protocol", grid.len(), || {
        deployment.client().submit(ns, nm).expect("grid is usable")
    });

    for event in &report.trace {
        let line = match event {
            ProtocolEvent::RequestReceived { request, ns, nm } => {
                format!("(1) client request #{request}: NS = {ns}, NM = {nm}")
            }
            ProtocolEvent::PerfQueried { cluster } => {
                format!(
                    "(2) {} computes its performance vector (knapsack model)",
                    name(&grid, *cluster)
                )
            }
            ProtocolEvent::PerfReceived { cluster } => {
                format!("(3) {} returned its vector", name(&grid, *cluster))
            }
            ProtocolEvent::PerfMissing { cluster } => {
                format!("(3) {} did not answer - excluded", name(&grid, *cluster))
            }
            ProtocolEvent::RepartitionComputed { nb_dags } => {
                format!("(4) client computed the repartition: {nb_dags:?}")
            }
            ProtocolEvent::ExecSent { cluster, scenarios } => {
                format!(
                    "(5) {} receives {scenarios} scenario(s)",
                    name(&grid, *cluster)
                )
            }
            ProtocolEvent::ReportReceived { cluster, makespan } => {
                format!(
                    "(6) {} finished in {:.1} h (virtual)",
                    name(&grid, *cluster),
                    makespan / 3600.0
                )
            }
        };
        println!("{line}");
    }
    println!(
        "\ngrid makespan: {:.1} h (virtual time)",
        report.makespan / 3600.0
    );
    for r in &report.reports {
        println!(
            "  {:<12} scenarios {:?} grouping {}",
            name(&grid, r.cluster),
            r.scenarios,
            r.grouping
        );
    }
    write_json("fig9_protocol", &report);
    rec.finish();
}

fn name(grid: &Grid, id: oa_platform::cluster::ClusterId) -> String {
    grid.cluster(id).name.clone()
}
