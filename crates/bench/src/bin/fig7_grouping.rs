//! Figure 7: "Optimal groupings for 10 scenario simulations" — the
//! basic heuristic's chosen group size `G` as the number of resources
//! grows from 11 to 120.
//!
//! Run: `cargo run --release -p oa-bench --bin fig7_grouping [--jobs N]`

use oa_bench::{pool, row, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;

fn main() {
    let table = reference_cluster(11).timing;
    let (ns, nm) = (10u32, 1800u32);
    println!("== Figure 7: optimal grouping G vs resources (NS = {ns}, NM = {nm}) ==");
    let widths = [6usize, 4, 7, 4, 7, 16];
    println!(
        "{}",
        row(
            &[
                "R".into(),
                "G".into(),
                "nbmax".into(),
                "R2".into(),
                "nbused".into(),
                "makespan(h)".into()
            ],
            &widths
        )
    );

    #[derive(serde::Serialize)]
    struct Point {
        r: u32,
        g: u32,
        nbmax: u32,
        r2: u32,
        makespan_secs: f64,
    }
    let rs: Vec<u32> = (11..=120).collect();
    let pool = pool();
    let mut rec = SweepRecorder::start("fig7_grouping");
    let picks = rec.phase("grouping_sweep", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let b = best_group(inst, &table).expect("R ≥ 11 fits a group");
            // The chosen breakdown must reconstruct into a grouping that
            // passes the scheduling-layer rules before it enters the plot.
            let grouping = Grouping::uniform(b.g, b.nbmax, b.r2);
            let report = oa_analyze::Report::from_diagnostics(
                oa_analyze::scheduling::check_grouping(inst, &table, &grouping),
            );
            (b, report)
        })
    });

    let mut series = Vec::new();
    for (&r, (b, report)) in rs.iter().zip(picks) {
        oa_bench::gate_on_analysis(&format!("fig7 R={r}"), &report);
        println!(
            "{}",
            row(
                &[
                    r.to_string(),
                    b.g.to_string(),
                    b.nbmax.to_string(),
                    b.r2.to_string(),
                    b.nbused.to_string(),
                    format!("{:.1}", b.makespan / 3600.0),
                ],
                &widths
            )
        );
        series.push(Point {
            r,
            g: b.g,
            nbmax: b.nbmax,
            r2: b.r2,
            makespan_secs: b.makespan,
        });
    }

    // Shape summary: the paper's plot oscillates between 4 and 11 and
    // settles at 11 once every scenario can have its own full group.
    let gs: Vec<u32> = series.iter().map(|p| p.g).collect();
    let distinct: std::collections::BTreeSet<u32> = gs.iter().copied().collect();
    println!("\ndistinct groupings used: {distinct:?}");
    println!(
        "G at R=53: {} (paper: 7); G for R ≥ 110: {:?} (paper: 11)",
        series.iter().find(|p| p.r == 53).expect("in range").g,
        series
            .iter()
            .filter(|p| p.r >= 110)
            .map(|p| p.g)
            .collect::<std::collections::BTreeSet<_>>(),
    );
    write_json("fig7_grouping", &series);
    rec.finish();
}
