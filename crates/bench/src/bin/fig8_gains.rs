//! Figure 8: gains of the three improvements over the basic heuristic
//! on a single cluster, averaged over the five benchmark clusters
//! ("These results come from 5 simulations done on clusters with
//! different computing powers. The figure shows the average of the
//! gains, and also the standard deviation.").
//!
//! Run: `cargo run --release -p oa-bench --bin fig8_gains [--fast] [--jobs N]`

use oa_bench::{fast_mode, jobs, par_sweep, row, stats, write_json, Stats, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;

#[derive(serde::Serialize)]
struct Point {
    r: u32,
    gain1: Stats,
    gain2: Stats,
    gain3: Stats,
}

fn main() {
    let (ns, nm) = (10u32, if fast_mode() { 120 } else { 1800 });
    let grid = benchmark_grid(DEFAULT_RESOURCES);
    let tables: Vec<TimingTable> = grid.clusters().iter().map(|c| c.timing.clone()).collect();
    let rs: Vec<u32> = (11..=120).collect();

    let mut rec = SweepRecorder::start("fig8_gains");
    println!(
        "== Figure 8: improvement gains vs basic (NS = {ns}, NM = {nm}, 5 clusters, {} jobs) ==",
        jobs()
    );
    let points = rs.len();
    let series: Vec<Point> = rec.phase("gain_sweep", points, || {
        par_sweep(rs, jobs(), |&r| {
            let inst = Instance::new(ns, nm, r);
            let mut gains = [Vec::new(), Vec::new(), Vec::new()];
            for t in &tables {
                let base = Heuristic::Basic.makespan(inst, t).expect("R ≥ 11");
                for (k, h) in [
                    Heuristic::RedistributeIdle,
                    Heuristic::NoPostReservation,
                    Heuristic::Knapsack,
                ]
                .into_iter()
                .enumerate()
                {
                    // Every grouping entering the gain average must pass
                    // the scheduling-layer rules first.
                    let grouping = h.grouping(inst, t).expect("R ≥ 11");
                    let report = oa_analyze::Report::from_diagnostics(
                        oa_analyze::scheduling::check_grouping(inst, t, &grouping),
                    );
                    assert!(
                        !report.has_errors(),
                        "fig8 R={r} {}: {}",
                        h.label(),
                        report.render_text()
                    );
                    gains[k].push(gain_pct(base, h.makespan(inst, t).expect("R ≥ 11")));
                }
            }
            Point {
                r,
                gain1: stats(&gains[0]),
                gain2: stats(&gains[1]),
                gain3: stats(&gains[2]),
            }
        })
    });

    let widths = [5usize, 8, 6, 8, 6, 8, 6];
    println!(
        "{}",
        row(
            &[
                "R".into(),
                "gain1%".into(),
                "±sd".into(),
                "gain2%".into(),
                "±sd".into(),
                "gain3%".into(),
                "±sd".into(),
            ],
            &widths
        )
    );
    for p in &series {
        println!(
            "{}",
            row(
                &[
                    p.r.to_string(),
                    format!("{:.2}", p.gain1.mean),
                    format!("{:.2}", p.gain1.stddev),
                    format!("{:.2}", p.gain2.mean),
                    format!("{:.2}", p.gain2.stddev),
                    format!("{:.2}", p.gain3.mean),
                    format!("{:.2}", p.gain3.stddev),
                ],
                &widths
            )
        );
    }

    // Paper-shape checks.
    let best3 = series
        .iter()
        .map(|p| p.gain3.mean)
        .fold(f64::NEG_INFINITY, f64::max);
    let low_r: Vec<&Point> = series.iter().filter(|p| p.r <= 60).collect();
    let high_r: Vec<&Point> = series.iter().filter(|p| p.r >= 100).collect();
    let mean3_low = low_r.iter().map(|p| p.gain3.mean).sum::<f64>() / low_r.len() as f64;
    let mean3_high = high_r.iter().map(|p| p.gain3.mean).sum::<f64>() / high_r.len() as f64;
    println!("\npeak knapsack gain: {best3:.1}% (paper: up to ~12%, best at low R)");
    println!(
        "knapsack mean gain  R ≤ 60: {mean3_low:.1}%   R ≥ 100: {mean3_high:.1}%  (paper: gains shrink with resources)"
    );
    write_json("fig8_gains", &series);
    rec.finish();
}
