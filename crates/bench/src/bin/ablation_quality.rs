//! Quality ablations for the design choices DESIGN.md calls out:
//!
//! * scenario-selection policy (least-advanced vs round-robin vs
//!   most-advanced) — makespan and fairness;
//! * exact knapsack DP vs greedy knapsack inside Improvement 3;
//! * analytic `G` selection (Equations 1–5) vs exhaustive selection by
//!   the event estimator;
//! * dedicated post processors vs post-at-end for the basic grouping.
//!
//! Run: `cargo run --release -p oa-bench --bin ablation_quality [--fast] [--jobs N]`

use oa_bench::{fast_mode, pool, stats, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::analytic;
use oa_sched::prelude::*;
use oa_sim::prelude::*;
use oa_workflow::moldable::MoldableSpec;

fn main() {
    let nm = if fast_mode() { 120 } else { 1800 };
    let ns = 10u32;
    let table = reference_cluster(120).timing;
    let rs: Vec<u32> = (11..=120).step_by(3).collect();
    let pool = pool();
    let mut rec = SweepRecorder::start("ablation_quality");

    // --- Policy ablation -------------------------------------------------
    println!("== Ablation 1: scenario policy (knapsack grouping, R sweep) ==");
    let policy_rows = rec.phase("policy", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let grouping = Heuristic::Knapsack
                .grouping(inst, &table)
                .expect("feasible");
            let run = |policy| {
                let s = execute(inst, &table, &grouping, ExecConfig { policy }).expect("valid");
                let m = metrics(&s);
                (s.makespan, m.fairness_stddev)
            };
            let (fair_ms, fair_sd) = run(ScenarioPolicy::LeastAdvanced);
            let (rr_ms, _) = run(ScenarioPolicy::RoundRobin);
            let (most_ms, most_sd) = run(ScenarioPolicy::MostAdvanced);
            (
                gain_pct(rr_ms, fair_ms),
                gain_pct(most_ms, fair_ms),
                (most_sd > 0.0).then(|| fair_sd / most_sd),
            )
        })
    });
    let deltas_rr: Vec<f64> = policy_rows.iter().map(|&(d, _, _)| d).collect();
    let deltas_most: Vec<f64> = policy_rows.iter().map(|&(_, d, _)| d).collect();
    let fairness_ratio: Vec<f64> = policy_rows.iter().filter_map(|&(_, _, f)| f).collect();
    println!(
        "least-advanced vs round-robin: mean gain {:.2}% (sd {:.2})",
        stats(&deltas_rr).mean,
        stats(&deltas_rr).stddev
    );
    println!(
        "least-advanced vs most-advanced: mean gain {:.2}% (sd {:.2})",
        stats(&deltas_most).mean,
        stats(&deltas_most).stddev
    );
    if !fairness_ratio.is_empty() {
        println!(
            "fairness stddev ratio (least/most): {:.2} (lower = fairer)",
            stats(&fairness_ratio).mean
        );
    }

    // --- Exact vs greedy knapsack ---------------------------------------
    println!("\n== Ablation 2: exact DP vs greedy knapsack ==");
    let exact_gain = rec.phase("exact_vs_greedy", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let e = Heuristic::Knapsack
                .makespan(inst, &table)
                .expect("feasible");
            let g = Heuristic::KnapsackGreedy
                .makespan(inst, &table)
                .expect("feasible");
            gain_pct(g, e)
        })
    });
    let s = stats(&exact_gain);
    println!(
        "exact vs greedy: mean gain {:.2}%  max {:.2}%  min {:.2}%",
        s.mean, s.max, s.min
    );

    // --- Analytic G selection vs estimator-exhaustive selection ----------
    println!("\n== Ablation 3: analytic Eq. 1-5 selection vs estimator sweep ==");
    let selection_rows = rec.phase("analytic_selection", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let analytic_best = analytic::best_group(inst, &table)?;
            // Exhaustive: evaluate every uniform grouping with the estimator.
            let mut best_sim = f64::INFINITY;
            let mut best_g = 0;
            for g in MoldableSpec::pcr().allocations() {
                let nbmax = inst.nbmax(g);
                if nbmax == 0 {
                    continue;
                }
                let grouping = Grouping::uniform(g, nbmax, inst.r - nbmax * g);
                let ms = estimate(inst, &table, &grouping).expect("valid").makespan;
                if ms < best_sim {
                    best_sim = ms;
                    best_g = g;
                }
            }
            let chosen = Grouping::uniform(
                analytic_best.g,
                analytic_best.nbmax,
                inst.r - analytic_best.nbmax * analytic_best.g,
            );
            let chosen_ms = estimate(inst, &table, &chosen).expect("valid").makespan;
            Some((
                analytic_best.g != best_g,
                gain_pct(chosen_ms, best_sim).max(0.0),
            ))
        })
    });
    let disagreements = selection_rows
        .iter()
        .filter(|row| matches!(row, Some((true, _))))
        .count();
    let selection_regret: Vec<f64> = selection_rows
        .iter()
        .filter_map(|row| row.map(|(_, regret)| regret))
        .collect();
    let s = stats(&selection_regret);
    println!(
        "G disagreements: {disagreements}/{}; regret of analytic choice: mean {:.3}% max {:.3}%",
        rs.len(),
        s.mean,
        s.max
    );

    // --- Dedicated posts vs post-at-end ----------------------------------
    println!("\n== Ablation 4: dedicated post processors vs post-at-end ==");
    let post_mode_gain: Vec<f64> = rec
        .phase("post_mode", rs.len(), || {
            pool.par_map(&rs, |&r| {
                let inst = Instance::new(ns, nm, r);
                let b = analytic::best_group(inst, &table)?;
                let dedicated = Grouping::uniform(b.g, b.nbmax, inst.r - b.nbmax * b.g);
                let at_end = Grouping::uniform(b.g, b.nbmax, 0);
                let d = estimate(inst, &table, &dedicated).expect("valid").makespan;
                let e = estimate(inst, &table, &at_end).expect("valid").makespan;
                Some(gain_pct(e, d))
            })
        })
        .into_iter()
        .flatten()
        .collect();
    let s = stats(&post_mode_gain);
    println!(
        "dedicated vs at-end (same groups): mean gain {:.2}%  min {:.2}%  max {:.2}%",
        s.mean, s.min, s.max
    );

    // --- Balanced vs raw knapsack ----------------------------------------
    println!("\n== Ablation 5: balanced refinement vs raw knapsack ==");
    let balanced_gain = rec.phase("balanced", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let k = Heuristic::Knapsack
                .makespan(inst, &table)
                .expect("feasible");
            let b = Heuristic::Balanced
                .makespan(inst, &table)
                .expect("feasible");
            gain_pct(k, b)
        })
    });
    let s = stats(&balanced_gain);
    println!(
        "balanced vs knapsack (NS = {ns}): mean gain {:.2}%  max {:.2}%  min {:.2}%",
        s.mean, s.max, s.min
    );
    let small_ns_gain = rec.phase("balanced_ns2", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(2, nm, r);
            let k = Heuristic::Knapsack
                .makespan(inst, &table)
                .expect("feasible");
            let b = Heuristic::Balanced
                .makespan(inst, &table)
                .expect("feasible");
            gain_pct(k, b)
        })
    });
    let s2 = stats(&small_ns_gain);
    println!(
        "balanced vs knapsack (NS = 2, the pitfall regime): mean gain {:.2}%  max {:.2}%",
        s2.mean, s2.max
    );

    #[derive(serde::Serialize)]
    struct Dump {
        policy_gain_vs_round_robin: Vec<f64>,
        policy_gain_vs_most_advanced: Vec<f64>,
        exact_vs_greedy_gain: Vec<f64>,
        analytic_selection_regret: Vec<f64>,
        dedicated_post_gain: Vec<f64>,
        balanced_vs_knapsack_gain: Vec<f64>,
        balanced_vs_knapsack_gain_ns2: Vec<f64>,
    }
    write_json(
        "ablation_quality",
        &Dump {
            policy_gain_vs_round_robin: deltas_rr,
            policy_gain_vs_most_advanced: deltas_most,
            exact_vs_greedy_gain: exact_gain,
            analytic_selection_regret: selection_regret,
            dedicated_post_gain: post_mode_gain,
            balanced_vs_knapsack_gain: balanced_gain,
            balanced_vs_knapsack_gain_ns2: small_ns_gain,
        },
    );
    rec.finish();
}
