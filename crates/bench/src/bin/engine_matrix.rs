//! The engine knob matrix: every configuration axis of the generic
//! campaign engine (`oa_sim::engine::simulate_campaign`) crossed on
//! the reference cluster — scenario policy × task granularity ×
//! failure scenario — now that all four legacy executors are thin
//! configurations of one loop. This is the combination coverage the
//! pre-refactor executors could not express: unfused runs under
//! round-robin/most-advanced policies, and fault injection at unfused
//! granularity.
//!
//! Fault plans are pre-flighted through the OA018 lint
//! (`oa_analyze::scheduling::check_campaign`) before simulation, the
//! same gate `oa sim` applies.
//!
//! Run: `cargo run --release -p oa-bench --bin engine_matrix [--fast] [--jobs N]`

use oa_bench::{fast_mode, pool, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};
use oa_sched::prelude::*;
use oa_sim::prelude::*;
use oa_trace::NullTracer;

const POLICIES: [ScenarioPolicy; 3] = [
    ScenarioPolicy::LeastAdvanced,
    ScenarioPolicy::RoundRobin,
    ScenarioPolicy::MostAdvanced,
];
const GRANULARITIES: [Granularity; 2] = [Granularity::Fused, Granularity::Unfused];

/// One cell of the matrix: a full campaign simulated under one knob
/// combination.
#[derive(Debug, Clone, serde::Serialize)]
struct Cell {
    r: u32,
    policy: &'static str,
    granularity: &'static str,
    scenario: &'static str,
    makespan: f64,
    months_lost: u32,
    lost_proc_secs: f64,
}

fn run_cell(
    inst: Instance,
    table: &oa_platform::timing::TimingTable,
    grouping: &Grouping,
    config: &CampaignConfig,
    plan: &FaultPlan,
    scenario: &'static str,
) -> Cell {
    let lint = oa_analyze::scheduling::check_campaign(config, plan, grouping);
    assert!(
        lint.iter()
            .all(|d| d.severity != oa_analyze::Severity::Error),
        "{scenario}: OA018 rejected the fault plan"
    );
    let out = simulate_campaign(inst, table, grouping, config, plan, &mut NullTracer)
        .expect("valid grouping");
    let run = out.completed().expect("matrix plans never strand");
    Cell {
        r: inst.r,
        policy: config.policy.label(),
        granularity: config.granularity.label(),
        scenario,
        makespan: run.makespan,
        months_lost: run.months_lost,
        lost_proc_secs: run.lost_proc_secs,
    }
}

fn main() {
    let nm = if fast_mode() { 12 } else { 120 };
    let ns = 10u32;
    let rs: Vec<u32> = if fast_mode() {
        vec![26, 53]
    } else {
        vec![11, 26, 53, 80, 120]
    };
    let pool = pool();
    let mut rec = SweepRecorder::start("engine_matrix");

    println!("== Engine matrix: policy x granularity x failure scenario ==");
    println!("instance: NS = {ns}, NM = {nm}; R in {rs:?}; knapsack groupings\n");

    let rows: Vec<Cell> = rec.phase("matrix", rs.len() * 18, || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let table = reference_cluster(r).timing;
            let grouping = Heuristic::Knapsack
                .grouping(inst, &table)
                .expect("feasible");
            let mut cells = Vec::new();
            for policy in POLICIES {
                for granularity in GRANULARITIES {
                    let config = CampaignConfig {
                        policy,
                        granularity,
                        recovery: Recovery::MonthlyCheckpoint,
                    };
                    let clean = run_cell(
                        inst,
                        &table,
                        &grouping,
                        &config,
                        &FaultPlan::none(),
                        "clean",
                    );
                    // Kill the first group a third of the way through
                    // the clean run of this same cell — deterministic,
                    // and always inside the campaign.
                    let plan = FaultPlan::none().kill(0, clean.makespan / 3.0);
                    let checkpoint =
                        run_cell(inst, &table, &grouping, &config, &plan, "kill-checkpoint");
                    let restart_config = CampaignConfig {
                        recovery: Recovery::RestartScenario,
                        ..config
                    };
                    let restart = run_cell(
                        inst,
                        &table,
                        &grouping,
                        &restart_config,
                        &plan,
                        "kill-restart",
                    );
                    cells.extend([clean, checkpoint, restart]);
                }
            }
            cells
        })
        .into_iter()
        .flatten()
        .collect()
    });

    // Per-R console summary: the clean-run policy spread at each
    // granularity, then the failure penalties.
    for &r in &rs {
        println!("-- R = {r} --");
        for granularity in GRANULARITIES {
            let find = |policy: ScenarioPolicy, scenario: &str| {
                rows.iter()
                    .find(|c| {
                        c.r == r
                            && c.policy == policy.label()
                            && c.granularity == granularity.label()
                            && c.scenario == scenario
                    })
                    .expect("matrix is complete")
            };
            let fair = find(ScenarioPolicy::LeastAdvanced, "clean");
            let rr = find(ScenarioPolicy::RoundRobin, "clean");
            let most = find(ScenarioPolicy::MostAdvanced, "clean");
            let ckpt = find(ScenarioPolicy::LeastAdvanced, "kill-checkpoint");
            let rst = find(ScenarioPolicy::LeastAdvanced, "kill-restart");
            // Positive percentages: how much the least-advanced clean
            // run gains over that variant (gain_pct baseline = variant).
            println!(
                "  {:>7}: clean {:>9.0} s | gain vs round-robin {:+6.2}% | vs most-advanced \
                 {:+6.2}% | vs kill+checkpoint {:+6.2}% ({} mo lost) | vs kill+restart {:+6.2}%",
                granularity.label(),
                fair.makespan,
                gain_pct(rr.makespan, fair.makespan),
                gain_pct(most.makespan, fair.makespan),
                gain_pct(ckpt.makespan, fair.makespan),
                ckpt.months_lost,
                gain_pct(rst.makespan, fair.makespan),
            );
        }
    }

    #[derive(serde::Serialize)]
    struct Dump {
        ns: u32,
        nm: u32,
        rows: Vec<Cell>,
    }
    if !fast_mode() {
        write_json("engine_matrix", &Dump { ns, nm, rows });
    }
    rec.finish();
}
