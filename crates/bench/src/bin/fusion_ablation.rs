//! Ablation of the paper's Section 4.1 task fusion: does scheduling
//! the fused two-task months lose anything against the original
//! seven-task DAG of Figure 1?
//!
//! Run: `cargo run --release -p oa-bench --bin fusion_ablation [--fast] [--jobs N]`

use oa_bench::{fast_mode, pool, row, stats, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;
use oa_sim::prelude::*;

fn main() {
    let nm = if fast_mode() { 60 } else { 600 };
    let ns = 10u32;
    let table = reference_cluster(120).timing;

    println!("== Fusion ablation (NS = {ns}, NM = {nm}) ==");
    println!("relative makespan difference, unfused 7-task DAG vs fused model\n");
    let widths = [5usize, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "R".into(),
                "fused(h)".into(),
                "unfused(h)".into(),
                "delta(%)".into()
            ],
            &widths
        )
    );

    #[derive(serde::Serialize)]
    struct Point {
        r: u32,
        fused_secs: f64,
        unfused_secs: f64,
        delta_pct: f64,
    }
    let rs: Vec<u32> = (11..=120).step_by(3).collect();
    let pool = pool();
    let mut rec = SweepRecorder::start("fusion_ablation");
    let series: Vec<Point> = rec.phase("fusion_sweep", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let g = Heuristic::Knapsack
                .grouping(inst, &table)
                .expect("feasible");
            let fused = estimate(inst, &table, &g).expect("valid").makespan;
            let unfused = estimate_unfused(inst, &table, &g).expect("valid").makespan;
            Point {
                r,
                fused_secs: fused,
                unfused_secs: unfused,
                delta_pct: (unfused - fused) / fused * 100.0,
            }
        })
    });
    for p in &series {
        println!(
            "{}",
            row(
                &[
                    p.r.to_string(),
                    format!("{:.2}", p.fused_secs / 3600.0),
                    format!("{:.2}", p.unfused_secs / 3600.0),
                    format!("{:+.4}", p.delta_pct),
                ],
                &widths
            )
        );
    }

    let deltas: Vec<f64> = series.iter().map(|p| p.delta_pct.abs()).collect();
    let s = stats(&deltas);
    println!(
        "\n|delta|: mean {:.4}%  max {:.4}% — the fusion decision of Section 4.1 is safe",
        s.mean, s.max
    );
    write_json("fusion_ablation", &series);
    rec.finish();
}
