//! Robustness to benchmark noise — beyond the paper, which assumes the
//! timing tables are exact.
//!
//! The pipeline the paper describes (benchmark each cluster, feed
//! `T[G]` into the heuristics) is only as good as the measurements.
//! Here we perturb the benchmark campaign with increasing noise, let
//! the heuristics *plan* on the noisy table, *evaluate* the chosen
//! grouping on the true table, and report the regret against planning
//! with perfect information.
//!
//! Run: `cargo run --release -p oa-bench --bin robustness [--fast] [--jobs N]`

use oa_bench::{fast_mode, pool, row, stats, write_json, SweepRecorder};
use oa_platform::benchmarks::{run_campaign, BenchmarkConfig};
use oa_platform::prelude::*;
use oa_sched::prelude::*;

#[derive(serde::Serialize)]
struct Point {
    noise_pct: f64,
    repetitions: usize,
    mean_regret_pct: f64,
    max_regret_pct: f64,
    decision_changes: u32,
    evaluations: u32,
}

fn main() {
    let truth_model = PcrModel::reference();
    let truth = truth_model.table(1.0).expect("valid");
    let nm = if fast_mode() { 60 } else { 240 };
    let rs: Vec<u32> = (11..=120).step_by(7).collect();

    println!("== Planning on noisy benchmarks, evaluated on the truth (NS = 10, NM = {nm}) ==\n");
    let widths = [9usize, 6, 13, 13, 10];
    println!(
        "{}",
        row(
            &[
                "noise%".into(),
                "reps".into(),
                "mean regret%".into(),
                "max regret%".into(),
                "flips".into(),
            ],
            &widths
        )
    );

    let pool = pool();
    let mut rec = SweepRecorder::start("robustness");
    let configs = [
        (0.0f64, 3),
        (0.01, 3),
        (0.02, 3),
        (0.05, 3),
        (0.05, 15),
        (0.10, 3),
        (0.10, 15),
        (0.20, 3),
    ];
    let noise_rows = rec.phase("noise_sweep", configs.len() * rs.len(), || {
        configs.map(|(noise, repetitions)| {
            pool.par_map_indices(rs.len(), |i| {
                let r = rs[i];
                let inst = Instance::new(10, nm, r);
                // Fresh measurement per (noise, R) — seeds differ.
                let cfg = BenchmarkConfig {
                    repetitions,
                    noise,
                    seed: 1000 + i as u64,
                };
                let measured = run_campaign(&truth_model, 1.0, cfg)
                    .expect("campaign ok")
                    .table;
                let noisy_plan = Heuristic::Knapsack
                    .grouping(inst, &measured)
                    .expect("feasible");
                let true_plan = Heuristic::Knapsack
                    .grouping(inst, &truth)
                    .expect("feasible");
                let ms_noisy = estimate(inst, &truth, &noisy_plan).expect("valid").makespan;
                let ms_true = estimate(inst, &truth, &true_plan).expect("valid").makespan;
                (
                    gain_pct(ms_noisy, ms_true).max(0.0),
                    noisy_plan != true_plan,
                )
            })
        })
    });

    let mut series = Vec::new();
    for ((noise, repetitions), points) in configs.into_iter().zip(noise_rows) {
        let regrets: Vec<f64> = points.iter().map(|&(regret, _)| regret).collect();
        let flips = points.iter().filter(|&&(_, flip)| flip).count() as u32;
        let evaluations = points.len() as u32;
        let s = stats(&regrets);
        println!(
            "{}",
            row(
                &[
                    format!("{:.0}", noise * 100.0),
                    repetitions.to_string(),
                    format!("{:.3}", s.mean),
                    format!("{:.3}", s.max),
                    format!("{flips}/{evaluations}"),
                ],
                &widths
            )
        );
        series.push(Point {
            noise_pct: noise * 100.0,
            repetitions,
            mean_regret_pct: s.mean,
            max_regret_pct: s.max,
            decision_changes: flips,
            evaluations,
        });
    }

    println!(
        "\nreading: the grouping decision is discrete — noise below ~1% never\n\
         flips it, but past that a flipped decision is NOT always a near-tie:\n\
         a wrong G can cost 10-20% at unlucky resource counts. More benchmark\n\
         repetitions buy the accuracy back (compare the reps columns) — the\n\
         paper's careful per-cluster benchmarking is load-bearing."
    );
    write_json("robustness", &series);
    rec.finish();
}
