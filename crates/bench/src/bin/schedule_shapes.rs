//! Figures 3–6: the schedule shapes behind the analytic model,
//! rendered as ASCII Gantt charts.
//!
//! * Figure 3 — `R2 = 0`: post-processing packed after the mains;
//! * Figure 4 — dedicated post processors *overpassed* by the post
//!   load (`TP` large relative to `TG`);
//! * Figures 5/6 — overpassing with an incomplete final set: trailing
//!   posts spill onto the processors freed by the finished groups.
//!
//! Run: `cargo run --release -p oa-bench --bin schedule_shapes [--jobs N] [--policy P]`

use oa_bench::SweepRecorder;
use oa_platform::timing::TimingTable;
use oa_sched::prelude::*;
use oa_sim::prelude::*;

fn show(title: &str, inst: Instance, table: &TimingTable, grouping: &Grouping) {
    println!("== {title} ==");
    println!(
        "instance: NS = {}, NM = {}, R = {}; grouping: {grouping}",
        inst.ns, inst.nm, inst.r
    );
    let config = ExecConfig {
        policy: oa_bench::policy_flag(),
    };
    let schedule = execute(inst, table, grouping, config).expect("valid grouping");
    // Full schedule-layer analysis instead of the bare fail-fast
    // validate: advisory diagnostics (idle gaps, post starvation) are
    // part of what these figures illustrate, so print them too.
    oa_bench::gate_on_analysis(title, &schedule.analyze());
    print!(
        "{}",
        render(
            &schedule,
            GanttOptions {
                width: 68,
                by_group: true
            }
        )
    );
    let m = metrics(&schedule);
    println!(
        "utilization {:.0}%   fairness(stddev of scenario finishes) {:.0} s\n",
        m.utilization * 100.0,
        m.fairness_stddev
    );
}

fn main() {
    let mut rec = SweepRecorder::start("schedule_shapes");
    let t = rec.phase("shapes", 4, render_shapes);
    // `--trace PATH` (or OA_TRACE): dump the R = 53 example above as a
    // structured event trace for `oa trace export`/`summarize`.
    if let Some(path) = oa_bench::trace_path() {
        let mut sink = oa_trace::VecTracer::new();
        execute_traced(
            Instance::new(10, 6, 53),
            &t,
            &Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1),
            ExecConfig {
                policy: oa_bench::policy_flag(),
            },
            &mut sink,
        )
        .expect("valid grouping");
        oa_bench::write_trace(&path, &sink.into_events());
    }
    rec.finish();
}

/// Renders Figures 3–6 and the R = 53 example; returns the R = 53
/// timing table for the optional trace dump.
fn render_shapes() -> TimingTable {
    // Figure 3: no dedicated post processors — hatched mains, then the
    // post wave at the end.
    let t = TimingTable::new([100.0; 8], 18.0).unwrap();
    show(
        "Figure 3: R2 = 0, posts after the mains",
        Instance::new(4, 3, 16),
        &t,
        &Grouping::uniform(4, 4, 0),
    );

    // Figure 4: dedicated post processors that cannot keep up — posts
    // overpass each set of mains.
    let t = TimingTable::new([100.0; 8], 60.0).unwrap();
    show(
        "Figure 4: posts overpassing on dedicated processors",
        Instance::new(5, 4, 22),
        &t,
        &Grouping::uniform(4, 5, 2),
    );

    // Figures 5–6: incomplete final set; the overpassed posts finish on
    // the Rleft processors freed by the disbanded groups.
    let t = TimingTable::new([100.0; 8], 60.0).unwrap();
    show(
        "Figures 5-6: incomplete last set, trailing posts on freed groups",
        Instance::new(5, 5, 17),
        &t,
        &Grouping::uniform(4, 4, 1),
    );

    // Bonus: the paper's R = 53 example under Improvement 1 (3×8 + 4×7).
    let t = oa_platform::presets::reference_cluster(53).timing;
    show(
        "R = 53 example, Improvement 1 grouping (first 6 months)",
        Instance::new(10, 6, 53),
        &t,
        &Grouping::new(vec![8, 8, 8, 7, 7, 7, 7], 1),
    );
    t
}
