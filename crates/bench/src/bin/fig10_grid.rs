//! Figure 10: gains on the grid — 2 to 5 clusters, 11 to 99 resources
//! each, scenarios spread with Algorithm 1, per-cluster scheduling by
//! each heuristic, gains measured against the basic heuristic.
//!
//! The X axis follows the paper's encoding: `n.rr` means `n` clusters
//! of `rr` resources each (e.g. `2.25` = two clusters × 25 processors).
//!
//! Run: `cargo run --release -p oa-bench --bin fig10_grid [--fast] [--jobs N]`

use oa_bench::{fast_mode, jobs, par_sweep, row, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;
use oa_sim::prelude::*;

#[derive(serde::Serialize)]
struct Point {
    clusters: usize,
    resources: u32,
    /// Paper-style x coordinate: clusters + resources/100.
    x: f64,
    basic_makespan: f64,
    gain1: f64,
    gain2: f64,
    gain3: f64,
}

fn main() {
    let ns = 10u32;
    let (nm, step) = if fast_mode() {
        (120u32, 8)
    } else {
        (1800u32, 4)
    };
    let base_grid = benchmark_grid(DEFAULT_RESOURCES);

    let mut configs: Vec<(usize, u32)> = Vec::new();
    for n in 2..=5usize {
        for r in (11..=99u32).step_by(step) {
            configs.push((n, r));
        }
    }

    let mut rec = SweepRecorder::start("fig10_grid");
    println!(
        "== Figure 10: grid gains (NS = {ns}, NM = {nm}, {} jobs) ==",
        jobs()
    );
    let points = configs.len();
    let series: Vec<Point> = rec.phase("grid_sweep", points, || {
        par_sweep(configs, jobs(), |&(n, r)| {
            let grid = base_grid.take(n).with_uniform_resources(r);
            let run = |h: Heuristic| -> f64 {
                run_grid(&grid, h, ns, nm, ExecConfig::default())
                    .expect("R ≥ 11 fits groups")
                    .makespan
            };
            let basic = run(Heuristic::Basic);
            Point {
                clusters: n,
                resources: r,
                x: n as f64 + r as f64 / 100.0,
                basic_makespan: basic,
                gain1: gain_pct(basic, run(Heuristic::RedistributeIdle)),
                gain2: gain_pct(basic, run(Heuristic::NoPostReservation)),
                gain3: gain_pct(basic, run(Heuristic::Knapsack)),
            }
        })
    });

    let widths = [7usize, 10, 16, 8, 8, 8];
    println!(
        "{}",
        row(
            &[
                "x".into(),
                "(n, R)".into(),
                "basic(h)".into(),
                "gain1%".into(),
                "gain2%".into(),
                "gain3%".into(),
            ],
            &widths
        )
    );
    for p in &series {
        println!(
            "{}",
            row(
                &[
                    format!("{:.2}", p.x),
                    format!("{}x{}", p.clusters, p.resources),
                    format!("{:.1}", p.basic_makespan / 3600.0),
                    format!("{:.2}", p.gain1),
                    format!("{:.2}", p.gain2),
                    format!("{:.2}", p.gain3),
                ],
                &widths
            )
        );
    }

    // Paper-shape checks: best gains ~12 %, most 0–8 %, gains shrink as
    // clusters are added, stable zero-gain plateaus exist.
    let max_gain = series
        .iter()
        .flat_map(|p| [p.gain1, p.gain2, p.gain3])
        .fold(f64::NEG_INFINITY, f64::max);
    let mean3_by_n: Vec<(usize, f64)> = (2..=5)
        .map(|n| {
            let pts: Vec<&Point> = series.iter().filter(|p| p.clusters == n).collect();
            (
                n,
                pts.iter().map(|p| p.gain3).sum::<f64>() / pts.len() as f64,
            )
        })
        .collect();
    let zero_plateaus = series
        .iter()
        .filter(|p| p.gain1.abs() < 0.01 && p.gain2.abs() < 0.01 && p.gain3.abs() < 0.01)
        .count();
    println!("\nbest gain anywhere: {max_gain:.1}% (paper: almost 12%, most 0–8%)");
    println!("mean knapsack gain per cluster count: {mean3_by_n:?} (paper: gains shrink as clusters are added)");
    println!(
        "configurations where no heuristic improves: {zero_plateaus}/{} (paper: stable phases exist)",
        series.len()
    );
    write_json("fig10_grid", &series);
    rec.finish();

    // `--trace PATH` (or OA_TRACE): dump a representative grid run
    // (5 clusters × 30, knapsack) as a cluster-tagged event trace; the
    // Chrome export shows one process lane per cluster.
    if let Some(path) = oa_bench::trace_path() {
        let grid = base_grid.take(5).with_uniform_resources(30);
        let mut sink = oa_trace::VecTracer::new();
        run_grid_traced(
            &grid,
            Heuristic::Knapsack,
            ns,
            nm,
            ExecConfig::default(),
            &mut sink,
        )
        .expect("R = 30 fits groups");
        oa_bench::write_trace(&path, &sink.into_events());
    }
}
