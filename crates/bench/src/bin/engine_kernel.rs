//! Kernel speedup matrix: wall-clock of the campaign engine with the
//! simulation kernel (steady-state fast-forward + integer-time
//! calendar queue) on versus plain event-by-event execution, at fused
//! and unfused granularity over growing campaign lengths. The outputs
//! of the two modes are bitwise identical (pinned by
//! `tests/kernel_equivalence.rs`); this binary records what the
//! identity costs — or rather, what it saves.
//!
//! Results merge by configuration key into `results/BENCH_engine.json`
//! (wall-clock history, like `BENCH_sweeps.json`: re-running a
//! configuration replaces its entry and leaves the others).
//!
//! Run: `cargo run --release -p oa-bench --bin engine_kernel [--smoke]`
//!
//! `--smoke` is the CI gate: the NM = 18000 fused point only, asserting
//! that the fast-forward actually engaged and skipped cycles within a
//! generous wall-clock budget.

use std::time::Instant;

use oa_bench::write_json;
use oa_platform::presets::reference_cluster;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};
use oa_sim::engine::{simulate_campaign_kernel, KernelOpts, KernelReport};
use oa_trace::NullTracer;
use serde::Value;

const NS: u32 = 10;
const R: u32 = 53;
const NMS: [u32; 3] = [120, 1800, 18000];

/// Best-of-N wall-clock of one configuration, with the report of the
/// last run (the report is identical across repetitions).
fn time_config(
    inst: Instance,
    table: &oa_platform::timing::TimingTable,
    grouping: &oa_sched::grouping::Grouping,
    config: &CampaignConfig,
    opts: KernelOpts,
    reps: usize,
) -> (f64, KernelReport) {
    let mut best = f64::INFINITY;
    let mut report = KernelReport::default();
    for _ in 0..reps {
        let t = Instant::now();
        let (out, rep) = simulate_campaign_kernel(
            inst,
            table,
            grouping,
            config,
            &FaultPlan::none(),
            opts,
            &mut NullTracer,
        )
        .expect("valid grouping");
        let secs = t.elapsed().as_secs_f64();
        assert!(out.completed().is_some(), "fault-free runs complete");
        std::hint::black_box(&out);
        best = best.min(secs);
        report = rep;
    }
    (best, report)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let table = reference_cluster(R).timing;

    if smoke {
        // CI gate: the big fused point must fast-forward and finish
        // comfortably inside the budget even on a loaded runner.
        let inst = Instance::new(NS, 18000, R);
        let grouping = Heuristic::Basic.grouping(inst, &table).expect("feasible");
        let config = CampaignConfig::default();
        let t = Instant::now();
        let (secs, report) =
            time_config(inst, &table, &grouping, &config, KernelOpts::default(), 3);
        assert!(
            report.integer_time,
            "reference cluster must take the integer-time path"
        );
        assert!(
            report.main_cycles_skipped > 0,
            "fast-forward did not engage on the steady-state campaign"
        );
        assert!(
            t.elapsed().as_secs_f64() < 60.0,
            "kernel smoke exceeded its wall-clock budget"
        );
        println!(
            "smoke ok: NM=18000 fused kernel run {secs:.4}s, {} main + {} post cycles skipped",
            report.main_cycles_skipped, report.post_cycles_skipped
        );
        return;
    }

    println!("== Engine kernel speedup: fast-forward + calendar queue vs event-by-event ==");
    println!(
        "instance: NS = {NS}, R = {R} (reference cluster, integral seconds); basic 7×7 grouping\n"
    );
    println!(
        "{:>8} {:>9} {:>14} {:>12} {:>9} {:>13} {:>13}",
        "gran", "NM", "event-by-event", "kernel", "speedup", "main-skipped", "post-skipped"
    );

    let mut entries: Vec<(String, Value)> = Vec::new();
    for granularity in [Granularity::Fused, Granularity::Unfused] {
        for nm in NMS {
            let inst = Instance::new(NS, nm, R);
            let grouping = Heuristic::Basic.grouping(inst, &table).expect("feasible");
            let config = CampaignConfig {
                policy: ScenarioPolicy::LeastAdvanced,
                granularity,
                recovery: Recovery::MonthlyCheckpoint,
            };
            let reps = if nm >= 18000 { 3 } else { 7 };
            let (base, base_rep) = time_config(
                inst,
                &table,
                &grouping,
                &config,
                KernelOpts::event_by_event(),
                reps,
            );
            assert_eq!(
                base_rep,
                KernelReport::default(),
                "baseline must not kernel"
            );
            let (fast, rep) = time_config(
                inst,
                &table,
                &grouping,
                &config,
                KernelOpts::default(),
                reps,
            );
            let speedup = base / fast;
            println!(
                "{:>8} {:>9} {:>13.5}s {:>11.5}s {:>8.2}x {:>13} {:>13}",
                granularity.label(),
                nm,
                base,
                fast,
                speedup,
                rep.main_cycles_skipped,
                rep.post_cycles_skipped
            );
            entries.push((
                format!("{}_nm{}", granularity.label(), nm),
                Value::Object(vec![
                    ("granularity".into(), Value::Str(granularity.label().into())),
                    ("nm".into(), Value::U64(u64::from(nm))),
                    ("event_by_event_secs".into(), Value::F64(base)),
                    ("kernel_secs".into(), Value::F64(fast)),
                    ("speedup".into(), Value::F64(speedup)),
                    ("integer_time".into(), Value::Bool(rep.integer_time)),
                    (
                        "main_cycles_skipped".into(),
                        Value::U64(rep.main_cycles_skipped),
                    ),
                    (
                        "post_cycles_skipped".into(),
                        Value::U64(rep.post_cycles_skipped),
                    ),
                ]),
            ));
        }
    }

    // The workflow-IR front-end at full campaign scale: lowering the
    // canonical 10 × 18,000 preset, topologically sorting it, and
    // computing its critical path. All three are linear passes over
    // the 360,000-node fused mesh; recording them next to the engine
    // numbers keeps the "IR layer is free" claim honest.
    {
        use oa_workflow::chain::ExperimentShape;
        use oa_workflow::ir::{lower_fused, ReferenceDurations};
        let shape = ExperimentShape::new(NS, 18000);
        let best_of = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let lower = best_of(&mut || {
            std::hint::black_box(lower_fused(shape));
        });
        let ir = lower_fused(shape);
        let topo = best_of(&mut || {
            std::hint::black_box(ir.dag.topo_sort().expect("acyclic"));
        });
        let cp = best_of(&mut || {
            std::hint::black_box(ir.critical_path(&ReferenceDurations).expect("acyclic"));
        });
        println!(
            "\nIR front-end at NM = 18000 ({} nodes): lower {:.5}s, topo-sort {:.5}s, critical path {:.5}s",
            ir.node_count(),
            lower,
            topo,
            cp
        );
        entries.push((
            "ir_front_end_nm18000".into(),
            Value::Object(vec![
                ("nm".into(), Value::U64(18000)),
                ("nodes".into(), Value::U64(ir.node_count() as u64)),
                ("lower_secs".into(), Value::F64(lower)),
                ("topo_sort_secs".into(), Value::F64(topo)),
                ("critical_path_secs".into(), Value::F64(cp)),
            ]),
        ));
    }

    // Merge by key into the wall-clock history.
    let path = std::path::Path::new("results").join("BENCH_engine.json");
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .filter(|v| matches!(v, Value::Object(_)))
        .unwrap_or(Value::Object(Vec::new()));
    if let Value::Object(fields) = &mut root {
        for (key, entry) in entries {
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, slot)) => *slot = entry,
                None => fields.push((key, entry)),
            }
        }
    }
    write_json("BENCH_engine", &root);
}
