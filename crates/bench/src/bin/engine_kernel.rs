//! Kernel speedup matrix: wall-clock of the campaign engine with the
//! simulation kernel (steady-state fast-forward + integer-time
//! calendar queue) on versus plain event-by-event execution, at fused
//! and unfused granularity over growing campaign lengths. The outputs
//! of the two modes are bitwise identical (pinned by
//! `tests/kernel_equivalence.rs`); this binary records what the
//! identity costs — or rather, what it saves.
//!
//! Results merge by configuration key into `results/BENCH_engine.json`
//! (wall-clock history, like `BENCH_sweeps.json`: re-running a
//! configuration replaces its entry and leaves the others).
//!
//! Run: `cargo run --release -p oa-bench --bin engine_kernel [--smoke]`
//!
//! `--smoke` is the CI gate: the NM = 18000 fused point only, asserting
//! that the fast-forward actually engaged and skipped cycles within a
//! generous wall-clock budget.
//!
//! `--batch-smoke` gates the mass-batch engine: a 2000-variant Monte
//! Carlo sweep must agree with the naive per-variant loop bitwise
//! (checksums) and beat it by a comfortable margin even on a loaded
//! runner.
//!
//! The full run also records the batch engine's campaigns/sec against
//! the naive loop at 10³ and 10⁴ variants (single-fault Monte Carlo at
//! the reference shape, one core); pass `--big` to add the 10⁵ point
//! (the naive baseline alone takes ~90 s there).

use std::time::Instant;

use oa_bench::write_json;
use oa_platform::presets::reference_cluster;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};
use oa_sim::batch::{run_batch, run_naive, BatchSpec};
use oa_sim::engine::{simulate_campaign_kernel, KernelOpts, KernelReport};
use oa_trace::NullTracer;
use serde::Value;

const NS: u32 = 10;
const R: u32 = 53;
const NMS: [u32; 3] = [120, 1800, 18000];

/// Best-of-N wall-clock of one configuration, with the report of the
/// last run (the report is identical across repetitions).
fn time_config(
    inst: Instance,
    table: &oa_platform::timing::TimingTable,
    grouping: &oa_sched::grouping::Grouping,
    config: &CampaignConfig,
    opts: KernelOpts,
    reps: usize,
) -> (f64, KernelReport) {
    let mut best = f64::INFINITY;
    let mut report = KernelReport::default();
    for _ in 0..reps {
        let t = Instant::now();
        let (out, rep) = simulate_campaign_kernel(
            inst,
            table,
            grouping,
            config,
            &FaultPlan::none(),
            opts,
            &mut NullTracer,
        )
        .expect("valid grouping");
        let secs = t.elapsed().as_secs_f64();
        assert!(out.completed().is_some(), "fault-free runs complete");
        std::hint::black_box(&out);
        best = best.min(secs);
        report = rep;
    }
    (best, report)
}

/// Best-of-N wall-clock of one sweep; the returned report is the last
/// run's (identical across repetitions — the sweep is deterministic).
fn time_sweep(
    spec: &BatchSpec,
    pool: &oa_par::Pool,
    share: bool,
    reps: usize,
) -> (f64, oa_sim::batch::BatchReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let t = Instant::now();
        let rep = if share {
            run_batch(spec, pool)
        } else {
            run_naive(spec, pool)
        }
        .expect("reference sweeps are valid");
        best = best.min(t.elapsed().as_secs_f64());
        report = Some(rep);
    }
    (best, report.expect("reps >= 1"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let batch_smoke = std::env::args().any(|a| a == "--batch-smoke");
    let big = std::env::args().any(|a| a == "--big");
    let table = reference_cluster(R).timing;

    if batch_smoke {
        // CI gate: the mass-batch engine must agree with the naive
        // loop bitwise and beat it clearly, even on a loaded runner.
        let spec = BatchSpec::reference_mc(2_000, 42);
        let pool = oa_par::Pool::serial();
        let (batch_secs, batch) = time_sweep(&spec, &pool, true, 1);
        let (naive_secs, naive) = time_sweep(&spec, &pool, false, 1);
        let (bs, ns) = (batch.summary(), naive.summary());
        assert_eq!(bs.checksum, ns.checksum, "batch/naive outcomes diverge");
        assert_eq!(batch.heads, 1, "the reference shape must share a head");
        let speedup = naive_secs / batch_secs;
        assert!(
            speedup > 3.0,
            "batch engine only {speedup:.1}x over naive (expected >3x even loaded)"
        );
        println!(
            "batch smoke ok: 2000 variants, batch {batch_secs:.3}s vs naive {naive_secs:.3}s \
             ({speedup:.1}x), checksum {}",
            bs.checksum
        );
        return;
    }

    if smoke {
        // CI gate: the big fused point must fast-forward and finish
        // comfortably inside the budget even on a loaded runner.
        let inst = Instance::new(NS, 18000, R);
        let grouping = Heuristic::Basic.grouping(inst, &table).expect("feasible");
        let config = CampaignConfig::default();
        let t = Instant::now();
        let (secs, report) =
            time_config(inst, &table, &grouping, &config, KernelOpts::default(), 3);
        assert!(
            report.integer_time,
            "reference cluster must take the integer-time path"
        );
        assert!(
            report.main_cycles_skipped > 0,
            "fast-forward did not engage on the steady-state campaign"
        );
        assert!(
            t.elapsed().as_secs_f64() < 60.0,
            "kernel smoke exceeded its wall-clock budget"
        );
        println!(
            "smoke ok: NM=18000 fused kernel run {secs:.4}s, {} main + {} post cycles skipped",
            report.main_cycles_skipped, report.post_cycles_skipped
        );
        return;
    }

    println!("== Engine kernel speedup: fast-forward + calendar queue vs event-by-event ==");
    println!(
        "instance: NS = {NS}, R = {R} (reference cluster, integral seconds); basic 7×7 grouping\n"
    );
    println!(
        "{:>8} {:>9} {:>14} {:>12} {:>9} {:>13} {:>13}",
        "gran", "NM", "event-by-event", "kernel", "speedup", "main-skipped", "post-skipped"
    );

    let mut entries: Vec<(String, Value)> = Vec::new();
    for granularity in [Granularity::Fused, Granularity::Unfused] {
        for nm in NMS {
            let inst = Instance::new(NS, nm, R);
            let grouping = Heuristic::Basic.grouping(inst, &table).expect("feasible");
            let config = CampaignConfig {
                policy: ScenarioPolicy::LeastAdvanced,
                granularity,
                recovery: Recovery::MonthlyCheckpoint,
            };
            let reps = if nm >= 18000 { 3 } else { 7 };
            let (base, base_rep) = time_config(
                inst,
                &table,
                &grouping,
                &config,
                KernelOpts::event_by_event(),
                reps,
            );
            assert_eq!(
                base_rep,
                KernelReport::default(),
                "baseline must not kernel"
            );
            let (fast, rep) = time_config(
                inst,
                &table,
                &grouping,
                &config,
                KernelOpts::default(),
                reps,
            );
            let speedup = base / fast;
            // The post-skip column only exists at fused granularity:
            // the unfused drain replays the recorded chain with no
            // fast-forward wiring, so its counter is structurally
            // zero — printing (or recording) it would read as "the
            // kernel found nothing to skip" when there is nothing to
            // look for (see DESIGN.md, "Unfused post phase").
            let fused = granularity == Granularity::Fused;
            println!(
                "{:>8} {:>9} {:>13.5}s {:>11.5}s {:>8.2}x {:>13} {:>13}",
                granularity.label(),
                nm,
                base,
                fast,
                speedup,
                rep.main_cycles_skipped,
                if fused {
                    rep.post_cycles_skipped.to_string()
                } else {
                    "—".into()
                }
            );
            let mut fields = vec![
                ("granularity".into(), Value::Str(granularity.label().into())),
                ("nm".into(), Value::U64(u64::from(nm))),
                ("event_by_event_secs".into(), Value::F64(base)),
                ("kernel_secs".into(), Value::F64(fast)),
                ("speedup".into(), Value::F64(speedup)),
                ("integer_time".into(), Value::Bool(rep.integer_time)),
                (
                    "main_cycles_skipped".into(),
                    Value::U64(rep.main_cycles_skipped),
                ),
            ];
            if fused {
                fields.push((
                    "post_cycles_skipped".into(),
                    Value::U64(rep.post_cycles_skipped),
                ));
            }
            entries.push((
                format!("{}_nm{}", granularity.label(), nm),
                Value::Object(fields),
            ));
        }
    }

    // The workflow-IR front-end at full campaign scale: lowering the
    // canonical 10 × 18,000 preset, topologically sorting it, and
    // computing its critical path. All three are linear passes over
    // the 360,000-node fused mesh; recording them next to the engine
    // numbers keeps the "IR layer is free" claim honest.
    {
        use oa_workflow::chain::ExperimentShape;
        use oa_workflow::ir::{lower_fused, ReferenceDurations};
        let shape = ExperimentShape::new(NS, 18000);
        let best_of = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let lower = best_of(&mut || {
            std::hint::black_box(lower_fused(shape));
        });
        let ir = lower_fused(shape);
        let topo = best_of(&mut || {
            std::hint::black_box(ir.dag.topo_sort().expect("acyclic"));
        });
        let cp = best_of(&mut || {
            std::hint::black_box(ir.critical_path(&ReferenceDurations).expect("acyclic"));
        });
        println!(
            "\nIR front-end at NM = 18000 ({} nodes): lower {:.5}s, topo-sort {:.5}s, critical path {:.5}s",
            ir.node_count(),
            lower,
            topo,
            cp
        );
        entries.push((
            "ir_front_end_nm18000".into(),
            Value::Object(vec![
                ("nm".into(), Value::U64(18000)),
                ("nodes".into(), Value::U64(ir.node_count() as u64)),
                ("lower_secs".into(), Value::F64(lower)),
                ("topo_sort_secs".into(), Value::F64(topo)),
                ("critical_path_secs".into(), Value::F64(cp)),
            ]),
        ));
    }

    // The mass-batch variant engine against the naive per-variant
    // loop: single-fault Monte Carlo sweeps at the reference shape
    // (NS = 10, NM = 1800, R = 53, basic 7×7 grouping), one core —
    // the acceptance configuration of the batch engine.
    {
        println!("\n== Mass-batch variant engine: campaigns/sec vs the naive loop (one core) ==");
        println!(
            "{:>9} {:>11} {:>11} {:>13} {:>13} {:>9} {:>18}",
            "variants", "naive", "batch", "naive c/s", "batch c/s", "speedup", "checksum"
        );
        let pool = oa_par::Pool::serial();
        let mut counts = vec![1_000u64, 10_000];
        if big {
            counts.push(100_000);
        }
        for n in counts {
            let spec = BatchSpec::reference_mc(n, 42);
            let reps = if n >= 10_000 { 1 } else { 3 };
            let (batch_secs, batch) = time_sweep(&spec, &pool, true, reps);
            let (naive_secs, naive) = time_sweep(&spec, &pool, false, reps);
            let (bs, ns) = (batch.summary(), naive.summary());
            assert_eq!(bs.checksum, ns.checksum, "batch/naive outcomes diverge");
            let speedup = naive_secs / batch_secs;
            let (ncs, bcs) = (n as f64 / naive_secs, n as f64 / batch_secs);
            println!(
                "{n:>9} {naive_secs:>10.3}s {batch_secs:>10.3}s {ncs:>13.0} {bcs:>13.0} \
                 {speedup:>8.1}x {:>18}",
                bs.checksum
            );
            entries.push((
                format!("batch_mc{n}"),
                Value::Object(vec![
                    ("variants".into(), Value::U64(n)),
                    ("max_faults".into(), Value::U64(1)),
                    ("nm".into(), Value::U64(1800)),
                    ("naive_secs".into(), Value::F64(naive_secs)),
                    ("batch_secs".into(), Value::F64(batch_secs)),
                    ("naive_campaigns_per_sec".into(), Value::F64(ncs)),
                    ("batch_campaigns_per_sec".into(), Value::F64(bcs)),
                    ("speedup".into(), Value::F64(speedup)),
                    ("heads".into(), Value::U64(batch.heads as u64)),
                    ("checksum".into(), Value::Str(bs.checksum)),
                ]),
            ));
        }
    }

    // Merge by key into the wall-clock history.
    let path = std::path::Path::new("results").join("BENCH_engine.json");
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .filter(|v| matches!(v, Value::Object(_)))
        .unwrap_or(Value::Object(Vec::new()));
    if let Value::Object(fields) = &mut root {
        for (key, entry) in entries {
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, slot)) => *slot = entry,
                None => fields.push((key, entry)),
            }
        }
    }
    write_json("BENCH_engine", &root);
}
