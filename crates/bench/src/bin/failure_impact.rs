//! Failure resilience: what a group crash costs the campaign under the
//! application's monthly checkpointing, versus a counterfactual
//! without restart files.
//!
//! Run: `cargo run --release -p oa-bench --bin failure_impact [--fast] [--jobs N]`

use oa_bench::{fast_mode, pool, row, stats, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;
use oa_sim::failures::{estimate_with_failures, FaultPlan, FaultyOutcome, Recovery};
use oa_sim::grid_failures::{run_grid_with_cluster_failure, ClusterFailurePolicy};
use oa_sim::prelude::*;

fn main() {
    let nm = if fast_mode() { 120 } else { 600 };
    let (ns, r) = (10u32, 53u32);
    let table = reference_cluster(r).timing;
    let inst = Instance::new(ns, nm, r);
    let grouping = Heuristic::Knapsack
        .grouping(inst, &table)
        .expect("feasible");
    let clean = execute_default(inst, &table, &grouping)
        .expect("valid")
        .makespan;

    println!("== One group crash: overhead vs failure time (NS = {ns}, NM = {nm}, R = {r}) ==");
    println!(
        "grouping: {grouping}; failure-free makespan {:.1} h\n",
        clean / 3600.0
    );
    let widths = [12usize, 16, 16, 14];
    println!(
        "{}",
        row(
            &[
                "fail at".into(),
                "checkpoint(+%)".into(),
                "restart(+%)".into(),
                "ckpt saves".into(),
            ],
            &widths
        )
    );

    #[derive(serde::Serialize)]
    struct Point {
        fail_fraction: f64,
        checkpoint_overhead_pct: f64,
        restart_overhead_pct: f64,
    }
    let pool = pool();
    let mut rec = SweepRecorder::start("failure_impact");
    let pcts = [10u32, 25, 50, 75, 90];
    let outcomes = rec.phase("crash_sweep", pcts.len(), || {
        pool.par_map(&pcts, |&pct| {
            let tf = clean * pct as f64 / 100.0;
            let plan = FaultPlan::none().kill(0, tf);
            let run =
                |recovery| match estimate_with_failures(inst, &table, &grouping, &plan, recovery)
                    .expect("valid grouping")
                {
                    FaultyOutcome::Completed { makespan, .. } => makespan,
                    FaultyOutcome::Stranded { .. } => f64::INFINITY,
                };
            (
                run(Recovery::MonthlyCheckpoint),
                run(Recovery::RestartScenario),
            )
        })
    });

    let mut series = Vec::new();
    let mut savings = Vec::new();
    for (pct, (ck, rs)) in pcts.into_iter().zip(outcomes) {
        let ck_over = (ck - clean) / clean * 100.0;
        let rs_over = (rs - clean) / clean * 100.0;
        println!(
            "{}",
            row(
                &[
                    format!("{pct}%"),
                    format!("{ck_over:+.2}"),
                    format!("{rs_over:+.2}"),
                    format!("{:.2}pp", rs_over - ck_over),
                ],
                &widths
            )
        );
        savings.push(rs_over - ck_over);
        series.push(Point {
            fail_fraction: pct as f64 / 100.0,
            checkpoint_overhead_pct: ck_over,
            restart_overhead_pct: rs_over,
        });
    }

    let s = stats(&savings);
    println!(
        "\nmonthly checkpointing saves {:.1}pp of overhead on average (max {:.1}pp):\n\
         losing one group costs roughly the group's share of throughput, while\n\
         losing a scenario's history additionally serializes its re-run.",
        s.mean, s.max
    );
    write_json("failure_impact", &series);

    // --- Grid level: a whole cluster dies -------------------------------
    println!("\n== Cluster loss at grid level (5 clusters × 30 procs, NS = 10) ==");
    let grid = benchmark_grid(30);
    let link = Link::gigabit();
    let grid_nm = if fast_mode() { 60 } else { 240 };
    let clean = run_grid(
        &grid,
        Heuristic::Knapsack,
        ns,
        grid_nm,
        ExecConfig::default(),
    )
    .expect("feasible")
    .makespan;
    println!("failure-free grid makespan: {:.1} h", clean / 3600.0);
    let grid_cases: Vec<(&str, u32, ClusterFailurePolicy)> =
        [("fastest (sagittaire)", 0u32), ("slowest (grelon)", 4u32)]
            .into_iter()
            .flat_map(|(label, victim)| {
                [ClusterFailurePolicy::Strand, ClusterFailurePolicy::Replan]
                    .into_iter()
                    .map(move |policy| (label, victim, policy))
            })
            .collect();
    let grid_outcomes = rec.phase("cluster_loss", grid_cases.len(), || {
        pool.par_map(&grid_cases, |&(_, victim, policy)| {
            run_grid_with_cluster_failure(
                &grid,
                Heuristic::Knapsack,
                ns,
                grid_nm,
                ClusterFailureSpec {
                    failed: oa_platform::cluster::ClusterId(victim),
                    at_fraction: 0.5,
                    policy,
                },
                &link,
            )
            .expect("feasible")
        })
    });
    for ((label, _, policy), out) in grid_cases.into_iter().zip(grid_outcomes) {
        println!(
            "  {label} dies at 50% · {policy:?}: makespan {:.1} h ({:+.1}%), {} scenario(s) affected, complete = {}",
            out.makespan / 3600.0,
            (out.makespan - clean) / clean * 100.0,
            out.victim_scenarios.len(),
            out.complete,
        );
    }
    rec.finish();
}
