//! Related-work comparison: the paper's Section 3 claims, measured.
//!
//! CPA, batched CPR, faithful CPR and the one-DAG-at-a-time strawman
//! versus the paper's basic and knapsack heuristics, across a resource
//! sweep. The paper argues (Section 3.2) that single-critical-path
//! heuristics do not fit this workload; this binary quantifies the
//! claim.
//!
//! Run: `cargo run --release -p oa-bench --bin baselines_compare [--fast] [--jobs N]`

use oa_baselines::{coalloc, cpa, cpr, cpr_batched, heft, one_dag_at_a_time};
use oa_bench::{fast_mode, pool, row, write_json, SweepRecorder};
use oa_platform::prelude::*;
use oa_sched::prelude::*;
use oa_workflow::ir::lower_fused;

fn main() {
    let (ns, nm) = (10u32, if fast_mode() { 60 } else { 240 });
    let table = reference_cluster(120).timing;

    println!("== Baselines vs the paper's heuristics (NS = {ns}, NM = {nm}) ==");
    println!("(makespans in hours; smaller is better)\n");
    let widths = [5usize, 10, 10, 10, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "R".into(),
                "basic".into(),
                "knapsack".into(),
                "CPA".into(),
                "CPR-b".into(),
                "CPR-1".into(),
                "1-by-1".into(),
                "HEFT".into(),
                "coalloc".into(),
            ],
            &widths
        )
    );

    #[derive(serde::Serialize)]
    struct Point {
        r: u32,
        basic: f64,
        knapsack: f64,
        cpa: f64,
        cpr_batched: f64,
        cpr_single: f64,
        one_by_one: f64,
        heft: f64,
        coalloc: f64,
    }
    let rs: Vec<u32> = (12..=120).step_by(12).collect();
    let pool = pool();
    let mut rec = SweepRecorder::start("baselines_compare");
    let series: Vec<Point> = rec.phase("baseline_sweep", rs.len(), || {
        pool.par_map(&rs, |&r| {
            let inst = Instance::new(ns, nm, r);
            let ir = lower_fused(inst.shape());
            Point {
                r,
                basic: Heuristic::Basic.makespan(inst, &table).expect("feasible"),
                knapsack: Heuristic::Knapsack
                    .makespan(inst, &table)
                    .expect("feasible"),
                cpa: cpa(inst, &table).expect("feasible").makespan,
                cpr_batched: cpr_batched(inst, &table)
                    .expect("feasible")
                    .schedule
                    .makespan,
                cpr_single: cpr(inst, &table).expect("feasible").schedule.makespan,
                one_by_one: one_dag_at_a_time(inst, &table).expect("feasible").makespan,
                heft: heft(&ir, &table, r).expect("feasible").makespan,
                coalloc: coalloc(&ir, &table, r).expect("feasible").makespan,
            }
        })
    });
    for p in &series {
        let h = |x: f64| format!("{:.1}", x / 3600.0);
        println!(
            "{}",
            row(
                &[
                    p.r.to_string(),
                    h(p.basic),
                    h(p.knapsack),
                    h(p.cpa),
                    h(p.cpr_batched),
                    h(p.cpr_single),
                    h(p.one_by_one),
                    h(p.heft),
                    h(p.coalloc),
                ],
                &widths
            )
        );
    }

    // Section 3 claims, quantified.
    let knap_beats_cpa = series
        .iter()
        .filter(|p| p.knapsack <= p.cpa * 1.001)
        .count();
    let cpr_stuck = series
        .iter()
        .filter(|p| p.cpr_single >= p.cpr_batched)
        .count();
    let naive_ratio: f64 = series
        .iter()
        .map(|p| p.one_by_one / p.knapsack)
        .sum::<f64>()
        / series.len() as f64;
    println!(
        "\nknapsack ≤ CPA on {knap_beats_cpa}/{} resource counts",
        series.len()
    );
    println!(
        "faithful CPR never beats the batched adaptation ({cpr_stuck}/{}) — the multi-critical-path plateau of §3.2",
        series.len()
    );
    println!("one-DAG-at-a-time is on average {naive_ratio:.1}× slower than the knapsack grouping");
    let knap_beats_heft = series
        .iter()
        .filter(|p| p.knapsack <= p.heft * 1.001)
        .count();
    let heft_ratio: f64 =
        series.iter().map(|p| p.heft / p.knapsack).sum::<f64>() / series.len() as f64;
    let coalloc_ratio: f64 =
        series.iter().map(|p| p.coalloc / p.knapsack).sum::<f64>() / series.len() as f64;
    println!(
        "knapsack ≤ IR HEFT on {knap_beats_heft}/{} resource counts (HEFT avg {heft_ratio:.2}×, co-allocation avg {coalloc_ratio:.2}× the knapsack makespan)",
        series.len()
    );
    write_json("baselines_compare", &series);
    rec.finish();
}
