//! # oa-bench — experiment harness
//!
//! Shared plumbing for the figure-regeneration binaries (one per paper
//! figure/table, see `src/bin/`) and the Criterion micro-benchmarks
//! (`benches/`): summary statistics, tabular output, JSON result dumps,
//! the `--jobs` worker-count grammar shared by every binary, and a
//! wall-clock sweep recorder feeding `results/BENCH_sweeps.json`.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use serde::{Serialize, Value};

/// Gates a benchmark on static analysis: every figure binary verifies
/// its groupings/schedules through `oa-analyze` before reporting
/// numbers, so a regression in the scheduler surfaces as a loud failure
/// here rather than as a silently wrong plot. Warnings are printed
/// (they land in the bench log); error diagnostics abort the run.
pub fn gate_on_analysis(context: &str, report: &oa_analyze::Report) {
    for d in report.of_severity(oa_analyze::Severity::Warn) {
        println!("   [{context}] {}", d.render());
    }
    assert!(
        !report.has_errors(),
        "{context}: static analysis rejected the result\n{}",
        report.render_text()
    );
}

/// Mean and population standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Computes [`Stats`]; panics on an empty sample.
pub fn stats(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "stats of an empty sample");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Stats {
        mean,
        stddev: var.sqrt(),
        min,
        max,
    }
}

/// Runs `f` over every item of `inputs` on `workers` deterministic
/// pool workers ([`oa_par::Pool`]), preserving input order in the
/// output. The figure sweeps are embarrassingly parallel over
/// resource counts; a sweep run on any worker count produces the
/// exact bytes of the serial run.
pub fn par_sweep<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(workers > 0, "need at least one worker");
    oa_par::Pool::new(workers).par_map(&inputs, f)
}

/// Number of sweep workers: the `--jobs N` flag when present, the
/// `OA_JOBS` environment variable otherwise, and the machine's
/// available parallelism as the default. Every figure binary sizes
/// its sweeps with this.
pub fn jobs() -> usize {
    oa_par::resolve_jobs(jobs_flag())
}

/// The worker pool every figure binary fans its sweep out on, sized
/// by [`jobs`].
pub fn pool() -> oa_par::Pool {
    oa_par::Pool::new(jobs())
}

/// Parses an explicit `--jobs N` from the binary's argv, if any.
fn jobs_flag() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

/// The scenario-selection policy under test: `--policy NAME`
/// (`least-advanced`, `round-robin`, `most-advanced`) from the
/// binary's argv, defaulting to the paper's least-advanced-first so
/// unflagged runs reproduce the tracked figures byte-for-byte. An
/// unknown name aborts loudly rather than silently benchmarking the
/// wrong policy.
pub fn policy_flag() -> oa_sched::policy::ScenarioPolicy {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--policy" {
            args.next()
        } else {
            a.strip_prefix("--policy=").map(str::to_string)
        };
        if let Some(v) = value {
            return oa_sched::policy::ScenarioPolicy::parse(&v)
                .unwrap_or_else(|| panic!("unknown --policy {v:?}; see `oa help`"));
        }
    }
    oa_sched::policy::ScenarioPolicy::LeastAdvanced
}

/// Number of sweep workers, honouring `--jobs` / `OA_JOBS`. Alias of
/// [`jobs`] kept for the original figure-binary spelling.
pub fn default_workers() -> usize {
    jobs()
}

/// Wall-clock recorder behind `results/BENCH_sweeps.json`: each figure
/// binary wraps its sweep phases in [`SweepRecorder::phase`] and calls
/// [`SweepRecorder::finish`], which merges one `{jobs, phases,
/// total_secs}` entry into the per-binary history (replacing any prior
/// entry recorded at the same worker count, so a `--jobs 1` baseline
/// and a `--jobs N` run coexist for before/after comparison).
pub struct SweepRecorder {
    binary: &'static str,
    jobs: usize,
    phases: Vec<(String, usize, f64)>,
    started: Instant,
}

impl SweepRecorder {
    /// Starts recording for the named binary at the current [`jobs`]
    /// count.
    #[must_use]
    pub fn start(binary: &'static str) -> Self {
        Self {
            binary,
            jobs: jobs(),
            phases: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Times `f` as one named sweep phase covering `points` points.
    pub fn phase<O>(&mut self, name: &str, points: usize, f: impl FnOnce() -> O) -> O {
        let t = Instant::now();
        let out = f();
        self.phases
            .push((name.to_string(), points, t.elapsed().as_secs_f64()));
        out
    }

    /// Writes the recorded entry into `results/BENCH_sweeps.json`.
    pub fn finish(self) {
        let entry = Value::Object(vec![
            ("jobs".into(), Value::U64(self.jobs as u64)),
            (
                "phases".into(),
                Value::Array(
                    self.phases
                        .iter()
                        .map(|(name, points, secs)| {
                            Value::Object(vec![
                                ("name".into(), Value::Str(name.clone())),
                                ("points".into(), Value::U64(*points as u64)),
                                ("secs".into(), Value::F64(*secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total_secs".into(),
                Value::F64(self.started.elapsed().as_secs_f64()),
            ),
        ]);

        let path = Path::new("results").join("BENCH_sweeps.json");
        let mut root = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
            .filter(|v| matches!(v, Value::Object(_)))
            .unwrap_or(Value::Object(Vec::new()));
        merge_sweep_entry(&mut root, self.binary, self.jobs, entry);

        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        let json = serde_json::to_string_pretty(&root).expect("sweep records are serializable");
        match std::fs::write(&path, json) {
            Ok(()) => println!(
                "# recorded {} sweep ({} jobs) in {}",
                self.binary,
                self.jobs,
                path.display()
            ),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Inserts one recorded run into the `BENCH_sweeps.json` tree,
/// replacing any prior entry for the same binary at the same worker
/// count so repeated runs stay one-entry-per-jobs.
fn merge_sweep_entry(root: &mut Value, binary: &str, jobs: usize, entry: Value) {
    let Value::Object(binaries) = root else {
        unreachable!("sweep root is always an object");
    };
    let runs = match binaries.iter_mut().find(|(k, _)| k == binary) {
        Some((_, v)) => v,
        None => {
            binaries.push((binary.to_string(), Value::Array(Vec::new())));
            &mut binaries.last_mut().expect("just pushed").1
        }
    };
    if !matches!(runs, Value::Array(_)) {
        *runs = Value::Array(Vec::new());
    }
    if let Value::Array(entries) = runs {
        let same_jobs = Value::U64(jobs as u64);
        entries.retain(|e| e.get("jobs") != Some(&same_jobs));
        entries.push(entry);
    }
}

/// Writes `value` as pretty JSON under `results/<name>.json` (creating
/// the directory) and reports the path on stdout.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let json = serde_json::to_string_pretty(value).expect("results are serializable");
            if f.write_all(json.as_bytes()).is_ok() {
                println!("# wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// True when the binary got the `--fast` flag: shrink sweeps for smoke
/// runs (CI, `cargo run` without release).
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Destination for a JSONL event-trace dump: the `--trace PATH`
/// argument, or the `OA_TRACE` environment variable when the flag is
/// absent. `None` (the default) keeps the figure binaries untraced.
pub fn trace_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next();
        }
    }
    std::env::var("OA_TRACE").ok().filter(|p| !p.is_empty())
}

/// Writes a recorded event stream as JSON Lines (the `oa trace`
/// interchange format) to `path` and reports the destination. Used by
/// the figure binaries when [`trace_path`] asks for a dump; the file
/// replays with `oa trace export --file PATH` / `oa trace summarize`.
pub fn write_trace(path: &str, events: &[oa_trace::TraceEvent]) {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("events are serializable"));
        out.push('\n');
    }
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {} trace event(s) to {path}", events.len()),
        Err(e) => eprintln!("warning: cannot write trace {path}: {e}"),
    }
}

/// Formats a row of columns padded to `widths`.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        s.push_str(&format!("{c:>w$} "));
    }
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = stats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!((s.min, s.max), (2.0, 9.0));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn stats_empty_panics() {
        stats(&[]);
    }

    #[test]
    fn par_sweep_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = par_sweep(inputs.clone(), 4, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_sweep_single_worker() {
        let out = par_sweep(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_sweep_empty() {
        let out: Vec<i32> = par_sweep(Vec::<i32>::new(), 3, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 4]), "  a   bb");
    }

    fn entry(jobs: u64, secs: f64) -> Value {
        Value::Object(vec![
            ("jobs".into(), Value::U64(jobs)),
            ("total_secs".into(), Value::F64(secs)),
        ])
    }

    #[test]
    fn merge_replaces_same_jobs_entry() {
        let mut root = Value::Object(Vec::new());
        merge_sweep_entry(&mut root, "fig8_gains", 1, entry(1, 10.0));
        merge_sweep_entry(&mut root, "fig8_gains", 4, entry(4, 3.0));
        merge_sweep_entry(&mut root, "fig8_gains", 4, entry(4, 2.5));
        merge_sweep_entry(&mut root, "sensitivity", 4, entry(4, 7.0));

        let runs = root.get("fig8_gains").expect("binary recorded");
        let Value::Array(entries) = runs else {
            panic!("runs must be an array");
        };
        assert_eq!(entries.len(), 2, "same-jobs rerun replaces, not appends");
        assert_eq!(entries[0], entry(1, 10.0));
        assert_eq!(entries[1], entry(4, 2.5));
        assert!(root.get("sensitivity").is_some());
    }
}
