//! # oa-bench — experiment harness
//!
//! Shared plumbing for the figure-regeneration binaries (one per paper
//! figure/table, see `src/bin/`) and the Criterion micro-benchmarks
//! (`benches/`): summary statistics, tabular output, JSON result dumps
//! and a scoped-thread parallel sweep helper.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// Gates a benchmark on static analysis: every figure binary verifies
/// its groupings/schedules through `oa-analyze` before reporting
/// numbers, so a regression in the scheduler surfaces as a loud failure
/// here rather than as a silently wrong plot. Warnings are printed
/// (they land in the bench log); error diagnostics abort the run.
pub fn gate_on_analysis(context: &str, report: &oa_analyze::Report) {
    for d in report.of_severity(oa_analyze::Severity::Warn) {
        println!("   [{context}] {}", d.render());
    }
    assert!(
        !report.has_errors(),
        "{context}: static analysis rejected the result\n{}",
        report.render_text()
    );
}

/// Mean and population standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Computes [`Stats`]; panics on an empty sample.
pub fn stats(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "stats of an empty sample");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Stats {
        mean,
        stddev: var.sqrt(),
        min,
        max,
    }
}

/// Runs `f` over every item of `inputs` on `workers` scoped threads,
/// preserving input order in the output. The figure sweeps are
/// embarrassingly parallel over resource counts; this keeps the
/// binaries fast without pulling a task-pool dependency.
pub fn par_sweep<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(workers.min(n));
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (inp, slot) in inputs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (i, o) in inp.iter().zip(slot.iter_mut()) {
                    *o = Some(f(i));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// Number of sweep workers: physical parallelism minus one, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().saturating_sub(1).max(1))
}

/// Writes `value` as pretty JSON under `results/<name>.json` (creating
/// the directory) and reports the path on stdout.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let json = serde_json::to_string_pretty(value).expect("results are serializable");
            if f.write_all(json.as_bytes()).is_ok() {
                println!("# wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// True when the binary got the `--fast` flag: shrink sweeps for smoke
/// runs (CI, `cargo run` without release).
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Destination for a JSONL event-trace dump: the `--trace PATH`
/// argument, or the `OA_TRACE` environment variable when the flag is
/// absent. `None` (the default) keeps the figure binaries untraced.
pub fn trace_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next();
        }
    }
    std::env::var("OA_TRACE").ok().filter(|p| !p.is_empty())
}

/// Writes a recorded event stream as JSON Lines (the `oa trace`
/// interchange format) to `path` and reports the destination. Used by
/// the figure binaries when [`trace_path`] asks for a dump; the file
/// replays with `oa trace export --file PATH` / `oa trace summarize`.
pub fn write_trace(path: &str, events: &[oa_trace::TraceEvent]) {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("events are serializable"));
        out.push('\n');
    }
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {} trace event(s) to {path}", events.len()),
        Err(e) => eprintln!("warning: cannot write trace {path}: {e}"),
    }
}

/// Formats a row of columns padded to `widths`.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        s.push_str(&format!("{c:>w$} "));
    }
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = stats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!((s.min, s.max), (2.0, 9.0));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn stats_empty_panics() {
        stats(&[]);
    }

    #[test]
    fn par_sweep_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = par_sweep(inputs.clone(), 4, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_sweep_single_worker() {
        let out = par_sweep(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_sweep_empty() {
        let out: Vec<i32> = par_sweep(Vec::<i32>::new(), 3, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 4]), "  a   bb");
    }
}
