//! Ablation timing: the cost of the design choices DESIGN.md calls out
//! (scenario policies, exact vs greedy knapsack inside the heuristic,
//! analytic selection vs estimator sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_platform::presets::reference_cluster;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sim::executor::{execute, ExecConfig, ScenarioPolicy};

fn bench_policies(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let inst = Instance::new(10, 600, 53);
    let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
    let mut group = c.benchmark_group("policy");
    for policy in [
        ScenarioPolicy::LeastAdvanced,
        ScenarioPolicy::RoundRobin,
        ScenarioPolicy::MostAdvanced,
    ] {
        group.bench_with_input(
            BenchmarkId::new("execute", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(execute(inst, &table, &grouping, ExecConfig { policy }).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_knapsack_variants(c: &mut Criterion) {
    let table = reference_cluster(120).timing;
    let inst = Instance::new(10, 1800, 97);
    let mut group = c.benchmark_group("knapsack_variant");
    for h in [Heuristic::Knapsack, Heuristic::KnapsackGreedy] {
        group.bench_with_input(BenchmarkId::new("grouping", h.label()), &h, |b, &h| {
            b.iter(|| black_box(h.grouping(inst, &table).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_policies, bench_knapsack_variants
}
criterion_main!(benches);
