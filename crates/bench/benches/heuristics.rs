//! Heuristic-construction benchmarks: how long each grouping decision
//! takes, including the analytic G selection and the event estimator
//! that Improvement 2 sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_platform::presets::reference_cluster;
use oa_sched::analytic::best_group;
use oa_sched::estimate::estimate;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;

fn bench_grouping(c: &mut Criterion) {
    let table = reference_cluster(120).timing;
    let mut group = c.benchmark_group("grouping");
    for h in [
        Heuristic::Basic,
        Heuristic::RedistributeIdle,
        Heuristic::NoPostReservation,
        Heuristic::Knapsack,
    ] {
        for r in [53u32, 120] {
            let inst = Instance::new(10, 1800, r);
            group.bench_with_input(BenchmarkId::new(h.label(), r), &inst, |b, &inst| {
                b.iter(|| black_box(h.grouping(inst, &table).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let table = reference_cluster(120).timing;
    c.bench_function("analytic/best_group_R120", |b| {
        let inst = Instance::new(10, 1800, 120);
        b.iter(|| black_box(best_group(inst, &table)));
    });
}

fn bench_estimator(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let mut group = c.benchmark_group("estimate");
    for nm in [120u32, 600, 1800] {
        let inst = Instance::new(10, nm, 53);
        let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
        group.bench_with_input(BenchmarkId::new("nm", nm), &inst, |b, &inst| {
            b.iter(|| black_box(estimate(inst, &table, &grouping).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_grouping, bench_analytic, bench_estimator
}
criterion_main!(benches);
