//! Simulator benchmarks: full-schedule execution vs the aggregate
//! estimator, schedule validation, Gantt rendering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_platform::presets::reference_cluster;
use oa_sched::estimate::estimate;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sim::executor::execute_default;
use oa_sim::gantt::{render, GanttOptions};
use oa_sim::metrics::metrics;

fn bench_execute(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let mut group = c.benchmark_group("simulator");
    for nm in [120u32, 600, 1800] {
        let inst = Instance::new(10, nm, 53);
        let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
        group.bench_with_input(BenchmarkId::new("execute", nm), &inst, |b, &inst| {
            b.iter(|| black_box(execute_default(inst, &table, &grouping).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("estimate", nm), &inst, |b, &inst| {
            b.iter(|| black_box(estimate(inst, &table, &grouping).unwrap()));
        });
    }
    group.finish();
}

fn bench_validate_and_render(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let inst = Instance::new(10, 600, 53);
    let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
    let schedule = execute_default(inst, &table, &grouping).unwrap();
    c.bench_function("simulator/validate_6000_months", |b| {
        b.iter(|| schedule.validate().unwrap());
    });
    c.bench_function("simulator/metrics_6000_months", |b| {
        b.iter(|| black_box(metrics(&schedule)));
    });
    c.bench_function("simulator/gantt_6000_months", |b| {
        b.iter(|| black_box(render(&schedule, GanttOptions::default())));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_execute, bench_validate_and_render
}
criterion_main!(benches);
