//! Parallel-sweep benchmarks for the oa-par engine and the zero-alloc
//! executor hot path: single-campaign execution, a scaled-down Figure 8
//! gain sweep at 1 vs N jobs, and the knapsack candidate search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_par::Pool;
use oa_platform::presets::{benchmark_grid, reference_cluster, DEFAULT_RESOURCES};
use oa_platform::timing::TimingTable;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sim::executor::execute_default;

fn bench_single_campaign(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let inst = Instance::new(10, 1800, 53);
    let grouping = Heuristic::Knapsack.grouping(inst, &table).unwrap();
    c.bench_function("sweeps/execute_single_campaign", |b| {
        b.iter(|| black_box(execute_default(inst, &table, &grouping).unwrap()));
    });
}

/// One Figure-8 sweep point: the four heuristic makespans of every
/// benchmark cluster at resource count `r`.
fn fig8_point(r: u32, nm: u32, tables: &[TimingTable]) -> f64 {
    let inst = Instance::new(10, nm, r);
    let mut acc = 0.0;
    for t in tables {
        for h in [
            Heuristic::Basic,
            Heuristic::RedistributeIdle,
            Heuristic::NoPostReservation,
            Heuristic::Knapsack,
        ] {
            acc += h.makespan(inst, t).expect("R ≥ 11");
        }
    }
    acc
}

fn bench_fig8_sweep(c: &mut Criterion) {
    let grid = benchmark_grid(DEFAULT_RESOURCES);
    let tables: Vec<TimingTable> = grid.clusters().iter().map(|c| c.timing.clone()).collect();
    let rs: Vec<u32> = (11..=60).collect();
    let mut group = c.benchmark_group("sweeps");
    for jobs in [1usize, oa_par::available_jobs()] {
        let pool = Pool::new(jobs);
        group.bench_with_input(
            BenchmarkId::new("fig8_sweep_nm120", jobs),
            &pool,
            |b, pool| {
                b.iter(|| black_box(pool.par_map(&rs, |&r| fig8_point(r, 120, &tables))));
            },
        );
    }
    group.finish();
}

fn bench_knapsack_search(c: &mut Criterion) {
    let table = reference_cluster(120).timing;
    let inst = Instance::new(10, 1800, 97);
    c.bench_function("sweeps/knapsack_search_r97", |b| {
        b.iter(|| black_box(Heuristic::Knapsack.makespan(inst, &table).unwrap()));
    });
    let pool = Pool::new(oa_par::available_jobs());
    c.bench_function("sweeps/balanced_search_r97_par", |b| {
        b.iter(|| {
            black_box(
                Heuristic::Balanced
                    .makespan_with(inst, &table, &pool)
                    .unwrap(),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_single_campaign, bench_fig8_sweep, bench_knapsack_search
}
criterion_main!(benches);
