//! Solver micro-benchmarks: the exact DP must stay interactive (the
//! middleware re-prices campaigns on every request), and the greedy /
//! branch-and-bound alternatives bound the cost of exactness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_knapsack::{solve_branch_bound, solve_dp, solve_greedy, Item, Problem};
use oa_platform::presets::reference_cluster;

fn instance(r: u32, ns: u32) -> Problem {
    let t = reference_cluster(r.max(4)).timing;
    let items: Vec<Item> = (4..=11)
        .map(|g| Item::new(g, 1.0 / t.main_secs(g), ns))
        .collect();
    Problem::new(items, r, ns)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack");
    for r in [53u32, 120, 500, 1000] {
        let p = instance(r, 10);
        group.bench_with_input(BenchmarkId::new("dp", r), &p, |b, p| {
            b.iter(|| black_box(solve_dp(p)));
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", r), &p, |b, p| {
            b.iter(|| black_box(solve_branch_bound(p)));
        });
        group.bench_with_input(BenchmarkId::new("greedy", r), &p, |b, p| {
            b.iter(|| black_box(solve_greedy(p)));
        });
    }
    group.finish();
}

fn bench_scaling_in_ns(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack_ns");
    for ns in [5u32, 10, 20, 40] {
        let p = instance(200, ns);
        group.bench_with_input(BenchmarkId::new("dp", ns), &p, |b, p| {
            b.iter(|| black_box(solve_dp(p)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_solvers, bench_scaling_in_ns
}
criterion_main!(benches);
