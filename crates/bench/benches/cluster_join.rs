//! `ClusterJoin` pricing benchmarks: the cost of building one
//! cluster's performance vector cold versus answering it from the
//! daemon's planning memo.
//!
//! A join prices `capacity` scenario counts through the planning
//! heuristic, so large capacities make cold joins expensive — the
//! motivating case for the memo is a churny grid where clusters of
//! the same timing rectangle join repeatedly. `capacity = 1536` is
//! the stress point (6× the default 256); the memoized join must be
//! orders of magnitude cheaper and stays bitwise-equal to the cold
//! path (pinned by the `oa-sched` memo proptests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_par::Pool;
use oa_platform::cluster::ClusterId;
use oa_platform::presets::reference_cluster;
use oa_sched::hetero::performance_vector_with;
use oa_sched::heuristics::Heuristic;
use oa_sched::memo::PlanMemo;

const R: u32 = 53;
const PLANNING_NM: u32 = 60;

fn bench_cluster_join(c: &mut Criterion) {
    let table = reference_cluster(R).timing;
    let pool = Pool::serial();
    let mut group = c.benchmark_group("cluster_join");
    for capacity in [384u32, 1536] {
        group.bench_with_input(BenchmarkId::new("cold", capacity), &capacity, |b, &cap| {
            b.iter(|| {
                black_box(performance_vector_with(
                    ClusterId(0),
                    R,
                    &table,
                    Heuristic::Knapsack,
                    cap,
                    PLANNING_NM,
                    &pool,
                ));
            });
        });
        group.bench_with_input(BenchmarkId::new("memo", capacity), &capacity, |b, &cap| {
            let mut memo = PlanMemo::new();
            // Warm: the first join of this timing rectangle pays the
            // DP build; every later identical join replays it.
            let _ = memo.performance_vector(
                ClusterId(0),
                R,
                &table,
                Heuristic::Knapsack,
                cap,
                PLANNING_NM,
                &pool,
            );
            b.iter(|| {
                black_box(memo.performance_vector(
                    ClusterId(0),
                    R,
                    &table,
                    Heuristic::Knapsack,
                    cap,
                    PLANNING_NM,
                    &pool,
                ));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_cluster_join
}
criterion_main!(benches);
