//! Cost of the related-work baselines: the list scheduler's event loop,
//! CPA's allocation phase, and the full CPR loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_baselines::{cpa, cpr, cpr_batched, list_schedule, Allocations};
use oa_platform::presets::reference_cluster;
use oa_sched::params::Instance;

fn bench_list_scheduler(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let mut group = c.benchmark_group("list_sched");
    for nm in [60u32, 240, 600] {
        let inst = Instance::new(10, nm, 53);
        let allocs = Allocations::uniform(10, 5);
        group.bench_with_input(BenchmarkId::new("nm", nm), &inst, |b, &inst| {
            b.iter(|| black_box(list_schedule(inst, &table, &allocs).unwrap()));
        });
    }
    group.finish();
}

fn bench_cpa_cpr(c: &mut Criterion) {
    let table = reference_cluster(80).timing;
    let inst = Instance::new(8, 60, 80);
    c.bench_function("baselines/cpa", |b| {
        b.iter(|| black_box(cpa(inst, &table).unwrap()));
    });
    c.bench_function("baselines/cpr_single", |b| {
        b.iter(|| black_box(cpr(inst, &table).unwrap()));
    });
    c.bench_function("baselines/cpr_batched", |b| {
        b.iter(|| black_box(cpr_batched(inst, &table).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_list_scheduler, bench_cpa_cpr
}
criterion_main!(benches);
