//! Criterion benchmarks for the campaign-engine simulation kernel:
//! event-by-event execution versus the steady-state fast-forward +
//! integer-time calendar queue, on the NM = 1800 reference campaign
//! whose outputs are pinned bitwise identical by
//! `tests/kernel_equivalence.rs`, plus the workflow-IR front-end
//! (preset lowering, topological sort, critical path) at the full
//! 18,000-month canonical shape. The wall-clock matrix over more
//! campaign lengths lives in the `engine_kernel` binary
//! (`results/BENCH_engine.json`), which also records the IR timings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oa_platform::presets::reference_cluster;
use oa_sched::heuristics::Heuristic;
use oa_sched::params::Instance;
use oa_sched::policy::{CampaignConfig, FaultPlan, Granularity, Recovery, ScenarioPolicy};
use oa_sim::engine::{simulate_campaign_kernel, KernelOpts};
use oa_trace::NullTracer;
use oa_workflow::chain::ExperimentShape;
use oa_workflow::ir::{lower_fused, ReferenceDurations};

fn bench_kernel_nm1800(c: &mut Criterion) {
    let table = reference_cluster(53).timing;
    let inst = Instance::new(10, 1800, 53);
    // The homogeneous 7×7 grouping: every group runs the same monthly
    // duration, so the engine reaches a periodic steady state the
    // fast-forward can replay (heterogeneous groupings drift in phase
    // for far longer than the campaign).
    let grouping = Heuristic::Basic.grouping(inst, &table).unwrap();
    let config = CampaignConfig {
        policy: ScenarioPolicy::LeastAdvanced,
        granularity: Granularity::Fused,
        recovery: Recovery::MonthlyCheckpoint,
    };
    let plan = FaultPlan::none();
    let mut group = c.benchmark_group("engine");
    for (label, opts) in [
        ("event_by_event_nm1800", KernelOpts::event_by_event()),
        ("kernel_nm1800", KernelOpts::default()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    simulate_campaign_kernel(
                        inst,
                        &table,
                        &grouping,
                        &config,
                        &plan,
                        opts,
                        &mut NullTracer,
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_ir_nm18000(c: &mut Criterion) {
    // The IR front-end at full campaign scale: 10 scenarios × 18,000
    // months is 360,000 nodes fused. Lowering, topological sort and
    // critical path are all linear passes; the bench pins that they
    // stay cheap next to the simulation itself.
    let shape = ExperimentShape::new(10, 18_000);
    let ir = lower_fused(shape);
    let mut group = c.benchmark_group("ir");
    group.bench_function("lower_fused_nm18000", |b| {
        b.iter(|| black_box(lower_fused(black_box(shape))));
    });
    group.bench_function("topo_sort_nm18000", |b| {
        b.iter(|| black_box(ir.dag.topo_sort().unwrap()));
    });
    group.bench_function("critical_path_nm18000", |b| {
        b.iter(|| black_box(ir.critical_path(&ReferenceDurations).unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_kernel_nm1800, bench_ir_nm18000
}
criterion_main!(benches);
