//! Grid-level benchmarks: performance-vector pricing, Algorithm 1, and
//! the full middleware round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use oa_middleware::deploy::Deployment;
use oa_platform::presets::benchmark_grid;
use oa_sched::hetero::{grid_performance, repartition};
use oa_sched::heuristics::Heuristic;

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("hetero");
    for n in [2usize, 5] {
        let grid = benchmark_grid(40).take(n);
        group.bench_with_input(BenchmarkId::new("vectors_nm120", n), &grid, |b, grid| {
            b.iter(|| black_box(grid_performance(grid, Heuristic::Knapsack, 10, 120)));
        });
        let vectors = grid_performance(&grid, Heuristic::Knapsack, 10, 120);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &vectors, |b, v| {
            b.iter(|| black_box(repartition(v)));
        });
    }
    group.finish();
}

fn bench_middleware_round_trip(c: &mut Criterion) {
    let grid = benchmark_grid(30);
    let deployment = Deployment::new(&grid, Heuristic::Knapsack);
    c.bench_function("middleware/submit_10x60", |b| {
        let client = deployment.client();
        b.iter(|| black_box(client.submit(10, 60).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_planning, bench_middleware_round_trip
}
criterion_main!(benches);
