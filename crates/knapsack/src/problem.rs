//! Problem statement: bounded knapsack with a cardinality constraint.
//!
//! The paper (Section 4.2, Improvement 3) models the division of `R`
//! processors into multiprocessor groups as a knapsack: the *items*
//! are the eight possible group sizes (4 to 11 processors), an item's
//! *cost* is its processor count, its *value* is `1 / T[G]` — the
//! fraction of a main-processing task completed per second by such a
//! group — and two constraints apply: total cost at most `R`, and at
//! most `NS` groups in total (no more than `NS` tasks can ever run
//! simultaneously).
//!
//! This module states the problem in those terms but stays generic so
//! it can be tested independently of the application.

use serde::{Deserialize, Serialize};

/// One item kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Resource cost per copy (processors per group).
    pub cost: u32,
    /// Value per copy (`1 / T[G]`; any non-negative finite number).
    pub value: f64,
    /// Maximum number of copies of this item (defaults to the
    /// cardinality bound in the scheduler's use).
    pub max_copies: u32,
}

impl Item {
    /// Creates an item; panics on zero cost or non-finite/negative value
    /// (zero-cost items make the problem unbounded in spirit).
    pub fn new(cost: u32, value: f64, max_copies: u32) -> Self {
        assert!(cost > 0, "item cost must be positive");
        assert!(
            value.is_finite() && value >= 0.0,
            "item value must be finite and ≥ 0"
        );
        Self {
            cost,
            value,
            max_copies,
        }
    }
}

/// A bounded knapsack instance with a cardinality constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// The item kinds.
    pub items: Vec<Item>,
    /// Total resource budget (`R`).
    pub capacity: u32,
    /// Maximum total number of copies across all items (`NS`).
    pub max_items: u32,
}

impl Problem {
    /// Creates a problem.
    pub fn new(items: Vec<Item>, capacity: u32, max_items: u32) -> Self {
        Self {
            items,
            capacity,
            max_items,
        }
    }

    /// Effective per-item copy bound: the declared bound clamped by the
    /// cardinality constraint and by how many copies fit in the budget.
    pub fn effective_bound(&self, i: usize) -> u32 {
        let it = &self.items[i];
        it.max_copies
            .min(self.max_items)
            .min(self.capacity / it.cost)
    }
}

/// A selection: `counts[i]` copies of item `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Copies per item kind.
    pub counts: Vec<u32>,
    /// Total value of the selection.
    pub value: f64,
    /// Total cost of the selection.
    pub cost: u32,
    /// Total number of copies.
    pub copies: u32,
}

impl Solution {
    /// The empty selection for a problem with `n` item kinds.
    pub fn empty(n: usize) -> Self {
        Self {
            counts: vec![0; n],
            value: 0.0,
            cost: 0,
            copies: 0,
        }
    }

    /// Recomputes totals from `counts` against `p`, verifying
    /// feasibility. Returns `None` if infeasible.
    pub fn from_counts(p: &Problem, counts: Vec<u32>) -> Option<Self> {
        if counts.len() != p.items.len() {
            return None;
        }
        let mut value = 0.0;
        let mut cost: u64 = 0;
        let mut copies: u64 = 0;
        for (n, it) in counts.iter().zip(&p.items) {
            if *n > it.max_copies {
                return None;
            }
            value += *n as f64 * it.value;
            cost += *n as u64 * it.cost as u64;
            copies += *n as u64;
        }
        if cost > p.capacity as u64 || copies > p.max_items as u64 {
            return None;
        }
        Some(Self {
            counts,
            value,
            cost: cost as u32,
            copies: copies as u32,
        })
    }

    /// Whether this selection is feasible for `p` and its cached totals
    /// are consistent.
    pub fn is_valid_for(&self, p: &Problem) -> bool {
        match Self::from_counts(p, self.counts.clone()) {
            Some(s) => {
                (s.value - self.value).abs() <= 1e-9 * (1.0 + self.value.abs())
                    && s.cost == self.cost
                    && s.copies == self.copies
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_validation() {
        let it = Item::new(4, 0.25, 10);
        assert_eq!(it.cost, 4);
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn zero_cost_item_panics() {
        Item::new(0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_panics() {
        Item::new(1, f64::NAN, 1);
    }

    #[test]
    fn effective_bounds() {
        let p = Problem::new(vec![Item::new(4, 1.0, 100), Item::new(11, 2.0, 100)], 40, 5);
        assert_eq!(p.effective_bound(0), 5); // cardinality clamps
        assert_eq!(p.effective_bound(1), 3); // capacity clamps: ⌊40/11⌋
    }

    #[test]
    fn from_counts_checks_feasibility() {
        let p = Problem::new(vec![Item::new(4, 1.0, 10), Item::new(5, 2.0, 10)], 20, 4);
        let s = Solution::from_counts(&p, vec![2, 2]).unwrap();
        assert_eq!(s.cost, 18);
        assert_eq!(s.copies, 4);
        assert_eq!(s.value, 6.0);
        assert!(s.is_valid_for(&p));
        // Over capacity.
        assert!(Solution::from_counts(&p, vec![5, 1]).is_none());
        // Over cardinality.
        assert!(Solution::from_counts(&p, vec![3, 2]).is_none());
        // Wrong arity.
        assert!(Solution::from_counts(&p, vec![1]).is_none());
        // Over per-item bound.
        let q = Problem::new(vec![Item::new(1, 1.0, 2)], 100, 100);
        assert!(Solution::from_counts(&q, vec![3]).is_none());
    }

    #[test]
    fn tampered_solution_is_invalid() {
        let p = Problem::new(vec![Item::new(4, 1.0, 10)], 20, 4);
        let mut s = Solution::from_counts(&p, vec![2]).unwrap();
        s.value = 99.0;
        assert!(!s.is_valid_for(&p));
    }
}
