//! Greedy baseline: highest value density first.
//!
//! Not exact — used as an ablation baseline to quantify what the exact
//! DP buys the scheduler, and as a lower bound inside the
//! branch-and-bound solver.

use crate::problem::{Problem, Solution};

/// Greedily picks items by decreasing `value / cost` (ties: lower cost
/// first, then lower index), taking as many copies as fit.
pub fn solve_greedy(p: &Problem) -> Solution {
    let mut order: Vec<usize> = (0..p.items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = p.items[a].value / p.items[a].cost as f64;
        let db = p.items[b].value / p.items[b].cost as f64;
        db.total_cmp(&da)
            .then(p.items[a].cost.cmp(&p.items[b].cost))
            .then(a.cmp(&b))
    });
    let mut counts = vec![0u32; p.items.len()];
    let mut cap = p.capacity;
    let mut card = p.max_items;
    for i in order {
        if card == 0 {
            break;
        }
        let it = &p.items[i];
        let n = it.max_copies.min(card).min(cap / it.cost);
        counts[i] = n;
        cap -= n * it.cost;
        card -= n;
    }
    Solution::from_counts(p, counts).expect("greedy never exceeds the budgets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_dp;
    use crate::problem::Item;

    #[test]
    fn greedy_is_feasible() {
        let p = Problem::new(vec![Item::new(4, 2.0, 10), Item::new(7, 3.0, 10)], 25, 4);
        let s = solve_greedy(&p);
        assert!(s.is_valid_for(&p));
    }

    #[test]
    fn greedy_matches_dp_on_easy_instance() {
        let p = Problem::new(vec![Item::new(5, 10.0, 10), Item::new(5, 1.0, 10)], 20, 10);
        assert_eq!(solve_greedy(&p).counts, solve_dp(&p).counts);
    }

    #[test]
    fn greedy_can_be_suboptimal() {
        // Density favors the 7-cost item (10/7 ≈ 1.43 > 1.4), but two
        // 5-cost items fill capacity 10 exactly for value 14.
        let p = Problem::new(vec![Item::new(7, 10.0, 10), Item::new(5, 7.0, 10)], 10, 10);
        let g = solve_greedy(&p);
        let d = solve_dp(&p);
        assert!(g.value < d.value);
        assert_eq!(d.counts, vec![0, 2]);
    }

    #[test]
    fn greedy_respects_cardinality() {
        let p = Problem::new(vec![Item::new(1, 1.0, 100)], 100, 3);
        assert_eq!(solve_greedy(&p).copies, 3);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(vec![], 5, 5);
        assert_eq!(solve_greedy(&p).value, 0.0);
    }
}
