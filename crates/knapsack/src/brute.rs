//! Exhaustive oracle for tests.
//!
//! Enumerates every feasible count vector. Exponential — only for tiny
//! instances inside the test suite, where it anchors the property tests
//! comparing the DP and branch-and-bound solvers.

use crate::problem::{Problem, Solution};

/// Exhaustively finds the optimal value (with the same fewer-resources,
/// fewer-copies tie-break as the DP). Panics if the search space
/// exceeds `limit` states — a guard against accidentally running the
/// oracle on real instances.
pub fn brute_force(p: &Problem, limit: u64) -> Solution {
    let bounds: Vec<u32> = (0..p.items.len()).map(|i| p.effective_bound(i)).collect();
    let states: u64 = bounds
        .iter()
        .fold(1u64, |acc, &b| acc.saturating_mul(b as u64 + 1));
    assert!(
        states <= limit,
        "brute force space {states} exceeds limit {limit}"
    );

    let mut best = Solution::empty(p.items.len());
    let mut counts = vec![0u32; p.items.len()];
    loop {
        if let Some(s) = Solution::from_counts(p, counts.clone()) {
            let eps = 1e-12 * (1.0 + best.value.abs());
            let better = s.value > best.value + eps
                || (s.value >= best.value - eps && (s.cost, s.copies) < (best.cost, best.copies));
            if better {
                best = s;
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == counts.len() {
                return best;
            }
            if counts[i] < bounds[i] {
                counts[i] += 1;
                break;
            }
            counts[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_dp;
    use crate::problem::Item;

    #[test]
    fn oracle_matches_dp_value_on_small_instances() {
        let items = vec![
            Item::new(2, 3.0, 3),
            Item::new(3, 4.0, 3),
            Item::new(5, 9.0, 3),
        ];
        for cap in 0..=15 {
            for card in 0..=5 {
                let p = Problem::new(items.clone(), cap, card);
                let d = solve_dp(&p);
                let b = brute_force(&p, 1_000_000);
                assert!(
                    (d.value - b.value).abs() < 1e-9,
                    "cap={cap} card={card}: dp={} brute={}",
                    d.value,
                    b.value
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn oracle_refuses_large_spaces() {
        let items = vec![Item::new(1, 1.0, 1000); 8];
        brute_force(&Problem::new(items, 1000, 1000), 1_000);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(vec![], 5, 5);
        assert_eq!(brute_force(&p, 10).value, 0.0);
    }
}
