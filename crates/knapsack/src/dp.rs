//! Exact dynamic program for the bounded knapsack with a cardinality
//! constraint.
//!
//! State: `dp[c][k]` = best value using at most `c` resources and at
//! most `k` copies, considering items `0..i`. Items are processed one
//! kind at a time and every copy count `0..=bound` is tried, giving
//! `O(kinds × capacity × max_items × bound)` time — with the paper's
//! sizes (8 kinds, `R ≤ ~1000`, `NS ≈ 10`) well under a millisecond.
//!
//! Ties on value are broken toward **fewer resources**, then **fewer
//! copies**: a grouping that achieves the same throughput with spare
//! processors leaves them to post-processing, which can only help the
//! makespan. The tie-break also makes the solver deterministic, which
//! the reproduction relies on.

use crate::problem::{Item, Problem, Solution};

/// Tolerance for value comparisons: `1/T` values differ by parts in
/// `1e-4`, accumulated over ≤ a few dozen copies, so `1e-12` relative
/// is far below signal while absorbing float associativity.
const EPS: f64 = 1e-12;

#[inline]
fn better(value: f64, cost: u32, copies: u32, best: (f64, u32, u32)) -> bool {
    let (bv, bc, bk) = best;
    if value > bv + EPS * (1.0 + bv.abs()) {
        return true;
    }
    if value < bv - EPS * (1.0 + bv.abs()) {
        return false;
    }
    (cost, copies) < (bc, bk)
}

/// Solves the instance exactly. Always returns a feasible solution
/// (the empty selection when nothing fits).
pub fn solve_dp(p: &Problem) -> Solution {
    let kinds = p.items.len();
    let cap = p.capacity as usize;
    let card = p.max_items as usize;
    // dp and companion tables indexed [c * (card+1) + k].
    let cells = (cap + 1) * (card + 1);
    let idx = |c: usize, k: usize| c * (card + 1) + k;
    let mut value = vec![0.0f64; cells];
    let mut cost = vec![0u32; cells];
    let mut copies = vec![0u32; cells];
    // choice[i][cell] = copies of item i taken at this cell.
    let mut choice = vec![vec![0u16; cells]; kinds];

    let mut next_value = vec![0.0f64; cells];
    let mut next_cost = vec![0u32; cells];
    let mut next_copies = vec![0u32; cells];

    for (i, it) in p.items.iter().enumerate() {
        let bound = p.effective_bound(i) as usize;
        for c in 0..=cap {
            for k in 0..=card {
                let mut best = (f64::NEG_INFINITY, u32::MAX, u32::MAX);
                let mut best_n = 0usize;
                let n_max = bound.min(c / it.cost as usize).min(k);
                for n in 0..=n_max {
                    let pc = c - n * it.cost as usize;
                    let pk = k - n;
                    let j = idx(pc, pk);
                    let v = value[j] + n as f64 * it.value;
                    let tc = cost[j] + n as u32 * it.cost;
                    let tk = copies[j] + n as u32;
                    if better(v, tc, tk, best) {
                        best = (v, tc, tk);
                        best_n = n;
                    }
                }
                let j = idx(c, k);
                next_value[j] = best.0;
                next_cost[j] = best.1;
                next_copies[j] = best.2;
                choice[i][j] = best_n as u16;
            }
        }
        std::mem::swap(&mut value, &mut next_value);
        std::mem::swap(&mut cost, &mut next_cost);
        std::mem::swap(&mut copies, &mut next_copies);
    }

    // Reconstruct from the full-budget cell.
    let mut counts = vec![0u32; kinds];
    let (mut c, mut k) = (cap, card);
    for i in (0..kinds).rev() {
        let n = choice[i][idx(c, k)] as u32;
        counts[i] = n;
        c -= (n * p.items[i].cost) as usize;
        k -= n as usize;
    }
    Solution::from_counts(p, counts).expect("DP reconstruction is feasible by construction")
}

/// A retained DP table: one `solve_dp` sweep over the full
/// `(capacity, max_items)` rectangle whose per-kind `choice` tables are
/// kept, so any sub-instance `(c ≤ capacity, k ≤ max_items)` can be
/// answered by reconstruction alone — O(kinds) per query instead of a
/// fresh O(kinds × c × k × bound) program.
///
/// Equality contract (the planning memo relies on it): provided every
/// item's `max_copies` is at least both cardinality bounds involved,
/// [`DpTable::solve_at`]`(c, k)` returns counts and totals
/// bitwise-identical to `solve_dp(&Problem::new(items, c, k))`. At any
/// cell inside the sub-rectangle the copy bound collapses to
/// `min(c / cost, k)` in both programs, so the induction over kinds
/// visits identical `(value, cost, copies)` triples and records
/// identical choices; reconstruction then walks the same path.
///
/// Cardinality saturates at `capacity / min_cost` (no selection can
/// hold more copies), so tables are built at that cardinality and
/// [`DpTable::solve_clamped`] maps larger queries onto the saturated
/// column — see `saturated_cardinality_collapses` in the tests.
#[derive(Debug, Clone)]
pub struct DpTable {
    items: Vec<Item>,
    capacity: u32,
    max_items: u32,
    /// `choice[i][c * (max_items+1) + k]` = copies of kind `i` taken at
    /// cell `(c, k)` after processing kinds `0..=i`.
    choice: Vec<Vec<u16>>,
}

impl DpTable {
    /// Runs the DP once over the full rectangle, retaining the choice
    /// tables. Cost is the same as one `solve_dp` call at
    /// `(capacity, max_items)`; memory is
    /// `kinds × (capacity+1) × (max_items+1)` u16 cells.
    #[must_use]
    pub fn build(items: Vec<Item>, capacity: u32, max_items: u32) -> Self {
        let p = Problem::new(items, capacity, max_items);
        let kinds = p.items.len();
        let cap = p.capacity as usize;
        let card = p.max_items as usize;
        let cells = (cap + 1) * (card + 1);
        let idx = |c: usize, k: usize| c * (card + 1) + k;
        let mut value = vec![0.0f64; cells];
        let mut cost = vec![0u32; cells];
        let mut copies = vec![0u32; cells];
        let mut choice = vec![vec![0u16; cells]; kinds];

        let mut next_value = vec![0.0f64; cells];
        let mut next_cost = vec![0u32; cells];
        let mut next_copies = vec![0u32; cells];

        for (i, it) in p.items.iter().enumerate() {
            let bound = p.effective_bound(i) as usize;
            for c in 0..=cap {
                for k in 0..=card {
                    let mut best = (f64::NEG_INFINITY, u32::MAX, u32::MAX);
                    let mut best_n = 0usize;
                    let n_max = bound.min(c / it.cost as usize).min(k);
                    for n in 0..=n_max {
                        let pc = c - n * it.cost as usize;
                        let pk = k - n;
                        let j = idx(pc, pk);
                        let v = value[j] + n as f64 * it.value;
                        let tc = cost[j] + n as u32 * it.cost;
                        let tk = copies[j] + n as u32;
                        if better(v, tc, tk, best) {
                            best = (v, tc, tk);
                            best_n = n;
                        }
                    }
                    let j = idx(c, k);
                    next_value[j] = best.0;
                    next_cost[j] = best.1;
                    next_copies[j] = best.2;
                    choice[i][j] = best_n as u16;
                }
            }
            std::mem::swap(&mut value, &mut next_value);
            std::mem::swap(&mut cost, &mut next_cost);
            std::mem::swap(&mut copies, &mut next_copies);
        }

        Self {
            items: p.items,
            capacity,
            max_items,
            choice,
        }
    }

    /// The item kinds the table was built over.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The resource budget the table covers.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The cardinality bound the table covers.
    #[must_use]
    pub fn max_items(&self) -> u32 {
        self.max_items
    }

    /// The smallest item cost, or `None` for an empty item set. The
    /// cardinality of any feasible selection at budget `c` is at most
    /// `c / min_cost`, which is why tables saturate there.
    #[must_use]
    pub fn min_cost(&self) -> Option<u32> {
        self.items.iter().map(|it| it.cost).min()
    }

    /// Answers the sub-instance `(capacity, max_items)` by walking the
    /// retained choice tables — see the type docs for the equality
    /// contract. Panics if the query exceeds the table's rectangle.
    #[must_use]
    pub fn solve_at(&self, capacity: u32, max_items: u32) -> Solution {
        assert!(
            capacity <= self.capacity && max_items <= self.max_items,
            "query ({capacity}, {max_items}) outside table rectangle ({}, {})",
            self.capacity,
            self.max_items
        );
        let kinds = self.items.len();
        let card = self.max_items as usize;
        let idx = |c: usize, k: usize| c * (card + 1) + k;
        let mut counts = vec![0u32; kinds];
        let (mut c, mut k) = (capacity as usize, max_items as usize);
        for i in (0..kinds).rev() {
            let n = u32::from(self.choice[i][idx(c, k)]);
            counts[i] = n;
            c -= (n * self.items[i].cost) as usize;
            k -= n as usize;
        }
        Solution::from_counts(
            &Problem::new(self.items.clone(), capacity, max_items),
            counts,
        )
        .expect("DP reconstruction is feasible by construction")
    }

    /// [`DpTable::solve_at`] with the cardinality clamped to the
    /// saturation point `capacity / min_cost`, letting a table built at
    /// the saturated cardinality answer queries with any larger bound.
    #[must_use]
    pub fn solve_clamped(&self, capacity: u32, max_items: u32) -> Solution {
        let k = match self.min_cost() {
            Some(mc) => max_items.min(capacity / mc),
            None => 0,
        };
        self.solve_at(capacity, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Item;

    #[test]
    fn empty_problem() {
        let p = Problem::new(vec![], 10, 10);
        let s = solve_dp(&p);
        assert_eq!(s.value, 0.0);
        assert!(s.counts.is_empty());
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let p = Problem::new(vec![Item::new(4, 1.0, 10)], 0, 10);
        assert_eq!(solve_dp(&p).copies, 0);
    }

    #[test]
    fn zero_cardinality_selects_nothing() {
        let p = Problem::new(vec![Item::new(4, 1.0, 10)], 100, 0);
        assert_eq!(solve_dp(&p).copies, 0);
    }

    #[test]
    fn single_item_fills_capacity() {
        let p = Problem::new(vec![Item::new(3, 1.0, 100)], 10, 100);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![3]);
        assert_eq!(s.cost, 9);
    }

    #[test]
    fn cardinality_binds_before_capacity() {
        let p = Problem::new(vec![Item::new(3, 1.0, 100)], 100, 4);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![4]);
    }

    #[test]
    fn prefers_dense_items_under_cardinality() {
        // With at most 2 copies total, two big items beat many smalls.
        let p = Problem::new(vec![Item::new(1, 1.0, 100), Item::new(10, 5.0, 100)], 20, 2);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![0, 2]);
        assert_eq!(s.value, 10.0);
    }

    #[test]
    fn classic_tradeoff() {
        // cost/value: a=(4, 4.5), b=(5, 5.0). Capacity 13, ≤3 copies.
        // 2a+1b = cost 13, value 14 beats 1a+1b (9.5) and 2b (10).
        let p = Problem::new(vec![Item::new(4, 4.5, 9), Item::new(5, 5.0, 9)], 13, 3);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![2, 1]);
        assert!((s.value - 14.0).abs() < 1e-9);
    }

    #[test]
    fn value_ties_prefer_cheaper() {
        // Same value, different cost: pick the cheap one.
        let p = Problem::new(vec![Item::new(7, 1.0, 1), Item::new(3, 1.0, 1)], 10, 1);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![0, 1]);
        assert_eq!(s.cost, 3);
    }

    #[test]
    fn per_item_bounds_respected() {
        let p = Problem::new(vec![Item::new(2, 10.0, 2), Item::new(2, 1.0, 100)], 10, 10);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![2, 3]);
    }

    fn assert_same_solution(a: &Solution, b: &Solution) {
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.copies, b.copies);
    }

    #[test]
    fn table_matches_solve_dp_over_paper_rectangle() {
        // The scheduler's item shape: sizes 4..=11, value 1/T[G]. The
        // reference `solve_dp` side uses per-instance items with
        // `max_copies = ns` exactly as `oa_sched` heuristics build
        // them; the shared table uses the saturated cardinality.
        let t = [
            7142.0, 3782.0, 2662.0, 2102.0, 1766.0, 1542.0, 1382.0, 1262.0,
        ];
        let cap = 120u32;
        let card = cap / 4; // saturated: min cost 4
        let shared: Vec<Item> = (0..8)
            .map(|i| Item::new(4 + i as u32, 1.0 / t[i], card))
            .collect();
        let table = DpTable::build(shared, cap, card);
        for r in (0..=cap).step_by(7) {
            for ns in 1..=14u32 {
                let items: Vec<Item> = (0..8)
                    .map(|i| Item::new(4 + i as u32, 1.0 / t[i], ns))
                    .collect();
                let want = solve_dp(&Problem::new(items, r, ns));
                let got = table.solve_clamped(r, ns);
                assert_same_solution(&got, &want);
            }
        }
    }

    #[test]
    fn saturated_cardinality_collapses() {
        // Beyond capacity / min_cost extra cardinality cannot change
        // the optimum: every feasible selection is already reachable.
        let items = vec![Item::new(3, 2.0, 1000), Item::new(5, 3.5, 1000)];
        let table = DpTable::build(items.clone(), 30, 10); // 30/3 = 10
        for ns in [10u32, 11, 25, 400] {
            let want = solve_dp(&Problem::new(items.clone(), 30, ns));
            assert_same_solution(&table.solve_clamped(30, ns), &want);
        }
    }

    #[test]
    fn empty_table_answers_empty() {
        let table = DpTable::build(vec![], 10, 0);
        let s = table.solve_clamped(10, 5);
        assert!(s.counts.is_empty());
        assert_eq!(s.copies, 0);
    }

    #[test]
    #[should_panic(expected = "outside table rectangle")]
    fn out_of_rectangle_query_panics() {
        let table = DpTable::build(vec![Item::new(2, 1.0, 8)], 16, 8);
        let _ = table.solve_at(17, 8);
    }

    #[test]
    fn paper_shaped_instance() {
        // Group sizes 4..=11, value 1/T[G] with the reference Amdahl
        // table, R = 53, NS = 10 → the optimum packs 53 processors.
        let t = [
            7142.0, 3782.0, 2662.0, 2102.0, 1766.0, 1542.0, 1382.0, 1262.0,
        ];
        let items: Vec<Item> = (0..8)
            .map(|i| Item::new(4 + i as u32, 1.0 / t[i], 10))
            .collect();
        let p = Problem::new(items, 53, 10);
        let s = solve_dp(&p);
        assert!(s.is_valid_for(&p));
        assert!(s.cost <= 53);
        assert!(s.copies <= 10);
        // The knapsack must beat the basic grouping's 7 groups of 7
        // (value 7/2102) on throughput.
        assert!(s.value >= 7.0 / 2102.0 - 1e-12);
    }
}
