//! Exact dynamic program for the bounded knapsack with a cardinality
//! constraint.
//!
//! State: `dp[c][k]` = best value using at most `c` resources and at
//! most `k` copies, considering items `0..i`. Items are processed one
//! kind at a time and every copy count `0..=bound` is tried, giving
//! `O(kinds × capacity × max_items × bound)` time — with the paper's
//! sizes (8 kinds, `R ≤ ~1000`, `NS ≈ 10`) well under a millisecond.
//!
//! Ties on value are broken toward **fewer resources**, then **fewer
//! copies**: a grouping that achieves the same throughput with spare
//! processors leaves them to post-processing, which can only help the
//! makespan. The tie-break also makes the solver deterministic, which
//! the reproduction relies on.

use crate::problem::{Problem, Solution};

/// Tolerance for value comparisons: `1/T` values differ by parts in
/// `1e-4`, accumulated over ≤ a few dozen copies, so `1e-12` relative
/// is far below signal while absorbing float associativity.
const EPS: f64 = 1e-12;

#[inline]
fn better(value: f64, cost: u32, copies: u32, best: (f64, u32, u32)) -> bool {
    let (bv, bc, bk) = best;
    if value > bv + EPS * (1.0 + bv.abs()) {
        return true;
    }
    if value < bv - EPS * (1.0 + bv.abs()) {
        return false;
    }
    (cost, copies) < (bc, bk)
}

/// Solves the instance exactly. Always returns a feasible solution
/// (the empty selection when nothing fits).
pub fn solve_dp(p: &Problem) -> Solution {
    let kinds = p.items.len();
    let cap = p.capacity as usize;
    let card = p.max_items as usize;
    // dp and companion tables indexed [c * (card+1) + k].
    let cells = (cap + 1) * (card + 1);
    let idx = |c: usize, k: usize| c * (card + 1) + k;
    let mut value = vec![0.0f64; cells];
    let mut cost = vec![0u32; cells];
    let mut copies = vec![0u32; cells];
    // choice[i][cell] = copies of item i taken at this cell.
    let mut choice = vec![vec![0u16; cells]; kinds];

    let mut next_value = vec![0.0f64; cells];
    let mut next_cost = vec![0u32; cells];
    let mut next_copies = vec![0u32; cells];

    for (i, it) in p.items.iter().enumerate() {
        let bound = p.effective_bound(i) as usize;
        for c in 0..=cap {
            for k in 0..=card {
                let mut best = (f64::NEG_INFINITY, u32::MAX, u32::MAX);
                let mut best_n = 0usize;
                let n_max = bound.min(c / it.cost as usize).min(k);
                for n in 0..=n_max {
                    let pc = c - n * it.cost as usize;
                    let pk = k - n;
                    let j = idx(pc, pk);
                    let v = value[j] + n as f64 * it.value;
                    let tc = cost[j] + n as u32 * it.cost;
                    let tk = copies[j] + n as u32;
                    if better(v, tc, tk, best) {
                        best = (v, tc, tk);
                        best_n = n;
                    }
                }
                let j = idx(c, k);
                next_value[j] = best.0;
                next_cost[j] = best.1;
                next_copies[j] = best.2;
                choice[i][j] = best_n as u16;
            }
        }
        std::mem::swap(&mut value, &mut next_value);
        std::mem::swap(&mut cost, &mut next_cost);
        std::mem::swap(&mut copies, &mut next_copies);
    }

    // Reconstruct from the full-budget cell.
    let mut counts = vec![0u32; kinds];
    let (mut c, mut k) = (cap, card);
    for i in (0..kinds).rev() {
        let n = choice[i][idx(c, k)] as u32;
        counts[i] = n;
        c -= (n * p.items[i].cost) as usize;
        k -= n as usize;
    }
    Solution::from_counts(p, counts).expect("DP reconstruction is feasible by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Item;

    #[test]
    fn empty_problem() {
        let p = Problem::new(vec![], 10, 10);
        let s = solve_dp(&p);
        assert_eq!(s.value, 0.0);
        assert!(s.counts.is_empty());
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let p = Problem::new(vec![Item::new(4, 1.0, 10)], 0, 10);
        assert_eq!(solve_dp(&p).copies, 0);
    }

    #[test]
    fn zero_cardinality_selects_nothing() {
        let p = Problem::new(vec![Item::new(4, 1.0, 10)], 100, 0);
        assert_eq!(solve_dp(&p).copies, 0);
    }

    #[test]
    fn single_item_fills_capacity() {
        let p = Problem::new(vec![Item::new(3, 1.0, 100)], 10, 100);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![3]);
        assert_eq!(s.cost, 9);
    }

    #[test]
    fn cardinality_binds_before_capacity() {
        let p = Problem::new(vec![Item::new(3, 1.0, 100)], 100, 4);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![4]);
    }

    #[test]
    fn prefers_dense_items_under_cardinality() {
        // With at most 2 copies total, two big items beat many smalls.
        let p = Problem::new(vec![Item::new(1, 1.0, 100), Item::new(10, 5.0, 100)], 20, 2);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![0, 2]);
        assert_eq!(s.value, 10.0);
    }

    #[test]
    fn classic_tradeoff() {
        // cost/value: a=(4, 4.5), b=(5, 5.0). Capacity 13, ≤3 copies.
        // 2a+1b = cost 13, value 14 beats 1a+1b (9.5) and 2b (10).
        let p = Problem::new(vec![Item::new(4, 4.5, 9), Item::new(5, 5.0, 9)], 13, 3);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![2, 1]);
        assert!((s.value - 14.0).abs() < 1e-9);
    }

    #[test]
    fn value_ties_prefer_cheaper() {
        // Same value, different cost: pick the cheap one.
        let p = Problem::new(vec![Item::new(7, 1.0, 1), Item::new(3, 1.0, 1)], 10, 1);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![0, 1]);
        assert_eq!(s.cost, 3);
    }

    #[test]
    fn per_item_bounds_respected() {
        let p = Problem::new(vec![Item::new(2, 10.0, 2), Item::new(2, 1.0, 100)], 10, 10);
        let s = solve_dp(&p);
        assert_eq!(s.counts, vec![2, 3]);
    }

    #[test]
    fn paper_shaped_instance() {
        // Group sizes 4..=11, value 1/T[G] with the reference Amdahl
        // table, R = 53, NS = 10 → the optimum packs 53 processors.
        let t = [
            7142.0, 3782.0, 2662.0, 2102.0, 1766.0, 1542.0, 1382.0, 1262.0,
        ];
        let items: Vec<Item> = (0..8)
            .map(|i| Item::new(4 + i as u32, 1.0 / t[i], 10))
            .collect();
        let p = Problem::new(items, 53, 10);
        let s = solve_dp(&p);
        assert!(s.is_valid_for(&p));
        assert!(s.cost <= 53);
        assert!(s.copies <= 10);
        // The knapsack must beat the basic grouping's 7 groups of 7
        // (value 7/2102) on throughput.
        assert!(s.value >= 7.0 / 2102.0 - 1e-12);
    }
}
