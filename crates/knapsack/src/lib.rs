//! # oa-knapsack — the knapsack core of the paper's best heuristic
//!
//! "The optimal repartition of the R processors in groups on which the
//! multiprocessor tasks should be executed can be viewed as an instance
//! of the Knapsack problem with an extra constraint." (paper,
//! Section 4.2, Improvement 3)
//!
//! The instance is a *bounded knapsack with a cardinality constraint*:
//! maximize `Σ nᵢ·vᵢ` subject to `Σ nᵢ·cᵢ ≤ capacity` and
//! `Σ nᵢ ≤ max_items`. Three solvers are provided:
//!
//! * [`dp::solve_dp`] — exact dynamic program (the one the scheduler
//!   uses), deterministic tie-breaking toward cheaper selections;
//! * [`branch_bound::solve_branch_bound`] — independent exact solver
//!   used to cross-check the DP;
//! * [`greedy::solve_greedy`] — density-ordered baseline for ablations.
//!
//! [`brute::brute_force`] is a test-only oracle for tiny instances.
//!
//! ```
//! use oa_knapsack::{Item, Problem, solve_dp};
//!
//! // Groups of 4..=11 processors, value = 1/T[G], R = 53, NS = 10.
//! let t = [7142.0, 3782.0, 2662.0, 2102.0, 1766.0, 1542.0, 1382.0, 1262.0];
//! let items: Vec<Item> = (0..8).map(|i| Item::new(4 + i as u32, 1.0 / t[i], 10)).collect();
//! let best = solve_dp(&Problem::new(items, 53, 10));
//! assert!(best.cost <= 53 && best.copies <= 10);
//! ```

#![warn(missing_docs)]

pub mod branch_bound;
pub mod brute;
pub mod dp;
pub mod greedy;
pub mod problem;

pub use branch_bound::solve_branch_bound;
pub use brute::brute_force;
pub use dp::{solve_dp, DpTable};
pub use greedy::solve_greedy;
pub use problem::{Item, Problem, Solution};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_problem() -> impl Strategy<Value = Problem> {
        let item = (1u32..=12, 0.0f64..10.0, 0u32..=4)
            .prop_map(|(cost, value, max)| Item::new(cost, value, max));
        (proptest::collection::vec(item, 0..5), 0u32..=30, 0u32..=6)
            .prop_map(|(items, capacity, max_items)| Problem::new(items, capacity, max_items))
    }

    proptest! {
        #[test]
        fn dp_matches_brute_force(p in arb_problem()) {
            let d = solve_dp(&p);
            let b = brute_force(&p, 10_000_000);
            prop_assert!((d.value - b.value).abs() <= 1e-9 * (1.0 + b.value.abs()),
                "dp={} brute={}", d.value, b.value);
            // Same tie-break ⇒ identical selections.
            prop_assert_eq!(d.counts, b.counts);
        }

        #[test]
        fn branch_bound_matches_dp_value(p in arb_problem()) {
            let d = solve_dp(&p);
            let bb = solve_branch_bound(&p);
            prop_assert!((d.value - bb.value).abs() <= 1e-9 * (1.0 + d.value.abs()),
                "dp={} bb={}", d.value, bb.value);
        }

        #[test]
        fn solutions_are_always_feasible(p in arb_problem()) {
            prop_assert!(solve_dp(&p).is_valid_for(&p));
            prop_assert!(solve_greedy(&p).is_valid_for(&p));
            prop_assert!(solve_branch_bound(&p).is_valid_for(&p));
        }

        #[test]
        fn greedy_never_beats_exact(p in arb_problem()) {
            let d = solve_dp(&p);
            let g = solve_greedy(&p);
            prop_assert!(g.value <= d.value + 1e-9 * (1.0 + d.value.abs()));
        }

        #[test]
        fn retained_table_matches_solve_dp(
            items in proptest::collection::vec(
                (1u32..=9, 0.0f64..10.0).prop_map(|(c, v)| Item::new(c, v, 1000)),
                0..5,
            ),
            cap in 0u32..=30,
            queries in proptest::collection::vec((0u32..=30, 0u32..=12), 1..8),
        ) {
            // Unconstrained per-item bounds: the DpTable equality
            // contract then covers every sub-instance bitwise.
            let card = items.iter().map(|it| cap / it.cost).max().unwrap_or(0).min(cap);
            let table = DpTable::build(items.clone(), cap, card);
            for (c, k) in queries {
                let c = c.min(cap);
                let want = solve_dp(&Problem::new(items.clone(), c, k));
                let got = table.solve_clamped(c, k);
                prop_assert_eq!(&got.counts, &want.counts);
                prop_assert_eq!(got.value.to_bits(), want.value.to_bits());
                prop_assert_eq!(got.cost, want.cost);
                prop_assert_eq!(got.copies, want.copies);
            }
        }

        #[test]
        fn more_capacity_never_hurts(p in arb_problem()) {
            let base = solve_dp(&p).value;
            let mut bigger = p.clone();
            bigger.capacity += 5;
            prop_assert!(solve_dp(&bigger).value + 1e-9 >= base);
        }

        #[test]
        fn more_cardinality_never_hurts(p in arb_problem()) {
            let base = solve_dp(&p).value;
            let mut bigger = p.clone();
            bigger.max_items += 2;
            prop_assert!(solve_dp(&bigger).value + 1e-9 >= base);
        }
    }
}
