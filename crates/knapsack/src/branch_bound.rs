//! Branch-and-bound solver.
//!
//! An independent exact algorithm used to cross-check the dynamic
//! program (the two must agree on optimal *value* on every instance;
//! property tests enforce this). Depth-first search over copy counts
//! per item, pruned with the fractional (LP) upper bound of the
//! remaining subproblem, seeded with the greedy solution.

use crate::greedy::solve_greedy;
use crate::problem::{Problem, Solution};

/// Upper bound on the value attainable from items `from..` with the
/// remaining capacity and cardinality.
///
/// Neither constraint alone admits the classic density-ordered LP bound
/// (with a copy limit, value *per copy* can trump value per unit cost),
/// so we relax each constraint in turn — density-ordered fractional
/// fill ignoring the cardinality limit, and value-per-copy fill
/// ignoring the capacity limit — and take the smaller of the two valid
/// bounds.
fn fractional_bound(p: &Problem, order: &[usize], from: usize, cap: f64, card: f64) -> f64 {
    // Relax cardinality: fractional fill by density (order is density-
    // sorted), respecting per-item copy bounds and capacity.
    let mut bound_cap = 0.0;
    let mut c = cap;
    for &i in &order[from..] {
        if c <= 0.0 {
            break;
        }
        let it = &p.items[i];
        let n = (it.max_copies as f64).min(c / it.cost as f64);
        bound_cap += n * it.value;
        c -= n * it.cost as f64;
    }
    // Relax capacity: fill by value per copy, respecting per-item copy
    // bounds and the cardinality limit.
    let mut by_value: Vec<usize> = order[from..].to_vec();
    by_value.sort_by(|&a, &b| p.items[b].value.total_cmp(&p.items[a].value));
    let mut bound_card = 0.0;
    let mut k = card;
    for &i in &by_value {
        if k <= 0.0 {
            break;
        }
        let it = &p.items[i];
        let n = (it.max_copies as f64).min(k);
        bound_card += n * it.value;
        k -= n;
    }
    bound_cap.min(bound_card)
}

/// Depth-first search state: the problem, the branching order and the
/// incumbent, carried once instead of threaded through every recursive
/// call.
struct Search<'a> {
    p: &'a Problem,
    order: Vec<usize>,
    counts: Vec<u32>,
    best_value: f64,
    best_counts: Vec<u32>,
    /// Tolerance mirroring the DP's EPS so both solvers agree on ties.
    eps: f64,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, cap: u32, card: u32, value: f64) {
        if value > self.best_value + self.eps * (1.0 + self.best_value.abs()) {
            self.best_value = value;
            self.best_counts.clone_from(&self.counts);
        }
        if depth == self.order.len() || cap == 0 || card == 0 {
            return;
        }
        let bound =
            value + fractional_bound(self.p, &self.order, depth, f64::from(cap), f64::from(card));
        if bound <= self.best_value + self.eps * (1.0 + self.best_value.abs()) {
            return;
        }
        let i = self.order[depth];
        let it = &self.p.items[i];
        let n_max = it.max_copies.min(card).min(cap / it.cost);
        // Try larger counts first: good solutions early → stronger pruning.
        for n in (0..=n_max).rev() {
            self.counts[i] = n;
            self.dfs(
                depth + 1,
                cap - n * it.cost,
                card - n,
                value + f64::from(n) * it.value,
            );
        }
        self.counts[i] = 0;
    }
}

/// Solves the instance exactly by branch and bound.
pub fn solve_branch_bound(p: &Problem) -> Solution {
    // Branch in density order so the bound tightens early.
    let mut order: Vec<usize> = (0..p.items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = p.items[a].value / p.items[a].cost as f64;
        let db = p.items[b].value / p.items[b].cost as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });

    let seed = solve_greedy(p);
    let mut search = Search {
        p,
        order,
        counts: vec![0u32; p.items.len()],
        best_value: seed.value,
        best_counts: seed.counts.clone(),
        eps: 1e-12,
    };
    search.dfs(0, p.capacity, p.max_items, 0.0);
    Solution::from_counts(p, search.best_counts).expect("search only visits feasible states")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_dp;
    use crate::problem::Item;

    fn agree(p: &Problem) {
        let a = solve_dp(p);
        let b = solve_branch_bound(p);
        assert!(
            (a.value - b.value).abs() <= 1e-9 * (1.0 + a.value.abs()),
            "dp={} bb={} on {:?}",
            a.value,
            b.value,
            p
        );
    }

    #[test]
    fn agrees_with_dp_on_fixed_instances() {
        agree(&Problem::new(vec![], 10, 10));
        agree(&Problem::new(
            vec![Item::new(4, 4.5, 9), Item::new(5, 5.0, 9)],
            13,
            3,
        ));
        agree(&Problem::new(
            vec![Item::new(7, 10.0, 10), Item::new(5, 7.0, 10)],
            10,
            10,
        ));
        let t = [
            7142.0, 3782.0, 2662.0, 2102.0, 1766.0, 1542.0, 1382.0, 1262.0,
        ];
        let items: Vec<Item> = (0..8)
            .map(|i| Item::new(4 + i as u32, 1.0 / t[i], 10))
            .collect();
        for r in [11, 23, 53, 77, 110] {
            agree(&Problem::new(items.clone(), r, 10));
        }
    }

    #[test]
    fn bound_is_admissible() {
        let p = Problem::new(vec![Item::new(3, 3.0, 5), Item::new(2, 1.0, 5)], 11, 4);
        let order = vec![0usize, 1];
        let b = fractional_bound(&p, &order, 0, 11.0, 4.0);
        let opt = solve_dp(&p).value;
        assert!(b + 1e-9 >= opt);
    }

    #[test]
    fn seeded_by_greedy_never_worse_than_greedy() {
        let p = Problem::new(vec![Item::new(6, 5.0, 3), Item::new(4, 3.5, 3)], 17, 3);
        let bb = solve_branch_bound(&p);
        let g = crate::greedy::solve_greedy(&p);
        assert!(bb.value + 1e-12 >= g.value);
    }
}
