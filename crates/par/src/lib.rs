//! # oa-par — deterministic parallel sweep engine
//!
//! Every headline experiment of the paper is an embarrassingly parallel
//! sweep: `R = 11..=120` × five cluster presets × a handful of grouping
//! heuristics, each point an independent discrete-event simulation.
//! This crate provides the one primitive those sweeps need — a scoped
//! worker pool whose fan-out/fan-in is *deterministic*:
//!
//! * [`Pool::par_map`] evaluates a function over an indexed work list
//!   and returns results **in input order**, regardless of the order in
//!   which workers complete them;
//! * [`Pool::par_sweep`] does the same over a cartesian
//!   (R, preset, variant) grid, flattened row-major.
//!
//! Because each point is computed by a pure function of its input and
//! the reduction happens on the caller's side in input order, a run
//! with `jobs = N` produces **bit-identical** output to `jobs = 1`:
//! same schedules, same JSON, same golden Chrome traces. The workspace
//! pins this invariant with property tests (`tests/par_determinism.rs`).
//!
//! With `jobs = 1` (or a single-element work list) no thread is
//! spawned at all — the map runs inline, so the pool can sit on every
//! call path without a threading tax on serial runs.
//!
//! Workers are scoped (`std::thread::scope`) and pull indices from a
//! shared atomic counter, so load imbalance between points — a knapsack
//! search at `R = 120` costs far more than one at `R = 11` — is
//! absorbed without chunking heuristics. Results fan in over a
//! `crossbeam` channel tagged with their input index.
//!
//! # Examples
//!
//! ```
//! use oa_par::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Name of the environment variable overriding the default job count.
pub const JOBS_ENV: &str = "OA_JOBS";

/// A fixed-width worker pool. Cheap to construct (no threads live
/// between calls); clone-free to share (take it by reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    /// Same as [`Pool::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl Pool {
    /// A pool running `jobs` concurrent workers; `0` is clamped to `1`.
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// A single-worker pool: every map runs inline on the caller's
    /// thread. Useful inside an already-parallel outer sweep, where
    /// nested fan-out would only oversubscribe the machine.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Resolves the job count from the environment: `OA_JOBS` when set
    /// to a positive integer, otherwise the machine's available
    /// parallelism.
    pub fn from_env() -> Self {
        Self::new(env_jobs().unwrap_or_else(available_jobs))
    }

    /// Number of concurrent workers this pool runs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// The workhorse behind [`Pool::par_map`]/[`Pool::par_sweep`]:
    /// workers claim indices from an atomic counter (so uneven point
    /// costs balance automatically) and send `(index, result)` pairs
    /// back over a channel; the caller's thread writes each result
    /// into its slot. If a worker panics, the panic propagates to the
    /// caller once the scope joins.
    pub fn par_map_indices<O, F>(&self, n: usize, f: F) -> Vec<O>
    where
        O: Send,
        F: Fn(usize) -> O + Sync,
    {
        if self.jobs == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.jobs.min(n);
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, O)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx); // the workers hold the remaining senders
            for (i, o) in rx.iter() {
                out[i] = Some(o);
            }
        });
        out.into_iter()
            .map(|o| o.expect("every index was claimed and sent"))
            .collect()
    }

    /// Maps `f` over `inputs`, returning results in input order
    /// regardless of completion order.
    pub fn par_map<I, O, F>(&self, inputs: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        self.par_map_indices(inputs.len(), |i| f(&inputs[i]))
    }

    /// Maps `f` over the cartesian grid `a × b × c`, flattened
    /// row-major (`a` slowest, `c` fastest), in that deterministic
    /// order. This is the shape of the figure sweeps:
    /// (R, preset, heuristic).
    ///
    /// ```
    /// use oa_par::Pool;
    ///
    /// let got = Pool::new(2).par_sweep(&[10, 20], &["a", "b"], &[1, 2], |r, p, v| {
    ///     format!("{r}{p}{v}")
    /// });
    /// assert_eq!(got, ["10a1", "10a2", "10b1", "10b2", "20a1", "20a2", "20b1", "20b2"]);
    /// ```
    pub fn par_sweep<A, B, C, O, F>(&self, a: &[A], b: &[B], c: &[C], f: F) -> Vec<O>
    where
        A: Sync,
        B: Sync,
        C: Sync,
        O: Send,
        F: Fn(&A, &B, &C) -> O + Sync,
    {
        let (nb, nc) = (b.len(), c.len());
        self.par_map_indices(a.len() * nb * nc, |i| {
            let (ia, rem) = (i / (nb * nc), i % (nb * nc));
            f(&a[ia], &b[rem / nc], &c[rem % nc])
        })
    }
}

/// The machine's available parallelism (`1` when unknown).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The `OA_JOBS` override, when set to a positive integer.
pub fn env_jobs() -> Option<usize> {
    std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&j| j > 0)
}

/// Resolves a job count: an explicit request (e.g. a `--jobs` flag)
/// wins, then `OA_JOBS`, then the available parallelism.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&j| j > 0)
        .or_else(env_jobs)
        .unwrap_or_else(available_jobs)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let inputs: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Pool::new(jobs).par_map(&inputs, |&x| x * x);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn uneven_point_costs_still_ordered() {
        // Early indices sleep longest, so completion order is roughly
        // the reverse of input order — the output must not care.
        let inputs: Vec<u64> = (0..16).collect();
        let got = Pool::new(8).par_map(&inputs, |&x| {
            std::thread::sleep(std::time::Duration::from_micros((16 - x) * 100));
            x + 1
        });
        assert_eq!(got, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        assert_eq!(pool.par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |&x| x * 2), vec![14]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(Pool::serial().jobs(), 1);
    }

    #[test]
    fn sweep_is_row_major() {
        let pool = Pool::serial();
        let got = pool.par_sweep(&[0u32, 1], &[0u32, 1, 2], &[0u32, 1], |&a, &b, &c| {
            (a, b, c)
        });
        let mut expect = Vec::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    expect.push((a, b, c));
                }
            }
        }
        assert_eq!(got, expect);
        // And the parallel path agrees with the serial one exactly.
        let par = Pool::new(4).par_sweep(&[0u32, 1], &[0u32, 1, 2], &[0u32, 1], |&a, &b, &c| {
            (a, b, c)
        });
        assert_eq!(par, expect);
    }

    #[test]
    fn resolve_jobs_precedence() {
        // Explicit beats everything; zero explicit falls through.
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            Pool::new(2).par_map(&[1u32, 2, 3, 4], |&x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(r.is_err());
    }
}
