//! A level-synchronized co-allocation baseline (after "Resource
//! CoAllocation for Scheduling Tasks with Dependencies, in Grid",
//! arXiv:1106.5309).
//!
//! The co-allocation family schedules a DAG as synchronized *waves*:
//! all tasks of one precedence level are granted their processor sets
//! together, run together, and release together before the next level
//! starts. Within a wave the pool is divided among the members — rigid
//! tasks take their fixed share, moldable tasks split what remains as
//! evenly as the allocation ranges allow (the "co-allocation" step).
//! A level too wide for the pool is cut into successive waves in task
//! order.
//!
//! The barriers are the point of the baseline: they model the
//! all-resources-granted-at-once reservation the co-allocation
//! literature assumes, and their cost on the ocean-atmosphere mesh —
//! posts serializing behind the next month's wave instead of
//! backfilling — is exactly what the paper's grouping heuristic
//! avoids. Comparing its makespan against the knapsack heuristic and
//! HEFT quantifies that gap.

use oa_workflow::dag::NodeId;
use oa_workflow::ir::{Durations, WorkflowIr};

use crate::dag_sched::{DagRecord, DagSchedError, DagSchedule};

/// Schedules a workflow as level-synchronized co-allocated waves on
/// `r` processors.
pub fn coalloc(ir: &WorkflowIr, d: &impl Durations, r: u32) -> Result<DagSchedule, DagSchedError> {
    ir.validate().map_err(DagSchedError::Invalid)?;
    let n = ir.node_count();
    for (id, node) in ir.dag.iter() {
        if node.kind.min_procs() > r {
            return Err(DagSchedError::DoesNotFit {
                node: id,
                needs: node.kind.min_procs(),
                resources: r,
            });
        }
    }

    // Hop levels: the wave index of the synchronized execution.
    let order = ir.dag.topo_sort().expect("validated");
    let mut level = vec![0usize; n];
    for &v in &order {
        for &s in ir.dag.successors(v) {
            level[s.index()] = level[s.index()].max(level[v.index()] + 1);
        }
    }
    let depth = level.iter().max().copied().unwrap_or(0) + 1;
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); depth];
    for v in ir.dag.node_ids() {
        by_level[level[v.index()]].push(v);
    }

    let mut records = Vec::with_capacity(n);
    let mut now = 0.0f64;
    for members in &by_level {
        // Cut the level into waves that fit the pool at minimum
        // allocations, preserving task order.
        let mut wave: Vec<NodeId> = Vec::new();
        let mut need = 0u32;
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        for &v in members {
            let min = ir.dag.node(v).kind.min_procs();
            if need + min > r && !wave.is_empty() {
                waves.push(std::mem::take(&mut wave));
                need = 0;
            }
            need += min;
            wave.push(v);
        }
        if !wave.is_empty() {
            waves.push(wave);
        }

        for wave in waves {
            // Co-allocate: start from minimums, then grant spare
            // processors one at a time round-robin to moldable tasks
            // that can still grow — the even split of the pool.
            let mut alloc: Vec<u32> = wave
                .iter()
                .map(|&v| ir.dag.node(v).kind.min_procs())
                .collect();
            let mut spare = r - alloc.iter().sum::<u32>();
            loop {
                let mut granted = false;
                for (i, &v) in wave.iter().enumerate() {
                    if spare == 0 {
                        break;
                    }
                    let node = ir.dag.node(v);
                    if node.kind.is_moldable() && alloc[i] < node.kind.max_procs() {
                        alloc[i] += 1;
                        spare -= 1;
                        granted = true;
                    }
                }
                if !granted || spare == 0 {
                    break;
                }
            }

            // The wave runs as one reservation: everything starts at
            // the barrier, the barrier moves to the slowest member.
            let mut wave_end = now;
            for (i, &v) in wave.iter().enumerate() {
                let dur = ir.dag.node(v).secs(alloc[i], d);
                let end = now + dur;
                wave_end = wave_end.max(end);
                records.push(DagRecord {
                    node: v,
                    procs: alloc[i],
                    start: now,
                    end,
                });
            }
            now = wave_end;
        }
    }

    Ok(DagSchedule {
        resources: r,
        records,
        makespan: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_sched::validate_dag;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;
    use oa_workflow::chain::ExperimentShape;
    use oa_workflow::ir::{lower_fused, DurationModel, IrTaskKind};
    use oa_workflow::moldable::MoldableSpec;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn fused_mesh_waves_validate() {
        let t = reference();
        for (ns, nm, r) in [(1u32, 3u32, 11u32), (4, 6, 30), (6, 10, 53), (3, 8, 9)] {
            let ir = lower_fused(ExperimentShape::new(ns, nm));
            let s = coalloc(&ir, &t, r).unwrap();
            validate_dag(&s, &ir).unwrap_or_else(|e| panic!("{ns}x{nm} R={r}: {e}"));
        }
    }

    #[test]
    fn waves_split_the_pool_evenly() {
        // Two moldable tasks on 16 processors: 8 + 8.
        let t = reference();
        let mut ir = WorkflowIr::new();
        for name in ["a", "b"] {
            ir.add_task(
                name,
                IrTaskKind::Moldable(MoldableSpec::pcr()),
                DurationModel::MainTable,
            );
        }
        let s = coalloc(&ir, &t, 16).unwrap();
        validate_dag(&s, &ir).unwrap();
        assert_eq!(
            s.records.iter().map(|r| r.procs).collect::<Vec<_>>(),
            vec![8, 8]
        );
        assert_eq!(s.makespan, t.main_secs(8));
    }

    #[test]
    fn oversized_levels_run_as_successive_waves() {
        // Three tasks of fixed width 4 on an 8-wide pool: 2 waves.
        let t = reference();
        let mut ir = WorkflowIr::new();
        for name in ["a", "b", "c"] {
            ir.add_task(name, IrTaskKind::Rigid(4), DurationModel::Fixed(10.0));
        }
        let s = coalloc(&ir, &t, 8).unwrap();
        validate_dag(&s, &ir).unwrap();
        assert_eq!(s.makespan, 20.0, "{s:?}");
    }

    #[test]
    fn barriers_cost_more_than_the_paper_heuristic() {
        // The whole point of the baseline: on the real mesh the
        // synchronized waves leave the pool idle while the slowest
        // member finishes, so co-allocation must not beat the fastest
        // possible chain time.
        let t = reference();
        let ir = lower_fused(ExperimentShape::new(4, 12));
        let s = coalloc(&ir, &t, 53).unwrap();
        let cp = 12.0 * t.main_secs(11) + t.post_secs();
        assert!(s.makespan + 1e-9 >= cp, "{} < {cp}", s.makespan);
    }

    #[test]
    fn too_small_pools_are_rejected() {
        let t = reference();
        let ir = lower_fused(ExperimentShape::new(1, 1));
        assert!(matches!(
            coalloc(&ir, &t, 3),
            Err(DagSchedError::DoesNotFit { .. })
        ));
    }
}
