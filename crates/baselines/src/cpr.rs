//! CPR — Critical Path Reduction (Radulescu, Nicolescu, van Gemund &
//! Jonker, IPDPS 2001), adapted to the multi-chain workload.
//!
//! CPR is the one-step variant: repeatedly give one more processor to
//! a critical-path task, re-run the list scheduler, and keep the
//! change only if the *measured* makespan improved; stop otherwise.
//! With our identical chains the critical path is the scenario whose
//! chain currently finishes last, so each iteration tries to enlarge
//! that scenario's allocation.
//!
//! Unlike CPA, CPR's stopping rule consults the actual schedule, which
//! makes it stronger but much more expensive (one full list-scheduling
//! pass per trial).
//!
//! **The plateau the paper predicts.** Section 3.2 dismisses CPR
//! because "our application does not contain a single critical path
//! since all scenario simulations are independent. […] there are as
//! many critical paths as simulations." The faithful algorithm
//! demonstrates it: with `NS` identical chains, enlarging *one*
//! chain's allocation never improves the makespan (the other `NS − 1`
//! chains still finish at the old time), so every trial is rejected
//! and CPR terminates at minimum allocations. [`cpr_batched`] is the
//! natural multi-DAG repair — enlarge the whole critical front at
//! once — and is the variant the comparison bench reports.

use oa_platform::timing::TimingTable;
use oa_sched::params::Instance;
use oa_workflow::moldable::MoldableSpec;

use crate::list_sched::{list_schedule, Allocations, ListError, ListSchedule};

/// Outcome of the CPR loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CprResult {
    /// Final per-scenario allocations.
    pub allocations: Allocations,
    /// The final schedule.
    pub schedule: ListSchedule,
    /// Number of accepted enlargements.
    pub accepted_steps: u32,
    /// Number of rejected trials.
    pub rejected_steps: u32,
}

/// Runs CPR. The trial budget is bounded by `NS × range` (every
/// scenario can grow at most `max − min` times) plus one rejected trial
/// per scenario, so termination is structural.
pub fn cpr(inst: Instance, table: &TimingTable) -> Result<CprResult, ListError> {
    let spec = MoldableSpec::pcr();
    let mut allocs = Allocations::uniform(inst.ns, spec.min_procs);
    let mut schedule = list_schedule(inst, table, &allocs)?;
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    // Scenarios whose enlargement has been rejected at the current
    // makespan; retried only after an accepted step changes the field.
    let mut frozen = vec![false; inst.ns as usize];

    loop {
        // Critical scenario: last main completion per scenario.
        let mut finish = vec![0.0f64; inst.ns as usize];
        for r in &schedule.records {
            let f = &mut finish[r.scenario as usize];
            if r.end > *f {
                *f = r.end;
            }
        }
        let candidate = (0..inst.ns as usize)
            .filter(|&s| !frozen[s] && allocs.0[s] < spec.max_procs && allocs.0[s] < inst.r)
            .max_by(|&a, &b| finish[a].total_cmp(&finish[b]));
        let Some(s) = candidate else { break };

        let mut trial = allocs.clone();
        trial.0[s] += 1;
        let trial_schedule = list_schedule(inst, table, &trial)?;
        if trial_schedule.makespan < schedule.makespan - 1e-9 {
            allocs = trial;
            schedule = trial_schedule;
            accepted += 1;
            frozen.fill(false);
        } else {
            frozen[s] = true;
            rejected += 1;
        }
    }

    Ok(CprResult {
        allocations: allocs,
        schedule,
        accepted_steps: accepted,
        rejected_steps: rejected,
    })
}

/// Batched CPR: each iteration enlarges the allocation of *every*
/// scenario on the critical front (all scenarios finishing within one
/// post-task of the makespan), keeping the step only if the measured
/// makespan improves. This is the natural adaptation to workloads with
/// `NS` simultaneous critical paths.
pub fn cpr_batched(inst: Instance, table: &TimingTable) -> Result<CprResult, ListError> {
    let spec = MoldableSpec::pcr();
    let mut allocs = Allocations::uniform(inst.ns, spec.min_procs.min(inst.r));
    if allocs.0.iter().any(|&a| !spec.accepts(a)) {
        // Machine smaller than the minimum allocation.
        return list_schedule(inst, table, &Allocations::uniform(inst.ns, spec.min_procs)).map(
            |schedule| CprResult {
                allocations: Allocations::uniform(inst.ns, spec.min_procs),
                schedule,
                accepted_steps: 0,
                rejected_steps: 0,
            },
        );
    }
    let mut schedule = list_schedule(inst, table, &allocs)?;
    let mut accepted = 0u32;
    let mut rejected = 0u32;

    loop {
        let mut finish = vec![0.0f64; inst.ns as usize];
        for r in &schedule.records {
            let f = &mut finish[r.scenario as usize];
            if r.end > *f {
                *f = r.end;
            }
        }
        let front = schedule.makespan - table.post_secs() - 1e-9;
        let mut trial = allocs.clone();
        let mut grew = false;
        for (s, &fin) in finish.iter().enumerate() {
            if fin >= front && trial.0[s] < spec.max_procs && trial.0[s] < inst.r {
                trial.0[s] += 1;
                grew = true;
            }
        }
        if !grew {
            break;
        }
        let trial_schedule = list_schedule(inst, table, &trial)?;
        if trial_schedule.makespan < schedule.makespan - 1e-9 {
            allocs = trial;
            schedule = trial_schedule;
            accepted += 1;
        } else {
            rejected += 1;
            break; // one-step stopping rule, as in the original
        }
    }

    Ok(CprResult {
        allocations: allocs,
        schedule,
        accepted_steps: accepted,
        rejected_steps: rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_sched::validate;
    use oa_platform::speedup::PcrModel;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn faithful_cpr_plateaus_on_identical_chains() {
        // The empirical form of the paper's Section 3.2 argument:
        // enlarging a single chain never improves the makespan when
        // NS − 1 identical chains remain critical, so CPR rejects every
        // trial and stays at minimum allocations despite 40 processors.
        let t = reference();
        let inst = Instance::new(4, 12, 40);
        let r = cpr(inst, &t).unwrap();
        validate(&r.schedule).unwrap();
        assert_eq!(r.accepted_steps, 0);
        assert_eq!(r.allocations.0, vec![4; 4]);
    }

    #[test]
    fn batched_cpr_escapes_the_plateau() {
        let t = reference();
        let inst = Instance::new(4, 12, 40);
        let single = cpr(inst, &t).unwrap();
        let batched = cpr_batched(inst, &t).unwrap();
        validate(&batched.schedule).unwrap();
        assert!(batched.accepted_steps > 0);
        assert!(
            batched.schedule.makespan < single.schedule.makespan * 0.8,
            "batched {} vs single {}",
            batched.schedule.makespan,
            single.schedule.makespan
        );
    }

    #[test]
    fn cpr_never_worse_than_start_across_sweep() {
        let t = reference();
        for r in [12u32, 23, 47, 88] {
            let inst = Instance::new(5, 8, r);
            let start = list_schedule(inst, &t, &Allocations::uniform(5, 4)).unwrap();
            let out = cpr(inst, &t).unwrap();
            validate(&out.schedule).unwrap();
            assert!(out.schedule.makespan <= start.makespan + 1e-9, "R={r}");
        }
    }

    #[test]
    fn cpr_terminates_with_bounded_steps() {
        let t = reference();
        let inst = Instance::new(6, 6, 70);
        let out = cpr(inst, &t).unwrap();
        // At most NS × 7 enlargements possible.
        assert!(out.accepted_steps <= 42);
        assert!(out.rejected_steps <= 60);
    }

    #[test]
    fn tiny_machine_keeps_minimum_allocations() {
        let t = reference();
        let inst = Instance::new(3, 4, 4);
        let out = cpr(inst, &t).unwrap();
        assert_eq!(out.allocations.0, vec![4, 4, 4]);
        assert_eq!(out.accepted_steps, 0);
    }
}
