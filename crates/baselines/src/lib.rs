//! # oa-baselines — the related work, implemented
//!
//! Section 3 of the paper surveys mixed-parallelism schedulers and
//! argues they do not fit the Ocean-Atmosphere workload ("our
//! application does not contain a single critical path since all
//! scenario simulations are independent"). This crate implements those
//! baselines so the claim can be measured instead of asserted:
//!
//! * [`list_sched`] — a moldable list scheduler over a flat processor
//!   pool (the scheduling phase CPA/CPR rely on), with strict
//!   priority order for mains and post backfilling;
//! * [`mod@cpa`] — Critical Path and Area-based allocation (Radulescu &
//!   van Gemund, ICPP 2001) adapted to multiple chains;
//! * [`mod@cpr`] — Critical Path Reduction (Radulescu et al., IPDPS 2001),
//!   the one-step makespan-guided variant — which *plateaus* on this
//!   workload, exactly as the paper predicts — plus a batched
//!   multi-critical-path adaptation ([`cpr::cpr_batched`]);
//! * [`naive`] — the Section 3.1 strawman: one DAG at a time;
//! * [`mod@heft`] — moldable HEFT over the generalized workflow IR:
//!   upward-rank ordering with insertion-based earliest-finish
//!   placement, where the per-task choice is the allocation size;
//! * [`mod@coalloc`] — a level-synchronized co-allocation baseline (after
//!   arXiv:1106.5309): each precedence level runs as one all-granted
//!   reservation wave, the pool split evenly among its members;
//! * [`dag_sched`] — the schedule shape and validator the two IR
//!   baselines share.
//!
//! The `baselines_compare` binary in `oa-bench` runs all of them
//! against the paper's heuristics across a resource sweep.

#![warn(missing_docs)]

pub mod coalloc;
pub mod cpa;
pub mod cpr;
pub mod dag_sched;
pub mod heft;
pub mod list_sched;
pub mod naive;

pub use coalloc::coalloc;
pub use cpa::{cpa, cpa_allocations};
pub use cpr::{cpr, cpr_batched, CprResult};
pub use dag_sched::{validate_dag, DagRecord, DagSchedError, DagSchedule};
pub use heft::heft;
pub use list_sched::{list_schedule, validate, Allocations, ListError, ListRecord, ListSchedule};
pub use naive::{best_single_allocation, one_dag_at_a_time};

#[cfg(test)]
mod proptests {
    use super::*;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;
    use oa_sched::params::Instance;
    use proptest::prelude::*;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn list_schedules_always_validate(
            ns in 1u32..=8,
            nm in 1u32..=15,
            r in 11u32..=100,
            bump in proptest::collection::vec(0u32..=7, 8),
        ) {
            let inst = Instance::new(ns, nm, r);
            let allocs = Allocations(
                (0..ns as usize).map(|s| 4 + bump[s % bump.len()].min(7)).collect(),
            );
            let t = reference();
            let s = list_schedule(inst, &t, &allocs).unwrap();
            prop_assert!(validate(&s).is_ok());
            prop_assert_eq!(s.records.len() as u64, inst.nbtasks() * 2);
        }

        #[test]
        fn cpa_and_cpr_schedules_validate(ns in 1u32..=6, nm in 1u32..=10, r in 11u32..=90) {
            let inst = Instance::new(ns, nm, r);
            let t = reference();
            let a = cpa(inst, &t).unwrap();
            prop_assert!(validate(&a).is_ok());
            let b = cpr(inst, &t).unwrap();
            prop_assert!(validate(&b.schedule).is_ok());
            // CPR consults real makespans, so it can only do at least
            // as well as its own starting point; CPA has no such
            // guarantee — just check both produce finite schedules.
            prop_assert!(a.makespan.is_finite() && b.schedule.makespan.is_finite());
        }

        #[test]
        fn paper_heuristics_beat_one_at_a_time(ns in 2u32..=8, r in 22u32..=100) {
            use oa_sched::heuristics::Heuristic;
            let inst = Instance::new(ns, 6, r);
            let t = reference();
            let naive = one_dag_at_a_time(inst, &t).unwrap().makespan;
            let knapsack = Heuristic::Knapsack.makespan(inst, &t).unwrap();
            // With at least two groups' worth of processors, group
            // scheduling must not lose to full serialization.
            prop_assert!(knapsack <= naive + 1e-6,
                "knapsack {knapsack} worse than one-at-a-time {naive}");
        }
    }
}
