//! Shared schedule shape for the DAG baselines ([`mod@crate::heft`],
//! [`mod@crate::coalloc`]): tasks of a [`WorkflowIr`] pinned to start
//! times and allocation sizes on a flat pool, with a structural
//! validator mirroring the one the list scheduler has.

use oa_workflow::dag::NodeId;
use oa_workflow::ir::{IrError, WorkflowIr};

/// One scheduled IR task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagRecord {
    /// The task.
    pub node: NodeId,
    /// Processors occupied.
    pub procs: u32,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A complete DAG schedule on a flat pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSchedule {
    /// Pool size.
    pub resources: u32,
    /// Records in start order.
    pub records: Vec<DagRecord>,
    /// Latest end time.
    pub makespan: f64,
}

/// Errors from the DAG baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum DagSchedError {
    /// The workflow failed structural validation.
    Invalid(IrError),
    /// A task needs more processors than the pool has.
    DoesNotFit {
        /// The task concerned.
        node: NodeId,
        /// Its minimum allocation.
        needs: u32,
        /// Pool size.
        resources: u32,
    },
}

impl std::fmt::Display for DagSchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagSchedError::Invalid(e) => write!(f, "invalid workflow: {e}"),
            DagSchedError::DoesNotFit {
                node,
                needs,
                resources,
            } => write!(
                f,
                "node {} needs {needs} processors, the pool has {resources}",
                node.0
            ),
        }
    }
}

impl std::error::Error for DagSchedError {}

/// Validates a DAG schedule: every task exactly once, precedence
/// respected, capacity never exceeded.
pub fn validate_dag(s: &DagSchedule, ir: &WorkflowIr) -> Result<(), String> {
    let n = ir.node_count();
    if s.records.len() != n {
        return Err(format!("{} records for {n} tasks", s.records.len()));
    }
    let mut iv = vec![None; n];
    for rec in &s.records {
        if !(rec.end.is_finite() && rec.end > rec.start) {
            return Err(format!("bad interval for node {}", rec.node.0));
        }
        if iv[rec.node.index()].replace((rec.start, rec.end)).is_some() {
            return Err(format!("node {} ran twice", rec.node.0));
        }
    }
    const TOL: f64 = 1e-9;
    for v in ir.dag.node_ids() {
        let (start, _) = iv[v.index()].ok_or_else(|| format!("node {} never ran", v.0))?;
        for &p in ir.dag.predecessors(v) {
            let (_, pend) = iv[p.index()].unwrap();
            if start + TOL < pend {
                return Err(format!("node {} started before {} finished", v.0, p.0));
            }
        }
    }
    let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(n * 2);
    for rec in &s.records {
        deltas.push((rec.start, rec.procs as i64));
        deltas.push((rec.end, -(rec.procs as i64)));
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut used = 0i64;
    for (t, delta) in deltas {
        used += delta;
        if used > s.resources as i64 {
            return Err(format!(
                "capacity exceeded at t={t}: {used} > {}",
                s.resources
            ));
        }
    }
    Ok(())
}
