//! Naive multi-DAG strategies from Section 3.1 of the paper.
//!
//! "A first approach is to schedule each DAG on the resources one
//! after the other" — the whole machine works on one scenario at a
//! time. Since a chain admits no intra-scenario main parallelism, at
//! most 11 processors are ever busy with mains; the rest idle or
//! absorb posts. The paper's groups exist precisely to avoid this.

use oa_platform::timing::TimingTable;
use oa_sched::params::Instance;
use oa_workflow::moldable::MoldableSpec;

use crate::list_sched::{list_schedule, Allocations, ListError, ListSchedule};

/// Best single allocation for a lone chain on `r` processors: the one
/// minimizing `T[G]` among those that fit.
pub fn best_single_allocation(table: &TimingTable, r: u32) -> Option<u32> {
    MoldableSpec::pcr()
        .allocations()
        .filter(|&g| g <= r)
        .min_by(|&a, &b| table.main_secs(a).total_cmp(&table.main_secs(b)))
}

/// One-DAG-at-a-time: scenarios run strictly sequentially, each month
/// on the fastest allocation that fits. Implemented by scheduling a
/// single synthetic chain of `NS × NM` months and relabeling, so posts
/// still backfill as they would in reality.
pub fn one_dag_at_a_time(inst: Instance, table: &TimingTable) -> Result<ListSchedule, ListError> {
    let alloc = best_single_allocation(table, inst.r).ok_or(ListError::DoesNotFit {
        scenario: 0,
        alloc: 4,
        resources: inst.r,
    })?;
    let total_months = inst
        .nbtasks()
        .try_into()
        .expect("campaign sizes fit u32 in this reproduction");
    let chain = Instance::new(1, total_months, inst.r);
    let s = list_schedule(chain, table, &Allocations::uniform(1, alloc))?;
    // Relabel the synthetic chain back to (scenario, month) pairs.
    let records = s
        .records
        .iter()
        .map(|r| {
            let scenario = r.month / inst.nm;
            let month = r.month % inst.nm;
            crate::list_sched::ListRecord {
                scenario,
                month,
                ..*r
            }
        })
        .collect();
    Ok(ListSchedule {
        instance: inst,
        records,
        makespan: s.makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_sched::validate;
    use oa_platform::speedup::PcrModel;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn picks_the_fastest_allocation_that_fits() {
        let t = reference();
        assert_eq!(best_single_allocation(&t, 120), Some(11));
        assert_eq!(best_single_allocation(&t, 9), Some(9));
        assert_eq!(best_single_allocation(&t, 3), None);
    }

    #[test]
    fn sequential_makespan_is_roughly_linear_in_total_months() {
        let t = reference();
        let inst = Instance::new(4, 6, 40);
        let s = one_dag_at_a_time(inst, &t).unwrap();
        validate(&s).unwrap();
        let expect = 24.0 * t.main_secs(11);
        assert!(s.makespan >= expect);
        assert!(s.makespan <= expect + t.post_secs() + 1.0);
    }

    #[test]
    fn relabeled_records_cover_every_task() {
        let t = reference();
        let inst = Instance::new(3, 5, 20);
        let s = one_dag_at_a_time(inst, &t).unwrap();
        validate(&s).unwrap();
        assert_eq!(s.records.len(), 30);
    }

    #[test]
    fn group_scheduling_crushes_one_at_a_time_with_many_resources() {
        use oa_sched::heuristics::Heuristic;
        let t = reference();
        let inst = Instance::new(8, 12, 88);
        let naive = one_dag_at_a_time(inst, &t).unwrap().makespan;
        let knapsack = Heuristic::Knapsack.makespan(inst, &t).unwrap();
        // 8 parallel groups vs a single serialized chain: ~8× gap.
        assert!(
            knapsack * 4.0 < naive,
            "knapsack {knapsack} vs naive {naive}"
        );
    }
}
