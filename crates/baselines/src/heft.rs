//! A HEFT-style list scheduler over the workflow IR.
//!
//! Heterogeneous Earliest Finish Time (Topcuoglu et al., TPDS 2002)
//! adapted to moldable tasks on one flat pool: the "heterogeneity" a
//! task chooses between is not which machine but *how many
//! processors*. Tasks are ordered by upward rank (mean execution time
//! plus the heaviest downstream rank) and placed one at a time; each
//! placement tries every legal allocation and keeps the one with the
//! earliest finish time against the pool's free-capacity profile
//! (insertion-based, so a wide task does not block a narrow one from
//! slipping into an earlier hole).
//!
//! On the ocean-atmosphere mesh this is the strongest classic DAG
//! baseline: it discovers the chain structure from ranks alone. The
//! paper's knapsack heuristic still beats it on makespan because group
//! *count* selection — how many chains run at once — is exactly what
//! rank-ordered per-task placement cannot see.

use oa_workflow::dag::NodeId;
use oa_workflow::ir::{Durations, WorkflowIr};

use crate::dag_sched::{DagRecord, DagSchedError, DagSchedule};

/// Free-capacity step profile: `points[i] = (t, free)` means `free`
/// processors are available from `t` until `points[i+1].0` (the last
/// point extends to infinity).
struct Profile {
    points: Vec<(f64, u32)>,
}

impl Profile {
    fn new(r: u32) -> Self {
        Self {
            points: vec![(0.0, r)],
        }
    }

    /// Earliest start `t ≥ ready` with `need` processors free for
    /// `dur` seconds.
    fn find(&self, ready: f64, dur: f64, need: u32) -> f64 {
        let mut i = self
            .points
            .iter()
            .rposition(|&(t, _)| t <= ready)
            .unwrap_or_default();
        loop {
            let t = self.points[i].0.max(ready);
            let end = t + dur;
            // Segments are `[points[k].0, points[k+1].0)`; every one
            // intersecting `[t, end)` must hold `need` processors.
            let ok = self.points[i..]
                .iter()
                .take_while(|&&(pt, _)| pt < end)
                .all(|&(_, free)| free >= need);
            if ok {
                return t;
            }
            i += 1;
        }
    }

    /// Subtracts `need` processors over `[t, t + dur)`.
    fn take(&mut self, t: f64, dur: f64, need: u32) {
        let end = t + dur;
        self.split_at(t);
        self.split_at(end);
        // `split_at` guarantees breakpoints exactly at `t` and `end`,
        // so exact comparisons select precisely the busy segments.
        for p in &mut self.points {
            if p.0 >= t && p.0 < end {
                p.1 -= need;
            }
        }
    }

    fn split_at(&mut self, t: f64) {
        match self.points.binary_search_by(|p| p.0.total_cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                let free = self.points[i - 1].1;
                self.points.insert(i, (t, free));
            }
        }
    }
}

/// Upward ranks: mean execution time over the task's legal
/// allocations, plus the heaviest-ranked successor.
fn upward_ranks(ir: &WorkflowIr, d: &impl Durations) -> Vec<f64> {
    let order = ir.dag.topo_sort().expect("validated");
    let n = ir.node_count();
    let mut rank = vec![0.0f64; n];
    for &v in order.iter().rev() {
        let node = ir.dag.node(v);
        let (lo, hi) = (node.kind.min_procs(), node.kind.max_procs());
        let mut sum = 0.0;
        for a in lo..=hi {
            sum += node.secs(a, d);
        }
        let mean = sum / (hi - lo + 1) as f64;
        let tail = ir
            .dag
            .successors(v)
            .iter()
            .map(|s| rank[s.index()])
            .fold(0.0f64, f64::max);
        rank[v.index()] = mean + tail;
    }
    rank
}

/// Schedules a workflow with moldable HEFT on `r` processors.
pub fn heft(ir: &WorkflowIr, d: &impl Durations, r: u32) -> Result<DagSchedule, DagSchedError> {
    ir.validate().map_err(DagSchedError::Invalid)?;
    let n = ir.node_count();
    for (id, node) in ir.dag.iter() {
        if node.kind.min_procs() > r {
            return Err(DagSchedError::DoesNotFit {
                node: id,
                needs: node.kind.min_procs(),
                resources: r,
            });
        }
    }

    let rank = upward_ranks(ir, d);
    let mut order: Vec<NodeId> = ir.dag.node_ids().collect();
    // Decreasing rank; ties toward the smaller node id. Predecessors
    // always rank strictly above successors, so this is a valid
    // scheduling order.
    order.sort_by(|a, b| {
        rank[b.index()]
            .total_cmp(&rank[a.index()])
            .then(a.0.cmp(&b.0))
    });

    let mut profile = Profile::new(r);
    let mut finish = vec![0.0f64; n];
    let mut records = Vec::with_capacity(n);
    let mut makespan = 0.0f64;
    for v in order {
        let node = ir.dag.node(v);
        let ready = ir
            .dag
            .predecessors(v)
            .iter()
            .map(|p| finish[p.index()])
            .fold(0.0f64, f64::max);
        // Try every allocation; keep the earliest finish (ties toward
        // fewer processors, which the ascending scan gives us).
        let (lo, hi) = (node.kind.min_procs(), node.kind.max_procs().min(r));
        let mut best: Option<(f64, f64, u32)> = None; // (end, start, procs)
        for a in lo..=hi {
            let dur = node.secs(a, d);
            let start = profile.find(ready, dur, a);
            let end = start + dur;
            if best.is_none_or(|(be, _, _)| end + 1e-12 < be) {
                best = Some((end, start, a));
            }
        }
        let (end, start, procs) = best.expect("lo <= hi by DoesNotFit check");
        let dur = end - start;
        profile.take(start, dur, procs);
        finish[v.index()] = end;
        makespan = makespan.max(end);
        records.push(DagRecord {
            node: v,
            procs,
            start,
            end,
        });
    }
    Ok(DagSchedule {
        resources: r,
        records,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_sched::validate_dag;
    use oa_platform::speedup::PcrModel;
    use oa_platform::timing::TimingTable;
    use oa_workflow::chain::ExperimentShape;
    use oa_workflow::ir::{lower_fused, DurationModel, IrTaskKind};
    use oa_workflow::moldable::MoldableSpec;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn fused_mesh_schedules_validate() {
        let t = reference();
        for (ns, nm, r) in [(1u32, 3u32, 11u32), (4, 6, 30), (6, 10, 53), (3, 8, 9)] {
            let ir = lower_fused(ExperimentShape::new(ns, nm));
            let s = heft(&ir, &t, r).unwrap();
            validate_dag(&s, &ir).unwrap_or_else(|e| panic!("{ns}x{nm} R={r}: {e}"));
            // Never beats the critical path at the fastest allocation.
            let cp = nm as f64 * t.main_secs(11.min(r).max(4)) + t.post_secs();
            assert!(s.makespan + 1e-9 >= cp.min(s.makespan + 1.0));
        }
    }

    #[test]
    fn insertion_backfills_earlier_holes() {
        // A wide task and two narrow ones: the narrow pair fits beside
        // the wide task instead of waiting behind it.
        let t = reference();
        let mut ir = WorkflowIr::new();
        ir.add_task(
            "wide",
            IrTaskKind::Moldable(MoldableSpec {
                min_procs: 8,
                max_procs: 8,
            }),
            DurationModel::Fixed(100.0),
        );
        ir.add_task("n1", IrTaskKind::Rigid(2), DurationModel::Fixed(10.0));
        ir.add_task("n2", IrTaskKind::Rigid(2), DurationModel::Fixed(10.0));
        let s = heft(&ir, &t, 10).unwrap();
        validate_dag(&s, &ir).unwrap();
        assert_eq!(s.makespan, 100.0, "{s:?}");
    }

    #[test]
    fn chains_are_discovered_from_ranks() {
        // Two chains of 2 on a pool fitting both at max width: the
        // schedule should run them in parallel.
        let t = reference();
        let mut ir = WorkflowIr::new();
        for c in 0..2 {
            let a = ir.add_task(
                &format!("c{c}a"),
                IrTaskKind::Moldable(MoldableSpec::pcr()),
                DurationModel::MainTable,
            );
            let b = ir.add_task(
                &format!("c{c}b"),
                IrTaskKind::Moldable(MoldableSpec::pcr()),
                DurationModel::MainTable,
            );
            ir.add_dep(a, b).unwrap();
        }
        let s = heft(&ir, &t, 22).unwrap();
        validate_dag(&s, &ir).unwrap();
        assert!((s.makespan - 2.0 * t.main_secs(11)).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn too_small_pools_are_rejected() {
        let t = reference();
        let ir = lower_fused(ExperimentShape::new(1, 1));
        assert!(matches!(
            heft(&ir, &t, 3),
            Err(DagSchedError::DoesNotFit { .. })
        ));
    }
}
