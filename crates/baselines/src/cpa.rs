//! CPA — Critical Path and Area-based scheduling (Radulescu & van
//! Gemund, ICPP 2001), adapted to the multi-chain workload.
//!
//! The paper's related work (Section 3.2) dismisses CPA because "our
//! application does not contain a single critical path since all
//! scenario simulations are independent". We implement it anyway as a
//! quantitative baseline, with the canonical multi-DAG adaptation:
//! the critical path is the *longest remaining chain over all
//! scenarios*, and the area is the total work over `R` processors.
//!
//! Allocation phase (classic CPA): start every moldable task at its
//! minimum allocation; while `CP > Area`, give one more processor to
//! the critical-path task whose enlargement most reduces `CP` per
//! added processor. With identical chains the critical path rotates
//! across scenarios, so allocations grow in a round-robin fashion —
//! exactly what the general algorithm would do, computed directly.
//! Scheduling phase: the list scheduler of [`crate::list_sched`].

use oa_platform::timing::TimingTable;
use oa_sched::params::Instance;
use oa_workflow::moldable::MoldableSpec;

use crate::list_sched::{list_schedule, Allocations, ListError, ListSchedule};

/// Per-scenario chain length (the scenario's critical path).
fn chain_secs(inst: Instance, table: &TimingTable, alloc: u32) -> f64 {
    inst.nm as f64 * table.main_secs(alloc) + table.post_secs()
}

/// Total work (processor-seconds) over the whole campaign for an
/// allocation vector.
fn area(inst: Instance, table: &TimingTable, allocs: &[u32]) -> f64 {
    let posts = inst.nbtasks() as f64 * table.post_secs();
    let mains: f64 = allocs
        .iter()
        .map(|&a| inst.nm as f64 * table.main_secs(a) * a as f64)
        .sum();
    (mains + posts) / inst.r as f64
}

/// The CPA allocation phase: returns per-scenario allocations.
pub fn cpa_allocations(inst: Instance, table: &TimingTable) -> Allocations {
    let spec = MoldableSpec::pcr();
    let min = spec.min_procs.min(inst.r).max(spec.min_procs);
    let mut allocs = vec![min; inst.ns as usize];
    loop {
        // Critical path: the longest chain.
        let (cp_scenario, cp) = allocs
            .iter()
            .enumerate()
            .map(|(s, &a)| (s, chain_secs(inst, table, a)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("ns ≥ 1");
        if cp <= area(inst, table, &allocs) {
            break;
        }
        let a = allocs[cp_scenario];
        if a >= spec.max_procs || a + 1 > inst.r {
            // The CP task cannot grow further; CPA stops (no other
            // task's growth can shorten the CP).
            break;
        }
        allocs[cp_scenario] = a + 1;
    }
    Allocations(allocs)
}

/// Full CPA: allocation phase + list scheduling.
pub fn cpa(inst: Instance, table: &TimingTable) -> Result<ListSchedule, ListError> {
    list_schedule(inst, table, &cpa_allocations(inst, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_sched::validate;
    use oa_platform::speedup::PcrModel;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    #[test]
    fn allocations_grow_with_resources() {
        let t = reference();
        let small = cpa_allocations(Instance::new(4, 24, 16), &t);
        let big = cpa_allocations(Instance::new(4, 24, 120), &t);
        let sum_small: u32 = small.0.iter().sum();
        let sum_big: u32 = big.0.iter().sum();
        assert!(sum_big > sum_small, "{small:?} vs {big:?}");
    }

    #[test]
    fn allocations_balanced_across_identical_chains() {
        let t = reference();
        let a = cpa_allocations(Instance::new(5, 24, 60), &t);
        let min = a.0.iter().min().unwrap();
        let max = a.0.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "round-robin growth should stay balanced: {a:?}"
        );
    }

    #[test]
    fn cpa_schedule_is_valid() {
        let t = reference();
        for r in [13u32, 30, 53, 90] {
            let inst = Instance::new(6, 12, r);
            let s = cpa(inst, &t).unwrap();
            validate(&s).unwrap_or_else(|e| panic!("R={r}: {e}"));
            assert!(s.makespan > 0.0);
        }
    }

    #[test]
    fn area_accounts_for_posts_and_allocations() {
        let t = reference();
        let inst = Instance::new(2, 3, 10);
        let a4 = area(inst, &t, &[4, 4]);
        let a8 = area(inst, &t, &[8, 8]);
        // With this curve the 3 sequential components waste the most
        // processor-seconds at *small* allocations (they idle while one
        // atmosphere processor grinds), so the area shrinks as groups
        // grow — until communication overhead would win again.
        assert!(a4 > a8, "a4 {a4} vs a8 {a8}");
    }
}
