//! A moldable list scheduler over a flat processor pool.
//!
//! The mixed-parallelism heuristics of the paper's related work (CPA,
//! CPR — Radulescu et al.) split scheduling into an *allocation* phase
//! (how many processors per moldable task) and a *list-scheduling*
//! phase (when and where each task runs). This module provides the
//! second phase for the Ocean-Atmosphere workload: scenario chains
//! whose main tasks carry per-scenario allocations, plus
//! single-processor post tasks.
//!
//! Policy (deterministic, documented):
//!
//! * main tasks are started in strict priority order — the scenario
//!   with the most *remaining work* first (its remaining chain is the
//!   bottom level); if the top-priority ready main does not fit in the
//!   free processors, no lower-priority main jumps the queue;
//! * post tasks backfill: any processor left free after the main pass
//!   takes a queued post (FIFO). `TP ≪ TG`, so this cheap backfilling
//!   never distorts the comparison materially.
//!
//! Unlike the paper's group scheduler, processors are a fungible pool:
//! a main may run on any `alloc` free processors. Capacity and
//! dependences are validated after the fact by [`validate`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use oa_platform::timing::TimingTable;
use oa_sched::params::Instance;
use oa_sched::time::{time_key, Time, TimeKey};
use oa_workflow::moldable::MoldableSpec;

/// Per-scenario allocation vector for the main tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocations(pub Vec<u32>);

impl Allocations {
    /// Uniform allocation for `ns` scenarios.
    pub fn uniform(ns: u32, alloc: u32) -> Self {
        Self(vec![alloc; ns as usize])
    }
}

/// One scheduled task (lightweight record for validation and metrics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ListRecord {
    /// Scenario index.
    pub scenario: u32,
    /// Month index.
    pub month: u32,
    /// Whether this is a main task (else post).
    pub main: bool,
    /// Processors occupied.
    pub procs: u32,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Outcome of a list-scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListSchedule {
    /// The instance scheduled.
    pub instance: Instance,
    /// All task records.
    pub records: Vec<ListRecord>,
    /// Campaign makespan.
    pub makespan: f64,
}

/// Errors from list scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListError {
    /// An allocation is outside 4..=11.
    BadAllocation {
        /// Scenario index.
        scenario: u32,
        /// Requested allocation.
        alloc: u32,
    },
    /// An allocation exceeds the machine.
    DoesNotFit {
        /// Scenario index.
        scenario: u32,
        /// Requested allocation.
        alloc: u32,
        /// Processors available.
        resources: u32,
    },
    /// Wrong allocation-vector length.
    WrongArity {
        /// Expected value.
        expect: usize,
        /// Actual value.
        got: usize,
    },
}

impl std::fmt::Display for ListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListError::BadAllocation { scenario, alloc } => {
                write!(f, "scenario {scenario}: allocation {alloc} outside 4..=11")
            }
            ListError::DoesNotFit {
                scenario,
                alloc,
                resources,
            } => {
                write!(
                    f,
                    "scenario {scenario}: allocation {alloc} > {resources} processors"
                )
            }
            ListError::WrongArity { expect, got } => {
                write!(
                    f,
                    "allocation vector has {got} entries, instance needs {expect}"
                )
            }
        }
    }
}

impl std::error::Error for ListError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Done {
    Main(u32),
    Post,
}

/// Runs the list scheduler.
pub fn list_schedule(
    inst: Instance,
    table: &TimingTable,
    allocs: &Allocations,
) -> Result<ListSchedule, ListError> {
    if allocs.0.len() != inst.ns as usize {
        return Err(ListError::WrongArity {
            expect: inst.ns as usize,
            got: allocs.0.len(),
        });
    }
    let spec = MoldableSpec::pcr();
    for (s, &a) in allocs.0.iter().enumerate() {
        if !spec.accepts(a) {
            return Err(ListError::BadAllocation {
                scenario: s as u32,
                alloc: a,
            });
        }
        if a > inst.r {
            return Err(ListError::DoesNotFit {
                scenario: s as u32,
                alloc: a,
                resources: inst.r,
            });
        }
    }

    let tp = table.post_secs();
    let dur: Vec<f64> = allocs.0.iter().map(|&a| table.main_secs(a)).collect();

    // Scenario state.
    let mut months_done = vec![0u32; inst.ns as usize];
    let mut running = vec![false; inst.ns as usize];
    let mut free = inst.r;
    // Completion events.
    let mut events: BinaryHeap<TimeKey<(u32, Done)>> = BinaryHeap::new();
    let mut posts: VecDeque<(f64, u32, u32)> = VecDeque::new(); // (ready, scenario, month)
    let mut records = Vec::with_capacity(inst.nbtasks() as usize * 2);
    let mut makespan = 0.0f64;

    // Remaining-work priority: (nm − done) × dur; recomputed on demand
    // since allocations are per-scenario constants.
    let remaining = |s: usize, months_done: &[u32]| (inst.nm - months_done[s]) as f64 * dur[s] + tp;

    let mut now = 0.0f64;
    loop {
        // Start mains in strict priority order.
        loop {
            let mut best: Option<usize> = None;
            for s in 0..inst.ns as usize {
                if running[s] || months_done[s] >= inst.nm {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (rb, rs) = (remaining(b, &months_done), remaining(s, &months_done));
                        rs > rb + 1e-12 || (rs > rb - 1e-12 && s < b)
                    }
                };
                if better {
                    best = Some(s);
                }
            }
            let Some(s) = best else { break };
            if allocs.0[s] > free {
                break; // strict order: the head blocks
            }
            free -= allocs.0[s];
            running[s] = true;
            let end = now + dur[s];
            records.push(ListRecord {
                scenario: s as u32,
                month: months_done[s],
                main: true,
                procs: allocs.0[s],
                start: now,
                end,
            });
            events.push(time_key(end, (s as u32, Done::Main(months_done[s]))));
        }
        // Backfill posts on whatever is left.
        while free > 0 {
            let Some(&(ready, s, m)) = posts.front() else {
                break;
            };
            debug_assert!(ready <= now + 1e-9);
            posts.pop_front();
            free -= 1;
            let end = now + tp;
            records.push(ListRecord {
                scenario: s,
                month: m,
                main: false,
                procs: 1,
                start: now,
                end,
            });
            events.push(time_key(end, (s, Done::Post)));
        }

        // Advance time.
        let Some(Reverse((Time(t), (s, done)))) = events.pop() else {
            break;
        };
        now = t;
        makespan = makespan.max(t);
        match done {
            Done::Main(m) => {
                let s = s as usize;
                free += allocs.0[s];
                running[s] = false;
                months_done[s] += 1;
                posts.push_back((t, s as u32, m));
            }
            Done::Post => free += 1,
        }
    }

    Ok(ListSchedule {
        instance: inst,
        records,
        makespan,
    })
}

/// Validates a list schedule: every task exactly once, dependences
/// respected, processor capacity never exceeded.
pub fn validate(s: &ListSchedule) -> Result<(), String> {
    let inst = s.instance;
    let n = inst.nbtasks() as usize;
    let idx = |sc: u32, m: u32| sc as usize * inst.nm as usize + m as usize;
    let mut main_seen = vec![0u8; n];
    let mut post_seen = vec![0u8; n];
    let mut main_iv = vec![(0.0f64, 0.0f64); n];
    for r in &s.records {
        let i = idx(r.scenario, r.month);
        if r.main {
            main_seen[i] += 1;
            main_iv[i] = (r.start, r.end);
        } else {
            post_seen[i] += 1;
        }
        if r.end <= r.start {
            return Err(format!("empty interval for s{}m{}", r.scenario, r.month));
        }
    }
    if main_seen.iter().any(|&c| c != 1) || post_seen.iter().any(|&c| c != 1) {
        return Err("wrong multiplicity".into());
    }
    const TOL: f64 = 1e-9;
    for sc in 0..inst.ns {
        for m in 1..inst.nm {
            if main_iv[idx(sc, m)].0 + TOL < main_iv[idx(sc, m - 1)].1 {
                return Err(format!("chain violated at s{sc}m{m}"));
            }
        }
    }
    for r in s.records.iter().filter(|r| !r.main) {
        if r.start + TOL < main_iv[idx(r.scenario, r.month)].1 {
            return Err(format!("post before main at s{}m{}", r.scenario, r.month));
        }
    }
    // Capacity sweep.
    let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(s.records.len() * 2);
    for r in &s.records {
        deltas.push((r.start, r.procs as i64));
        deltas.push((r.end, -(r.procs as i64)));
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut used = 0i64;
    for (t, d) in deltas {
        used += d;
        if used > inst.r as i64 {
            return Err(format!("capacity exceeded at t={t}: {used} > {}", inst.r));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::speedup::PcrModel;

    fn reference() -> TimingTable {
        PcrModel::reference().table(1.0).unwrap()
    }

    fn flat(tg: f64, tp: f64) -> TimingTable {
        TimingTable::new([tg; 8], tp).unwrap()
    }

    #[test]
    fn single_chain_runs_back_to_back() {
        let inst = Instance::new(1, 4, 10);
        let s = list_schedule(inst, &flat(100.0, 10.0), &Allocations::uniform(1, 4)).unwrap();
        validate(&s).unwrap();
        assert_eq!(s.makespan, 410.0);
    }

    #[test]
    fn two_chains_share_the_pool() {
        // R = 8 fits two mains of 4 concurrently.
        let inst = Instance::new(2, 3, 8);
        let s = list_schedule(inst, &flat(100.0, 10.0), &Allocations::uniform(2, 4)).unwrap();
        validate(&s).unwrap();
        assert_eq!(s.makespan, 310.0);
    }

    #[test]
    fn head_of_line_blocking_is_respected() {
        // R = 11: one main of 8 runs; a main of 4 cannot start even
        // though it is ready (strict order, both same priority at t=0 →
        // scenario 0 first). Scenario 1 (alloc 4) would fit in the
        // remaining 3? No: 11 − 8 = 3 < 4, so true blocking anyway;
        // check serialization.
        let inst = Instance::new(2, 2, 11);
        let allocs = Allocations(vec![8, 4]);
        let s = list_schedule(inst, &flat(100.0, 10.0), &allocs).unwrap();
        validate(&s).unwrap();
        // Chains interleave: s0m0 [0,100], s1m0 [100,200], …
        assert!(s.makespan >= 400.0);
    }

    #[test]
    fn posts_backfill_free_processors() {
        let inst = Instance::new(1, 3, 5);
        let s = list_schedule(inst, &flat(100.0, 10.0), &Allocations::uniform(1, 4)).unwrap();
        validate(&s).unwrap();
        // Posts of months 0 and 1 run on the 5th processor while the
        // next month runs: makespan = 300 + 10 (last post).
        assert_eq!(s.makespan, 310.0);
    }

    #[test]
    fn validation_catches_bad_allocations() {
        let inst = Instance::new(2, 2, 10);
        assert!(matches!(
            list_schedule(inst, &reference(), &Allocations(vec![3, 4])),
            Err(ListError::BadAllocation { .. })
        ));
        assert!(matches!(
            list_schedule(inst, &reference(), &Allocations(vec![11, 4])),
            Err(ListError::DoesNotFit { .. })
        ));
        assert!(matches!(
            list_schedule(inst, &reference(), &Allocations(vec![4])),
            Err(ListError::WrongArity { .. })
        ));
    }

    #[test]
    fn longest_remaining_chain_goes_first() {
        // Unequal allocations ⇒ unequal chain lengths; the slow chain
        // (smaller alloc, longer remaining work) must get priority.
        let inst = Instance::new(2, 5, 8);
        let allocs = Allocations(vec![4, 8]);
        let t = reference();
        let s = list_schedule(inst, &t, &allocs).unwrap();
        validate(&s).unwrap();
        let first = s
            .records
            .iter()
            .min_by(|a, b| a.start.total_cmp(&b.start))
            .unwrap();
        assert_eq!(first.scenario, 0, "slow chain should start first");
    }

    #[test]
    fn tampered_schedule_fails_validation() {
        let inst = Instance::new(2, 2, 8);
        let mut s = list_schedule(inst, &flat(50.0, 5.0), &Allocations::uniform(2, 4)).unwrap();
        s.records[0].end = s.records[0].start;
        assert!(validate(&s).is_err());
    }
}
