//! `oa-analyze` — static diagnostics for the ocean-atmosphere scheduler.
//!
//! A rule-based verification engine modeled on rustc's lints: every
//! check has a stable code (`OA001`…), a severity, a structured
//! location and a human-readable message, and every checker *collects*
//! all violations in one pass instead of failing fast. The rules cover
//! six layers of the stack:
//!
//! | Layer      | Rules               | What they verify                                  |
//! |------------|---------------------|---------------------------------------------------|
//! | workflow   | OA001–OA003, OA019–OA021 | fused-DAG acyclicity, chain completeness, fusion; IR validity, preset drift, data-flow payloads ([`ir`]) |
//! | scheduling | OA004–OA007, OA018  | group sizes, accounting, estimator cross-checks, campaign configs |
//! | schedule   | OA008–OA015         | multiplicity, dependences, exclusivity, idleness  |
//! | platform   | OA016–OA017         | cluster sanity, inter-month bandwidth feasibility |
//! | source     | ND001–ND007         | reproducibility hazards in the workspace's own Rust sources ([`audit`]) |
//! | certify    | CT001–CT002         | static makespan bounds bracket the engine; kernel verdicts agree ([`certify`]) |
//!
//! The simulator (`oa-sim`) rebuilds its `Schedule::validate` API on
//! top of [`schedule::check_schedule`]; the `oa analyze` CLI subcommand
//! runs the data layers over a planned campaign, and `oa audit` runs
//! the [`audit`] source scan and the [`certify`] pass. Both exit
//! nonzero when any error-severity diagnostic fires.
//!
//! # Examples
//!
//! ```
//! use oa_platform::prelude::*;
//! use oa_sched::prelude::*;
//!
//! let table = PcrModel::reference().table(1.0).unwrap();
//! let inst = Instance::new(10, 1800, 53);
//!
//! // A planned grouping passes the scheduling-layer rules…
//! let good = Heuristic::Knapsack.grouping(inst, &table).unwrap();
//! let mut report = oa_analyze::Report::new();
//! report.extend(oa_analyze::scheduling::check_grouping(inst, &table, &good));
//! assert!(!report.has_errors());
//!
//! // …while an oversubscribed one is collected, not panicked on.
//! let bad = Grouping::new(vec![8; 7], 4); // 60 procs > R = 53
//! let mut report = oa_analyze::Report::new();
//! report.extend(oa_analyze::scheduling::check_grouping(inst, &table, &bad));
//! assert!(report.has_errors());
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod certify;
pub mod diag;
pub mod ir;
pub mod platform;
pub mod schedule;
pub mod scheduling;
pub mod workflow;

pub use diag::{Diagnostic, Layer, Location, Quantity, Report, RuleCode, Severity};

/// One row of the rule catalog.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable code (`OA001`…).
    pub code: &'static str,
    /// Layer the rule inspects.
    pub layer: Layer,
    /// Default severity when the rule fires.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full rule catalog, in code order — the source of truth behind
/// `oa analyze --rules` and the documentation table.
pub fn catalog() -> Vec<RuleInfo> {
    RuleCode::ALL
        .iter()
        .map(|&r| RuleInfo {
            code: r.code(),
            layer: r.layer(),
            severity: r.default_severity(),
            summary: r.summary(),
        })
        .collect()
}

/// Renders the catalog as an aligned text table.
pub fn render_catalog() -> String {
    let mut out = String::from("CODE   LAYER       SEVERITY  RULE\n");
    for r in catalog() {
        out.push_str(&format!(
            "{:<6} {:<11} {:<9} {}\n",
            r.code,
            r.layer.to_string(),
            r.severity.to_string(),
            r.summary
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_rules_and_layers() {
        let cat = catalog();
        assert_eq!(cat.len(), 30);
        for layer in [
            Layer::Workflow,
            Layer::Scheduling,
            Layer::Schedule,
            Layer::Platform,
            Layer::Source,
            Layer::Certify,
        ] {
            assert!(cat.iter().any(|r| r.layer == layer));
        }
        let text = render_catalog();
        assert!(text.contains("OA001") && text.contains("OA018"), "{text}");
        assert!(text.contains("OA019") && text.contains("OA021"), "{text}");
        assert!(text.contains("ND001") && text.contains("CT002"), "{text}");
    }
}
