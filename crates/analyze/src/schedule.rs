//! Schedule-layer rules (OA008–OA015): concrete schedules.
//!
//! The checks generalize `oa-sim`'s original fail-fast
//! `Schedule::validate` into collect-all diagnostics, preserving its
//! exact semantics and check order (per-record interval/range/size,
//! then multiplicity, then dependences, then processor exclusivity) so
//! the simulator can rebuild its first-error API on top of this module.
//! Two advisory rules ride along: OA014 flags groups that idle away
//! more than a tenth of their active window, OA015 flags post tasks
//! that starve far behind the month that produced their input.
//!
//! The module defines its own [`ScheduleView`] instead of depending on
//! `oa-sim`'s `Schedule` — the simulator depends on this crate, not the
//! other way around.

use crate::diag::{Diagnostic, Location, RuleCode};

/// Absolute slack tolerated on time comparisons, seconds.
pub const TOL: f64 = 1e-9;
/// Fraction of a group's active window it may spend idle before OA014
/// warns.
pub const IDLE_WARN_FRACTION: f64 = 0.10;
/// OA015 fires when a post's queueing delay exceeds this many median
/// post durations…
pub const STARVATION_MEDIANS: f64 = 10.0;
/// …and this fraction of the campaign makespan.
pub const STARVATION_MAKESPAN_FRACTION: f64 = 0.2;

/// One scheduled task, decoupled from the simulator's record type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSlot {
    /// Scenario index.
    pub scenario: u32,
    /// Month index.
    pub month: u32,
    /// Post-processing task (`false` = fused main task).
    pub is_post: bool,
    /// First processor id occupied.
    pub first_proc: u32,
    /// Number of processors occupied.
    pub proc_count: u32,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Multiprocessor group that ran it (`None` for pool processors).
    pub group: Option<u32>,
}

impl TaskSlot {
    fn location(&self) -> Location {
        if self.is_post {
            Location::post(self.scenario, self.month)
        } else {
            Location::main(self.scenario, self.month)
        }
        .on_procs(self.first_proc, self.proc_count)
    }
}

/// A schedule as the analyzer sees it: the instance dimensions plus
/// every slot, in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleView {
    /// `NS`: number of scenarios.
    pub ns: u32,
    /// `NM`: months per scenario.
    pub nm: u32,
    /// `R`: processors on the cluster.
    pub r: u32,
    /// All task slots (mains and posts).
    pub slots: Vec<TaskSlot>,
}

/// Runs OA008–OA015 over a schedule, collecting every finding.
pub fn check_schedule(view: &ScheduleView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ns = view.ns as usize;
    let nm = view.nm as usize;
    let expected = ns * nm;

    // Pass 1 — per-record checks, in record order: OA012 interval,
    // OA011 processor range, OA013 main group size. A record outside
    // the experiment shape cannot be indexed and is itself an OA008.
    let index = |s: u32, m: u32, post: bool| (s as usize * nm + m as usize) * 2 + usize::from(post);
    let mut seen: Vec<u32> = vec![0; expected * 2];
    for slot in &view.slots {
        if !slot.start.is_finite() || !slot.end.is_finite() || slot.end <= slot.start {
            out.push(
                Diagnostic::new(
                    RuleCode::BadInterval,
                    format!(
                        "interval [{}, {}] is not a positive finite span",
                        slot.start, slot.end
                    ),
                )
                .at(slot.location())
                .with("start", slot.start)
                .with("end", slot.end),
            );
        }
        if slot.proc_count == 0
            || u64::from(slot.first_proc) + u64::from(slot.proc_count) > u64::from(view.r)
        {
            out.push(
                Diagnostic::new(
                    RuleCode::ProcOutOfRange,
                    format!(
                        "uses processors [{}, {}) on a cluster of R = {}",
                        slot.first_proc,
                        u64::from(slot.first_proc) + u64::from(slot.proc_count),
                        view.r
                    ),
                )
                .at(slot.location()),
            );
        }
        if !slot.is_post && !(4..=11).contains(&slot.proc_count) {
            out.push(
                Diagnostic::new(
                    RuleCode::ScheduledGroupSize,
                    format!(
                        "main task ran on {} processor(s), outside 4..=11",
                        slot.proc_count
                    ),
                )
                .at(slot.location())
                .with("size", f64::from(slot.proc_count)),
            );
        }
        if slot.scenario as usize >= ns || slot.month as usize >= nm {
            out.push(
                Diagnostic::new(
                    RuleCode::WrongMultiplicity,
                    format!(
                        "task lies outside the {}x{} experiment shape",
                        view.ns, view.nm
                    ),
                )
                .at(slot.location()),
            );
        } else {
            let i = index(slot.scenario, slot.month, slot.is_post);
            seen[i] = seen[i].saturating_add(1);
        }
    }

    // Pass 2 — OA008 multiplicity: every task exactly once.
    for s in 0..view.ns {
        for m in 0..view.nm {
            for post in [false, true] {
                let c = seen[index(s, m, post)];
                if c != 1 {
                    let loc = if post {
                        Location::post(s, m)
                    } else {
                        Location::main(s, m)
                    };
                    out.push(
                        Diagnostic::new(
                            RuleCode::WrongMultiplicity,
                            format!("task is scheduled {c} time(s), expected exactly once"),
                        )
                        .at(loc)
                        .with("count", f64::from(c)),
                    );
                }
            }
        }
    }

    // Pass 3 — OA009 dependences: main(s,m-1) → main(s,m) → post(s,m).
    // Last record wins when a task appears several times, matching the
    // original simulator sweep.
    let midx = |s: u32, m: u32| s as usize * nm + m as usize;
    let mut main_end = vec![0.0f64; expected];
    let mut main_start = vec![0.0f64; expected];
    for slot in view.slots.iter().filter(|t| !t.is_post) {
        if (slot.scenario as usize) < ns && (slot.month as usize) < nm {
            main_end[midx(slot.scenario, slot.month)] = slot.end;
            main_start[midx(slot.scenario, slot.month)] = slot.start;
        }
    }
    for s in 0..view.ns {
        for m in 1..view.nm {
            let pred = main_end[midx(s, m - 1)];
            let start = main_start[midx(s, m)];
            if start + TOL < pred {
                out.push(
                    Diagnostic::new(
                        RuleCode::DependenceViolated,
                        format!("starts at {start} before month {} ends at {pred}", m - 1),
                    )
                    .at(Location::main(s, m))
                    .related_to(Location::main(s, m - 1))
                    .with("starts", start)
                    .with("pred_ends", pred),
                );
            }
        }
    }
    for slot in view.slots.iter().filter(|t| t.is_post) {
        if slot.scenario as usize >= ns || slot.month as usize >= nm {
            continue;
        }
        let pred = main_end[midx(slot.scenario, slot.month)];
        if slot.start + TOL < pred {
            out.push(
                Diagnostic::new(
                    RuleCode::DependenceViolated,
                    format!(
                        "starts at {} before its main task ends at {pred}",
                        slot.start
                    ),
                )
                .at(Location::post(slot.scenario, slot.month))
                .related_to(Location::main(slot.scenario, slot.month))
                .with("starts", slot.start)
                .with("pred_ends", pred),
            );
        }
    }

    // Pass 4 — OA010 processor exclusivity: sweep each processor's
    // intervals sorted by start.
    let mut by_proc: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); view.r as usize];
    for (i, slot) in view.slots.iter().enumerate() {
        for p in slot.first_proc..slot.first_proc.saturating_add(slot.proc_count) {
            if (p as usize) < by_proc.len() {
                by_proc[p as usize].push((slot.start, slot.end, i));
            }
        }
    }
    for (p, intervals) in by_proc.iter_mut().enumerate() {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in intervals.windows(2) {
            if w[1].0 + TOL < w[0].1 {
                let (a, b) = (&view.slots[w[0].2], &view.slots[w[1].2]);
                out.push(
                    Diagnostic::new(
                        RuleCode::ProcessorConflict,
                        format!(
                            "overlaps [{}, {}] with another task's [{}, {}] on processor {p}",
                            w[0].0, w[0].1, w[1].0, w[1].1
                        ),
                    )
                    .at(a.location())
                    .related_to(b.location())
                    .with("processor", p as f64),
                );
            }
        }
    }

    // Pass 5 — OA014 idle gaps: per multiprocessor group, internal idle
    // between consecutive tasks relative to the group's active window.
    let mut groups: std::collections::BTreeMap<u32, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for slot in &view.slots {
        if let Some(g) = slot.group {
            if slot.start.is_finite() && slot.end.is_finite() && slot.end > slot.start {
                groups.entry(g).or_default().push((slot.start, slot.end));
            }
        }
    }
    for (g, intervals) in &mut groups {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let window = intervals.last().expect("non-empty").1 - intervals[0].0;
        if window <= 0.0 {
            continue;
        }
        let mut idle = 0.0f64;
        let mut frontier = intervals[0].1;
        for &(s, e) in intervals.iter().skip(1) {
            if s > frontier {
                idle += s - frontier;
            }
            frontier = frontier.max(e);
        }
        if idle > IDLE_WARN_FRACTION * window {
            out.push(
                Diagnostic::new(
                    RuleCode::IdleGap,
                    format!(
                        "group {g} idles {idle:.1} s of its {window:.1} s active window ({:.1}%)",
                        100.0 * idle / window
                    ),
                )
                .with("group", f64::from(*g))
                .with("idle_secs", idle)
                .with("window_secs", window),
            );
        }
    }

    // Pass 6 — OA015 post starvation: a post queueing far behind its
    // month signals an under-provisioned pool.
    let makespan = view.slots.iter().map(|t| t.end).fold(0.0f64, f64::max);
    let mut durations: Vec<f64> = view
        .slots
        .iter()
        .filter(|t| t.is_post && t.end > t.start)
        .map(|t| t.end - t.start)
        .collect();
    if !durations.is_empty() && makespan > 0.0 {
        durations.sort_by(f64::total_cmp);
        let median = durations[durations.len() / 2];
        // One aggregated diagnostic, not one per post: on campaigns that
        // deliberately defer posts (Improvement 2 reserves no post
        // processors) every post lags, and NS × NM identical warnings
        // would drown the report.
        let mut starved = 0usize;
        let mut worst: Option<(&TaskSlot, f64)> = None;
        for slot in view.slots.iter().filter(|t| t.is_post) {
            if slot.scenario as usize >= ns || slot.month as usize >= nm {
                continue;
            }
            let delay = slot.start - main_end[midx(slot.scenario, slot.month)];
            if delay > STARVATION_MEDIANS * median
                && delay > STARVATION_MAKESPAN_FRACTION * makespan
            {
                starved += 1;
                if worst.is_none_or(|(_, w)| delay > w) {
                    worst = Some((slot, delay));
                }
            }
        }
        if let Some((slot, delay)) = worst {
            out.push(
                Diagnostic::new(
                    RuleCode::PostStarvation,
                    format!(
                        "{starved} post task(s) wait long after their month (worst {delay:.1} s, {:.1} median post durations): post pool starved",
                        delay / median
                    ),
                )
                .at(slot.location())
                .with("starved_posts", starved as f64)
                .with("worst_delay_secs", delay)
                .with("median_post_secs", median),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn slot(s: u32, m: u32, post: bool, first: u32, count: u32, start: f64, end: f64) -> TaskSlot {
        TaskSlot {
            scenario: s,
            month: m,
            is_post: post,
            first_proc: first,
            proc_count: count,
            start,
            end,
            group: (!post).then_some(0),
        }
    }

    fn tiny_valid() -> ScheduleView {
        ScheduleView {
            ns: 1,
            nm: 2,
            r: 5,
            slots: vec![
                slot(0, 0, false, 0, 4, 0.0, 100.0),
                slot(0, 0, true, 4, 1, 100.0, 110.0),
                slot(0, 1, false, 0, 4, 100.0, 200.0),
                slot(0, 1, true, 4, 1, 200.0, 210.0),
            ],
        }
    }

    #[test]
    fn valid_schedule_is_clean() {
        assert!(check_schedule(&tiny_valid()).is_empty());
    }

    #[test]
    fn one_pass_collects_independent_defects() {
        // The acceptance scenario: overlapping processor ranges AND a
        // violated month dependence, reported together.
        let mut v = tiny_valid();
        v.slots[2].start = 50.0; // main(0,1) starts before main(0,0) ends…
        v.slots[2].end = 150.0; // …and overlaps it on procs 0..4.
        let ds = check_schedule(&v);
        let codes: Vec<&str> = ds.iter().map(|d| d.rule.code()).collect();
        assert!(codes.contains(&"OA009"), "{codes:?}");
        assert!(codes.contains(&"OA010"), "{codes:?}");
        assert!(ds.len() >= 2, "{ds:?}");
    }

    #[test]
    fn out_of_shape_record_is_flagged_not_fatal() {
        let mut v = tiny_valid();
        v.slots.push(slot(7, 0, false, 0, 4, 300.0, 400.0));
        let ds = check_schedule(&v);
        assert!(
            ds.iter()
                .any(|d| d.rule == RuleCode::WrongMultiplicity && d.message.contains("shape")),
            "{ds:?}"
        );
    }

    #[test]
    fn idle_gap_warns() {
        let mut v = tiny_valid();
        // Group 0 idles 400 s between its two months.
        v.slots[2] = slot(0, 1, false, 0, 4, 500.0, 600.0);
        v.slots[3] = slot(0, 1, true, 4, 1, 600.0, 610.0);
        let ds = check_schedule(&v);
        let idle: Vec<_> = ds.iter().filter(|d| d.rule == RuleCode::IdleGap).collect();
        assert_eq!(idle.len(), 1, "{ds:?}");
        assert_eq!(idle[0].severity, Severity::Warn);
    }

    #[test]
    fn post_starvation_warns() {
        let mut v = tiny_valid();
        // post(0,0) waits 150 s (15 median durations, 71% of makespan).
        v.slots[1] = slot(0, 0, true, 4, 1, 250.0, 260.0);
        let ds = check_schedule(&v);
        assert!(
            ds.iter().any(|d| d.rule == RuleCode::PostStarvation),
            "{ds:?}"
        );
        assert!(!ds.iter().any(|d| d.severity == Severity::Error), "{ds:?}");
    }
}
