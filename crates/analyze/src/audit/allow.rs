//! The per-rule allowlist that keeps justified hazards legal.
//!
//! Some findings are correct code: the benchmark harness *must* read
//! the wall clock, the middleware's deployment pass is genuinely
//! threaded. Instead of weakening the rules, such uses are recorded in
//! an allowlist file (one entry per line):
//!
//! ```text
//! # rule  path-prefix                      justification…
//! ND004   crates/middleware/src/deploy.rs  the SeD servers are real threads
//! ```
//!
//! An entry suppresses every finding of its rule whose file path
//! starts with the given prefix — so a directory prefix covers a
//! subtree. Entries are audited right back: one that suppresses
//! nothing raises `ND007` (stale allowlist entry), so the file can
//! only shrink when the code it excuses is cleaned up.

/// One parsed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule code the entry suppresses (`ND004`, …).
    pub code: String,
    /// Path prefix (workspace-relative, `/`-separated) it applies to.
    pub path: String,
    /// Free-text justification (the rest of the line).
    pub reason: String,
    /// 1-based line number in the allowlist file.
    pub line: u32,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// The empty allowlist (suppresses nothing).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the `rule path justification…` line format. Blank lines
    /// and `#` comments are skipped. A line with fewer than two fields
    /// or without a justification is an error — an unexplained
    /// suppression defeats the point of the file.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let code = fields.next().unwrap_or_default();
            let path = fields.next().unwrap_or_default();
            let reason = fields.collect::<Vec<_>>().join(" ");
            if code.is_empty() || path.is_empty() || reason.is_empty() {
                return Err(format!(
                    "allowlist line {}: expected `RULE PATH JUSTIFICATION`, got {raw:?}",
                    idx + 1
                ));
            }
            entries.push(AllowEntry {
                code: code.to_string(),
                path: path.to_string(),
                reason,
                line: u32::try_from(idx + 1).unwrap_or(u32::MAX),
            });
        }
        Ok(Self { entries })
    }

    /// Index of the first entry suppressing `code` at `path`, if any.
    #[must_use]
    pub fn matches(&self, code: &str, path: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.code == code && path.starts_with(e.path.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let text = "# header\n\nND004 crates/middleware/src/deploy.rs servers are threads\n\
                    ND002 crates/bench timing is the product\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].code, "ND004");
        assert_eq!(a.entries[0].line, 3);
        assert_eq!(a.entries[1].path, "crates/bench");
        assert!(a.entries[1].reason.contains("product"));
    }

    #[test]
    fn prefix_matching_covers_subtrees() {
        let a = Allowlist::parse("ND004 crates/middleware threaded by design\n").unwrap();
        assert_eq!(a.matches("ND004", "crates/middleware/src/sed.rs"), Some(0));
        assert_eq!(a.matches("ND004", "crates/sim/src/engine.rs"), None);
        assert_eq!(a.matches("ND001", "crates/middleware/src/sed.rs"), None);
    }

    #[test]
    fn rejects_unjustified_lines() {
        assert!(Allowlist::parse("ND004 crates/middleware\n").is_err());
        assert!(Allowlist::parse("ND004\n").is_err());
        assert!(Allowlist::parse("").unwrap().entries.is_empty());
    }
}
