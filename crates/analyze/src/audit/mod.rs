//! Pass 1 of `oa audit`: the whole-workspace determinism auditor.
//!
//! The platform's hardest invariant — bitwise-identical outputs across
//! executors, parallelism levels and the integer-time kernel — dies by
//! a thousand cuts: one map iteration feeding serialized records, one
//! wall-clock read in a result path, one rogue thread. This pass scans
//! the workspace's own Rust sources (`crates/`, `src/`, `tests/` —
//! never `vendor/`, whose stand-ins are API shims) for a small catalog
//! of such hazards, the `ND` rules:
//!
//! | Rule  | Hazard |
//! |-------|--------|
//! | ND001 | order-unstable maps/sets |
//! | ND002 | wall-clock reads outside `crates/bench` |
//! | ND003 | `partial_cmp(..).unwrap()` float orderings |
//! | ND004 | raw thread spawns outside `crates/par` |
//! | ND005 | unsorted directory iteration |
//! | ND006 | randomly seeded hashers |
//! | ND007 | stale [`allow`] entries |
//!
//! Matching is token-level over [`lexer`]-stripped source: comments
//! and string literals are blanked first, so prose and patterns inside
//! strings can never fire a rule, and the auditor audits its own crate
//! cleanly. Justified uses live in an [`allow::Allowlist`] file; an
//! entry that stops matching anything is itself reported (ND007), so
//! the list cannot rot. The workspace self-hosts the scan in CI: the
//! `audit` job fails on any finding.

pub mod allow;
pub mod lexer;

use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Location, Report, RuleCode};
use allow::Allowlist;

/// Workspace-relative directories the auditor scans.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests"];

/// One entry of the ND-rule catalog: fire when any of `tokens` appears
/// as a whole token (optionally requiring `and_token` later on the same
/// line), unless the file lies under an `exempt` path prefix.
struct NdRule {
    code: RuleCode,
    tokens: &'static [&'static str],
    and_token: Option<&'static str>,
    exempt: &'static [&'static str],
    advice: &'static str,
}

/// The catalog. Patterns are string literals, so the lexer blanks them
/// out of any scan of this very file.
const ND_RULES: &[NdRule] = &[
    NdRule {
        code: RuleCode::UnstableMapOrder,
        tokens: &["HashMap", "HashSet"],
        and_token: None,
        exempt: &[],
        advice: "iteration order is seed-dependent; use BTreeMap/BTreeSet or sort before output",
    },
    NdRule {
        code: RuleCode::WallClockRead,
        tokens: &["Instant", "SystemTime"],
        and_token: None,
        exempt: &["crates/bench"],
        advice: "wall-clock reads make runs unrepeatable; only the benchmark harness may time",
    },
    NdRule {
        code: RuleCode::PartialCmpUnwrap,
        tokens: &["partial_cmp"],
        and_token: Some("unwrap"),
        exempt: &[],
        advice: "panics on NaN and invites ad-hoc orderings; use f64::total_cmp or time::Time",
    },
    NdRule {
        code: RuleCode::UnmanagedThread,
        tokens: &["thread"],
        and_token: Some("spawn"),
        exempt: &["crates/par"],
        advice: "raw threads race; use the deterministic oa-par pool",
    },
    NdRule {
        code: RuleCode::UnsortedDirWalk,
        tokens: &["read_dir"],
        and_token: None,
        exempt: &[],
        advice: "directory order is platform-dependent; collect and sort entries first",
    },
    NdRule {
        code: RuleCode::RandomHashState,
        tokens: &["DefaultHasher", "RandomState"],
        and_token: None,
        exempt: &[],
        advice: "randomly seeded hashing differs across processes; use an ordered structure",
    },
];

/// The result of one workspace scan.
#[derive(Debug, Clone, Default)]
pub struct AuditOutcome {
    /// Findings that survived the allowlist, plus ND007 stale-entry
    /// warnings, in deterministic (path, line, rule) order.
    pub report: Report,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

impl AuditOutcome {
    /// One-line scan summary (`scanned N file(s), …`).
    #[must_use]
    pub fn scope_line(&self, root: &Path) -> String {
        format!(
            "audit of {}: {} file(s) scanned, {} finding(s) suppressed by allowlist\n",
            root.display(),
            self.files_scanned,
            self.suppressed
        )
    }
}

/// Scans one already-loaded source file. `rel` is the workspace-
/// relative, `/`-separated path used for exemptions, allowlisting and
/// locations. Returns raw findings — rule-level path exemptions are
/// applied, the allowlist is not.
#[must_use]
pub fn scan_file(rel: &str, text: &str) -> Vec<Diagnostic> {
    let stripped = lexer::strip(text);
    let mut out = Vec::new();
    for rule in ND_RULES {
        if rule.exempt.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        for (idx, line) in stripped.lines().enumerate() {
            let Some((tok, col)) = rule
                .tokens
                .iter()
                .find_map(|t| lexer::token_column(line, t).map(|c| (*t, c)))
            else {
                continue;
            };
            if let Some(second) = rule.and_token {
                let after = &line[col..];
                if !lexer::has_token(after, second) {
                    continue;
                }
            }
            let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            out.push(
                Diagnostic::new(rule.code, format!("`{tok}`: {}", rule.advice))
                    .at(Location::source(rel, line_no)),
            );
        }
    }
    out
}

/// Scans the workspace rooted at `root`: every `.rs` file under the
/// [`SCAN_ROOTS`] directories, in sorted path order, filtered through
/// `allow`. Unused allowlist entries become ND007 warnings.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads. A missing
/// scan root is skipped, not an error — `src/` need not exist in every
/// checkout layout.
pub fn audit_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<AuditOutcome> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let top = root.join(dir);
        if top.is_dir() {
            collect_rs(&top, &mut files)?;
        }
    }
    // Deterministic scan order: sort by workspace-relative path.
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort_unstable();

    let mut outcome = AuditOutcome::default();
    let mut used = vec![false; allow.entries.len()];
    for rel in &rels {
        let text =
            std::fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        outcome.files_scanned += 1;
        for d in scan_file(rel, &text) {
            if let Some(i) = allow.matches(d.rule.code(), rel) {
                used[i] = true;
                outcome.suppressed += 1;
            } else {
                outcome.report.diagnostics.push(d);
            }
        }
    }
    for (entry, used) in allow.entries.iter().zip(&used) {
        if !used {
            outcome.report.diagnostics.push(
                Diagnostic::new(
                    RuleCode::StaleAllowEntry,
                    format!(
                        "allowlist line {} ({} at {}) suppresses nothing; remove it",
                        entry.line, entry.code, entry.path
                    ),
                )
                .at(Location::source(entry.path.clone(), entry.line)),
            );
        }
    }
    Ok(outcome)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    // The entries are accumulated and the caller sorts the full list,
    // so the platform's directory order never reaches a report.
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn flags_unstable_maps_with_location() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let ds = scan_file("crates/x/src/lib.rs", src);
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert_eq!(ds[0].rule.code(), "ND001");
        assert_eq!(ds[0].location.line, Some(1));
        assert_eq!(ds[1].location.line, Some(2));
        assert_eq!(ds[0].location.file.as_deref(), Some("crates/x/src/lib.rs"));
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src =
            "// a HashMap in prose\nlet s = \"HashMap SystemTime read_dir\";\n/* Instant */\n";
        assert!(scan_file("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn bench_crate_may_read_the_clock_elsewhere_not() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        assert!(scan_file("crates/bench/src/lib.rs", src).is_empty());
        let ds = scan_file("crates/sim/src/engine.rs", src);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule.code() == "ND002"));
    }

    #[test]
    fn two_token_rules_need_both_in_order() {
        let spawn = "let h = std::thread::spawn(move || work());\n";
        assert_eq!(scan_file("crates/sim/src/x.rs", spawn).len(), 1);
        assert!(scan_file("crates/par/src/lib.rs", spawn).is_empty());
        // `thread` without a spawn on the line is fine…
        assert!(scan_file("crates/sim/src/x.rs", "use std::thread;\n").is_empty());
        // …and so is a partial_cmp that is not unwrapped.
        assert!(scan_file("crates/core/src/t.rs", "a.partial_cmp(&b)\n").is_empty());
        let ds = scan_file("crates/core/src/t.rs", "a.partial_cmp(&b).unwrap()\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule.code(), "ND003");
    }

    #[test]
    fn workspace_walk_applies_allowlist_and_reports_stale_entries() {
        let root = std::env::temp_dir().join(format!("oa-audit-walk-{}", std::process::id()));
        let src_dir = root.join("crates/demo/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "use std::collections::HashSet;\nfn f() { std::fs::read_dir(\".\"); }\n",
        )
        .unwrap();
        // Suppress the set, leave the dir walk, carry one stale entry.
        let allow = Allowlist::parse(
            "ND001 crates/demo justified for the test\nND006 crates/nowhere never fires\n",
        )
        .unwrap();
        let out = audit_workspace(&root, &allow).unwrap();
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(out.files_scanned, 1);
        assert_eq!(out.suppressed, 1);
        let codes: Vec<&str> = out
            .report
            .diagnostics
            .iter()
            .map(|d| d.rule.code())
            .collect();
        assert_eq!(codes, vec!["ND005", "ND007"], "{:?}", out.report);
        assert_eq!(out.report.error_count(), 1);
        assert_eq!(
            out.report.diagnostics[1].severity,
            Severity::Warn,
            "stale entries warn"
        );
        assert!(out.scope_line(&root).contains("1 file(s) scanned"));
    }
}
