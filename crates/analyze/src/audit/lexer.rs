//! A minimal Rust-source pre-lexer for the determinism auditor.
//!
//! [`strip`] blanks out everything that is not code — line comments,
//! (nested) block comments, string/raw-string/byte-string literals and
//! character literals — replacing each non-newline byte with a space.
//! Newlines survive, so line numbers in the residue match the original
//! file exactly, and the token scanner that runs afterwards can never
//! fire on prose or on a pattern spelled inside a string (including
//! the auditor's own rule tables: its patterns live in literals, so a
//! self-scan sees only blanks where they are written).
//!
//! This is deliberately not a real lexer: it does not need to split
//! numbers from identifiers or understand generics, only to decide
//! "literal or not" with byte-level lookahead. Lifetimes (`'a`) are
//! told apart from char literals by checking for the closing quote.

/// Returns `text` with comments and literals blanked to spaces,
/// newlines preserved.
#[must_use]
pub fn strip(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = vec![0u8; b.len()];
    out.copy_from_slice(b);
    let n = b.len();
    let mut i = 0;

    // Blanks `out[from..to]`, keeping newlines.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };

    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments): to end of line.
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment, nesting like Rust's.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if raw_string_len(&b[i..]).is_some() => {
                // Raw (byte) string: r"…", r#"…"#, br##"…"##, …
                let len = raw_string_len(&b[i..]).expect("checked");
                blank(&mut out, i, i + len);
                i += len;
            }
            b'b' if i + 1 < n && b[i + 1] == b'"' => {
                let start = i;
                i += 1; // at the quote; fall through manually
                i = skip_quoted(b, i);
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i = skip_quoted(b, i);
                blank(&mut out, start, i);
            }
            b'\'' => {
                // Char literal or lifetime. A literal closes with a
                // quote after one (possibly escaped) character.
                if i + 1 < n && b[i + 1] == b'\\' {
                    let start = i;
                    let mut j = i + 2;
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    i = (j + 1).min(n);
                    blank(&mut out, start, i);
                } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1; // lifetime: keep, it is ordinary code
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking is ascii-safe")
}

/// If `b` starts a raw (byte) string literal, its total byte length.
fn raw_string_len(b: &[u8]) -> Option<usize> {
    let mut i = 0;
    if b.first() == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(b.len()) // unterminated: blank to EOF
}

/// Skips a `"`-delimited string starting at `b[i] == b'"'`, honoring
/// backslash escapes. Returns the index one past the closing quote.
fn skip_quoted(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Whether `line` (already stripped) contains `word` as a whole token —
/// delimited by non-identifier bytes on both sides.
#[must_use]
pub fn has_token(line: &str, word: &str) -> bool {
    token_column(line, word).is_some()
}

/// The byte column of the first whole-token occurrence of `word`.
#[must_use]
pub fn token_column(line: &str, word: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip("let x = 1; // trailing words\n/* a\nb */ let y = 2;\n");
        assert!(s.contains("let x = 1;"));
        assert!(s.contains("let y = 2;"));
        assert!(!s.contains("trailing"));
        assert!(!s.contains("a\nb */"));
        assert_eq!(s.matches('\n').count(), 3, "newlines preserved");
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip("a /* one /* two */ still comment */ b");
        assert!(s.contains('a') && s.contains('b'));
        assert!(!s.contains("still"));
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        let s = strip(r##"let p = "word inside"; let q = r#"raw "inner" text"#; done"##);
        assert!(!s.contains("inside"));
        assert!(!s.contains("inner"));
        assert!(s.contains("done"));
        // Escaped quotes do not end the literal early.
        let s = strip(r#"let e = "a \" b"; after"#);
        assert!(!s.contains(" b\""));
        assert!(s.contains("after"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let s = strip("let c = 'x'; let nl = '\\n'; fn f<'a>(v: &'a str) {}");
        assert!(!s.contains("'x'"));
        assert!(!s.contains("\\n"));
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
    }

    #[test]
    fn token_matching_is_word_bounded() {
        assert!(has_token("use std::time::Instant;", "Instant"));
        assert!(!has_token("let my_instantiation = 3;", "Instant"));
        assert!(!has_token("InstantReplay::new()", "Instant"));
        assert_eq!(token_column("a Instant b", "Instant"), Some(2));
        assert_eq!(token_column("nothing here", "Instant"), None);
    }
}
