//! Platform-layer rules (OA016–OA017): cluster sanity and network
//! feasibility.
//!
//! [`oa_platform::cluster::Cluster::new`] and
//! [`oa_platform::timing::TimingTable::new`] validate on construction,
//! but both types deserialize from disk without revalidation (benchmark
//! imports, persisted grids), so a cluster reaching the scheduler can
//! still be degenerate. OA016 re-checks the invariants and warns when a
//! table falls outside the envelope the paper benchmarked on Grid'5000.
//! OA017 asks whether the 120 MB handed from month `n` to month `n+1`
//! can hide inside a month's compute time on a given link.

use oa_platform::cluster::Cluster;
use oa_platform::presets::{FASTEST_T11, SLOWEST_T11};
use oa_workflow::data::INTER_MONTH_TRANSFER;

use crate::diag::{Diagnostic, RuleCode, Severity};

/// Fraction of a month the inter-month transfer may consume before
/// OA017 warns that transfer time is no longer negligible.
pub const TRANSFER_WARN_FRACTION: f64 = 0.10;

/// Relative slack on the benchmarked `T[11]` envelope: the preset models
/// are calibrated fits, so their headline times land within a few
/// seconds of the paper's nominal values, not exactly on them.
pub const ENVELOPE_SLACK: f64 = 0.005;

/// Runs OA016 over a cluster description, collecting every finding.
pub fn check_cluster(cluster: &Cluster) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cluster.resources < 4 {
        out.push(
            Diagnostic::new(
                RuleCode::ClusterSanity,
                format!(
                    "cluster {:?} has {} processor(s); the smallest legal group needs 4",
                    cluster.name, cluster.resources
                ),
            )
            .with("resources", f64::from(cluster.resources)),
        );
    }
    // Re-validate the timing table: deserialized tables bypass
    // TimingTable::new.
    let main = cluster.timing.main_array();
    for (i, &t) in main.iter().enumerate() {
        let g = 4 + i as u32;
        if !(t.is_finite() && t > 0.0) {
            out.push(
                Diagnostic::new(
                    RuleCode::ClusterSanity,
                    format!("T[{g}] = {t} is not a positive finite duration"),
                )
                .with("group", f64::from(g))
                .with("value", t),
            );
        }
    }
    let post = cluster.timing.post_secs();
    if !(post.is_finite() && post > 0.0) {
        out.push(
            Diagnostic::new(
                RuleCode::ClusterSanity,
                format!("TP = {post} is not a positive finite duration"),
            )
            .with("value", post),
        );
    }
    for (i, w) in main.windows(2).enumerate() {
        if w[0].is_finite() && w[1].is_finite() && w[0] < w[1] {
            let g = 4 + i as u32;
            out.push(
                Diagnostic::new(
                    RuleCode::ClusterSanity,
                    format!(
                        "T[{g}] = {} < T[{}] = {}: adding a processor must never slow the task down",
                        w[0],
                        g + 1,
                        w[1]
                    ),
                )
                .with("group", f64::from(g)),
            );
        }
    }
    // Envelope check: the paper benchmarked T[11] between 1177 s
    // (fastest cluster) and 1622 s (slowest). A table far outside that
    // band is probably a mis-scaled import, not a real machine.
    if out.is_empty() {
        let t11 = cluster.timing.main_secs(11);
        let (lo, hi) = (
            FASTEST_T11 * (1.0 - ENVELOPE_SLACK),
            SLOWEST_T11 * (1.0 + ENVELOPE_SLACK),
        );
        if !(lo..=hi).contains(&t11) {
            out.push(
                Diagnostic::new(
                    RuleCode::ClusterSanity,
                    format!(
                        "T[11] = {t11:.0} s lies outside the benchmarked Grid'5000 envelope [{FASTEST_T11:.0}, {SLOWEST_T11:.0}]"
                    ),
                )
                .severity(Severity::Warn)
                .with("t11", t11),
            );
        }
    }
    out
}

/// Runs OA017: can the 120 MB inter-month transfer hide inside a month
/// of `month_secs` on a link of `bandwidth_mbps` MB/s and
/// `latency_secs` latency?
pub fn check_bandwidth(bandwidth_mbps: f64, latency_secs: f64, month_secs: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let link_ok = bandwidth_mbps.is_finite()
        && bandwidth_mbps > 0.0
        && latency_secs.is_finite()
        && latency_secs >= 0.0;
    if !link_ok {
        out.push(
            Diagnostic::new(
                RuleCode::BandwidthInfeasible,
                format!(
                    "link ({bandwidth_mbps} MB/s, {latency_secs} s latency) is not a usable network"
                ),
            )
            .with("bandwidth_mbps", bandwidth_mbps)
            .with("latency_secs", latency_secs),
        );
        return out;
    }
    if !(month_secs.is_finite() && month_secs > 0.0) {
        out.push(
            Diagnostic::new(
                RuleCode::BandwidthInfeasible,
                format!("month duration {month_secs} s is not a positive finite span"),
            )
            .with("month_secs", month_secs),
        );
        return out;
    }
    let transfer = INTER_MONTH_TRANSFER.transfer_secs(bandwidth_mbps, latency_secs);
    if transfer >= month_secs {
        out.push(
            Diagnostic::new(
                RuleCode::BandwidthInfeasible,
                format!(
                    "moving the {} MB month hand-off takes {transfer:.1} s, a whole month computes in {month_secs:.1} s: the chain can never keep up",
                    INTER_MONTH_TRANSFER.as_mb()
                ),
            )
            .with("transfer_secs", transfer)
            .with("month_secs", month_secs),
        );
    } else if transfer > TRANSFER_WARN_FRACTION * month_secs {
        out.push(
            Diagnostic::new(
                RuleCode::BandwidthInfeasible,
                format!(
                    "the {} MB month hand-off takes {transfer:.1} s, {:.1}% of a {month_secs:.1} s month: transfer time is not negligible on this link",
                    INTER_MONTH_TRANSFER.as_mb(),
                    100.0 * transfer / month_secs
                ),
            )
            .severity(Severity::Warn)
            .with("transfer_secs", transfer)
            .with("month_secs", month_secs),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_platform::presets::{preset_cluster, PRESET_CLUSTERS};

    #[test]
    fn presets_are_clean() {
        for (name, _, _, _) in PRESET_CLUSTERS {
            let ds = check_cluster(&preset_cluster(name, 64));
            assert!(ds.is_empty(), "{name}: {ds:?}");
        }
    }

    #[test]
    fn off_envelope_table_warns() {
        let mut c = preset_cluster("sagittaire", 64);
        c.timing = c.timing.scaled(0.5).unwrap(); // twice as fast as any real cluster
        let ds = check_cluster(&c);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Warn);
    }

    #[test]
    fn gigabit_link_is_fine_for_reference_month() {
        // 100 MB/s, 50 ms latency, 1260 s month: 1.25 s ≪ a month.
        assert!(check_bandwidth(100.0, 0.05, 1260.0).is_empty());
    }

    #[test]
    fn slow_link_errors() {
        // 0.05 MB/s: the 120 MB hand-off takes 2400 s > one 1260 s month.
        let ds = check_bandwidth(0.05, 0.0, 1260.0);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Error);
    }

    #[test]
    fn marginal_link_warns() {
        // 0.5 MB/s: 240 s transfer = 19% of a 1260 s month.
        let ds = check_bandwidth(0.5, 0.0, 1260.0);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Warn);
    }
}
