//! Workflow-IR rules (OA019–OA021, plus generalized OA002/OA004):
//! shape checks over arbitrary typed workflow DAGs.
//!
//! The legacy workflow rules (OA001–OA003) inspect the fused mesh
//! through its handle tables; these rules inspect any
//! [`WorkflowIr`], including hand-written or deserialized graphs the
//! presets never produced:
//!
//! * **OA019** — structural validity: the graph must pass
//!   [`WorkflowIr::validate`] (non-empty, acyclic, no dangling data
//!   flows, unique names, sane allocation ranges and durations).
//! * **OA002 (generalized)** — origin-annotated graphs must cover
//!   their full `NS × NM` mesh: every `(scenario, month)` needs its
//!   task(s), exactly as the fused handle-table check demands.
//! * **OA020** — a graph whose every node claims a preset origin must
//!   *be* the canonical lowering of that preset; annotations that
//!   survive structural drift are lies.
//! * **OA004 (generalized, warning)** — moldable allocation ranges
//!   outside the benchmarked `4..=11` envelope run on clamped timings
//!   and deserve a flag, though they are legal in the IR.
//! * **OA021** — data-flow payloads: zero-volume flows are
//!   meaningless, and an annotated mesh's total volume must equal the
//!   `NS · (NM − 1)` instances of the 120 MB inter-month hand-off.

use oa_workflow::data::INTER_MONTH_TRANSFER;
use oa_workflow::ir::{lower_experiment, lower_fused, recognize, IrClass, WorkflowIr};
use oa_workflow::task::{MAX_PROCS, MIN_PROCS};

use crate::diag::{Diagnostic, Location, RuleCode, Severity};

/// Runs the IR shape rules over a workflow, collecting every finding.
pub fn check_ir(ir: &WorkflowIr) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // OA019: structural validation. An invalid graph makes the deeper
    // walks meaningless (a cyclic graph has no lowering to compare
    // against), so stop here when it fires.
    if let Err(e) = ir.validate() {
        out.push(
            Diagnostic::new(
                RuleCode::IrStructureInvalid,
                format!("workflow IR fails validation: {e}"),
            )
            .with("nodes", ir.node_count() as f64),
        );
        return out;
    }

    let annotated = ir.dag.iter().all(|(_, n)| n.origin.is_some());
    if annotated {
        // The shape the annotations claim.
        let (mut ns, mut nm) = (0u32, 0u32);
        for (_, n) in ir.dag.iter() {
            let o = n.origin.expect("all annotated");
            ns = ns.max(o.scenario + 1);
            nm = nm.max(o.month + 1);
        }

        // OA002 generalized: full mesh coverage. Count distinct months
        // present per scenario; a hole means an incomplete chain.
        let mut seen = vec![false; (ns * nm) as usize];
        for (_, n) in ir.dag.iter() {
            let o = n.origin.expect("all annotated");
            seen[(o.scenario * nm + o.month) as usize] = true;
        }
        for s in 0..ns {
            for m in 0..nm {
                if !seen[(s * nm + m) as usize] {
                    out.push(
                        Diagnostic::new(
                            RuleCode::IncompleteChain,
                            format!("annotated {ns}x{nm} mesh has no task for month {m} of scenario {s}"),
                        )
                        .at(Location {
                            scenario: Some(s),
                            month: Some(m),
                            ..Location::default()
                        }),
                    );
                }
            }
        }

        // OA020: the annotations must describe a real preset lowering.
        if recognize(ir) == IrClass::General {
            let shape = oa_workflow::chain::ExperimentShape::new(ns.max(1), nm.max(1));
            let which = if ir.node_count() == lower_fused(shape).node_count() {
                "fused"
            } else if ir.node_count() == lower_experiment(shape).node_count() {
                "unfused"
            } else {
                "any"
            };
            out.push(
                Diagnostic::new(
                    RuleCode::IrPresetDrift,
                    format!(
                        "every node claims a {ns}x{nm} preset origin, but the graph is not the {which} lowering of that shape"
                    ),
                )
                .with("scenarios", ns as f64)
                .with("months", nm as f64),
            );
        }

        // OA021: the mesh hand-off budget. NS scenarios with NM months
        // carry exactly NS · (NM − 1) inter-month transfers.
        let expected = INTER_MONTH_TRANSFER.0 * (ns as u64) * (nm as u64).saturating_sub(1);
        let actual = ir.total_flow().0;
        if actual != expected {
            out.push(
                Diagnostic::new(
                    RuleCode::IrFlowMismatch,
                    format!(
                        "annotated {ns}x{nm} mesh should carry {expected} B of inter-month hand-off, found {actual} B"
                    ),
                )
                .with("expected_bytes", expected as f64)
                .with("actual_bytes", actual as f64),
            );
        }
    }

    // OA004 generalized: moldable ranges off the benchmarked envelope.
    for (id, n) in ir.dag.iter() {
        if !n.kind.is_moldable() {
            continue;
        }
        let (lo, hi) = (n.kind.min_procs(), n.kind.max_procs());
        if lo < MIN_PROCS || hi > MAX_PROCS {
            out.push(
                Diagnostic::new(
                    RuleCode::GroupSizeOutOfRange,
                    format!(
                        "moldable task '{}' allows {lo}..={hi} processors, outside the benchmarked {MIN_PROCS}..={MAX_PROCS}: timings will be clamped",
                        n.name
                    ),
                )
                .severity(Severity::Warn)
                .with("node", id.index() as f64)
                .with("min_procs", lo as f64)
                .with("max_procs", hi as f64),
            );
        }
    }

    // OA021 (general): zero-volume flows say "data moves here" while
    // carrying nothing — always a modeling bug.
    for f in &ir.flows {
        if f.volume.0 == 0 {
            out.push(
                Diagnostic::new(
                    RuleCode::IrFlowMismatch,
                    format!(
                        "flow {} -> {} declares zero volume",
                        f.from.index(),
                        f.to.index()
                    ),
                )
                .with("from", f.from.index() as f64)
                .with("to", f.to.index() as f64),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_workflow::chain::ExperimentShape;
    use oa_workflow::data::DataVolume;
    use oa_workflow::ir::{DurationModel, IrTaskKind};
    use oa_workflow::moldable::MoldableSpec;

    #[test]
    fn lowered_presets_are_clean() {
        for shape in [ExperimentShape::new(3, 4), ExperimentShape::new(1, 1)] {
            assert!(check_ir(&lower_fused(shape)).is_empty());
            assert!(check_ir(&lower_experiment(shape)).is_empty());
        }
    }

    #[test]
    fn invalid_graphs_fire_oa019_and_stop() {
        let ir = WorkflowIr::new();
        let ds = check_ir(&ir);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, RuleCode::IrStructureInvalid);
    }

    #[test]
    fn drifted_annotations_fire_oa020() {
        // An extra edge breaks structural equality with the lowering
        // while every origin annotation survives.
        let mut ir = lower_fused(ExperimentShape::new(2, 3));
        let ids: Vec<_> = ir.dag.node_ids().collect();
        ir.add_dep(ids[0], *ids.last().unwrap()).unwrap();
        let ds = check_ir(&ir);
        assert!(
            ds.iter().any(|d| d.rule == RuleCode::IrPresetDrift),
            "{ds:?}"
        );
    }

    #[test]
    fn missing_flows_fire_oa021_on_annotated_meshes() {
        let mut ir = lower_fused(ExperimentShape::new(2, 3));
        ir.flows.pop();
        let ds = check_ir(&ir);
        let d = ds
            .iter()
            .find(|d| d.rule == RuleCode::IrFlowMismatch)
            .expect("flow mismatch");
        assert_eq!(
            d.quantity("expected_bytes").unwrap() - d.quantity("actual_bytes").unwrap(),
            INTER_MONTH_TRANSFER.0 as f64
        );
    }

    #[test]
    fn off_envelope_ranges_warn_via_oa004() {
        let mut ir = WorkflowIr::new();
        ir.add_task(
            "wide",
            IrTaskKind::Moldable(MoldableSpec {
                min_procs: 2,
                max_procs: 64,
            }),
            DurationModel::Fixed(10.0),
        );
        let ds = check_ir(&ir);
        let d = ds
            .iter()
            .find(|d| d.rule == RuleCode::GroupSizeOutOfRange)
            .expect("range warning");
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn zero_volume_flows_fire_oa021() {
        let mut ir = WorkflowIr::new();
        let a = ir.add_task("a", IrTaskKind::Rigid(1), DurationModel::Fixed(1.0));
        let b = ir.add_task("b", IrTaskKind::Rigid(1), DurationModel::Fixed(1.0));
        ir.add_dep(a, b).unwrap();
        ir.add_flow(a, b, DataVolume(0)).unwrap();
        let ds = check_ir(&ir);
        assert!(
            ds.iter().any(|d| d.rule == RuleCode::IrFlowMismatch),
            "{ds:?}"
        );
    }
}
